//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! API, so the workspace builds and tests hermetically with no registry
//! access. Implements exactly the surface the repo's tests use:
//!
//! - `proptest! { #![proptest_config(...)] #[test] fn f(x in strat, ..) {..} }`
//! - strategies: integer/float `Range`s, `any::<T>()`,
//!   `proptest::collection::vec(strategy, size_range)`, and tuples
//! - `prop_assert!` / `prop_assert_eq!`
//!
//! Sampling is deterministic (splitmix64 seeded per test name and case
//! index) and there is **no shrinking**: a failing case panics with the
//! ordinary assert message. That trades minimal counterexamples for a
//! zero-dependency build, which is the right trade inside this container.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator used to drive all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator; the `proptest!` macro derives the seed from the
    /// test name and case index so runs are reproducible.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: `sample` produces one concrete value per call.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy over a half-open length range, mirroring
    /// `proptest::collection::vec(elem, lo..hi)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-block configuration; only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Stable seed derived from the test name (FNV-1a), so every test walks
/// its own reproducible sequence.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The common import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property test. Plain `assert!` under the hood.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property test. Plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                $(
                    #[allow(unused_mut)]
                    let $p = $crate::Strategy::sample(&($s), &mut rng);
                )+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::TestRng::new(11);
        let s = crate::collection::vec(any::<u8>(), 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        assert_eq!(crate::seed_for("a", 0), crate::seed_for("a", 0));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_params(x in 1usize..10, mut v in crate::collection::vec(any::<u64>(), 0..4)) {
            prop_assert!(x >= 1 && x < 10);
            v.push(0);
            prop_assert!(v.len() <= 4);
        }

        #[test]
        fn tuples_compose((a, b) in (any::<u8>(), 0u32..64)) {
            let _ = a;
            prop_assert!(b < 64, "b={}", b);
        }
    }
}
