//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API, so `cargo bench` works hermetically with no registry
//! access. Implements the surface the repo's `kernels` bench uses:
//! `Criterion`/`benchmark_group`/`bench_function`/`bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `BenchmarkId`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a wall-clock warm-up, the
//! routine is timed over `sample_size` samples (each a batch sized to fill
//! `measurement_time / sample_size`) and the median per-iteration time is
//! reported, with throughput when configured. No plotting, no statistics
//! beyond median/min/max, no HTML reports. Passing `--test` (as
//! `cargo test --benches` does) runs every routine exactly once.

use std::time::{Duration, Instant};

/// Top-level benchmark driver and configuration builder.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Wall-clock warm-up before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Hook for `criterion_main!`'s argument handling; accepted and
    /// ignored beyond `--test` detection (done in `Default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self, None, id, &mut f);
        self
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; size hints are irrelevant to
/// this implementation (every batch reruns setup outside the timer).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (e.g. a cloned input vector).
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("seq", 10)` → `seq/10`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A set of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(self.criterion, self.throughput, &id.to_string(), &mut f);
        self
    }

    /// Time one routine against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion, self.throughput, &id.to_string(), &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group. (Reporting is incremental, so this is a no-op.)
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per call, setup excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_one(
    c: &Criterion,
    throughput: Option<Throughput>,
    id: &str,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("  {id:<40} ok (test mode)");
        return;
    }

    // Warm up and estimate the cost of one iteration.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        warm_iters += b.iters;
    }
    let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);

    // Pick a batch size so all samples together fill measurement_time.
    let budget_ns = c.measurement_time.as_nanos() as u64 / c.sample_size as u64;
    let iters = (budget_ns / per_iter.max(1)).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            // median is ns/iter; n elems per iter → n/median elems/ns.
            format!("  {:>12.2} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.2} MiB/s",
                n as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "  {id:<40} {:>12} ns/iter  [{:.0} .. {:.0}]{rate}",
        format!("{median:.0}"),
        lo,
        hi
    );
}

/// Define a benchmark entry point: either
/// `criterion_group!(name, target, ...)` or the long form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = fast();
        let mut calls = 0u64;
        c.bench_function("counts", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = fast();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter_batched(
                || vec![x; 4],
                |v| v.iter().sum::<u32>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("seq", 10).to_string(), "seq/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
