#![warn(missing_docs)]

//! Shared harness utilities for the per-figure/per-table benchmark targets.
//!
//! Every target in `benches/` regenerates one table or figure of the
//! paper's evaluation, printing the same rows/series. Workload sizes are
//! controlled by environment variables so the full suite runs on a laptop
//! by default and can be cranked toward paper scale:
//!
//! - `IAWJ_SCALE` — workload scale factor (default 0.01; 1.0 = the paper's
//!   cardinalities). Key-domain sizes stay fixed, so duplication scales.
//! - `IAWJ_SPEEDUP` — stream-time compression (default 25; 1 = real-time
//!   replay of the 1-second windows). Compressing time *raises* effective
//!   arrival pressure, which together with the reduced cardinalities keeps
//!   each workload in its qualitative band.
//! - `IAWJ_THREADS` — worker threads (default: min(8, cores), at least 2).
//!
//! All emitted times are in stream milliseconds, so series shapes are
//! comparable across settings.
//!
//! Set `IAWJ_CSV_DIR` to also write every printed table as a CSV file in
//! that directory (one file per table, named after the banner), ready for
//! plotting scripts.

use iawj_core::{execute, Algorithm, RunConfig, RunResult, StreamReport};
use iawj_datagen::{debs, rovio, stock, ysb, Dataset, MicroSpec};

/// Harness-wide settings read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct BenchEnv {
    /// Workload scale (1.0 = paper cardinalities).
    pub scale: f64,
    /// Stream-time compression factor.
    pub speedup: f64,
    /// Worker threads.
    pub threads: usize,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchEnv {
    /// Read `IAWJ_SCALE` / `IAWJ_SPEEDUP` / `IAWJ_THREADS`.
    ///
    /// The thread default honours the affinity mask (cgroup/taskset), not
    /// the machine's core count — a harness restricted to two cores must
    /// not silently timeshare eight workers.
    pub fn from_env() -> Self {
        let cores = iawj_exec::affinity_core_count().max(1);
        BenchEnv {
            scale: env_f64("IAWJ_SCALE", 0.01),
            speedup: env_f64("IAWJ_SPEEDUP", 25.0),
            threads: env_usize("IAWJ_THREADS", cores.clamp(2, 8)),
        }
    }

    /// Default run configuration for this environment.
    pub fn config(&self) -> RunConfig {
        RunConfig::with_threads(self.threads).speedup(self.speedup)
    }

    /// The four real-world-equivalent workloads at this scale. Stock and
    /// DEBS are small enough to run closer to paper scale.
    pub fn real_workloads(&self) -> Vec<Dataset> {
        vec![
            stock((self.scale * 10.0).min(1.0), 42),
            rovio(self.scale, 42),
            ysb(self.scale, 42),
            debs((self.scale * 10.0).min(1.0), 42),
        ]
    }

    /// A Micro spec with both rates scaled into this environment.
    pub fn micro(&self, rate_r: f64, rate_s: f64) -> MicroSpec {
        MicroSpec::with_rates(rate_r * self.scale, rate_s * self.scale).seed(42)
    }
}

/// Execute and return the result, printing nothing.
pub fn run(algo: Algorithm, ds: &Dataset, cfg: &RunConfig) -> RunResult {
    execute(algo, ds, cfg)
}

// ---------------------------------------------------------------------------
// Machine-readable snapshots (BENCH_<fig>.json)
// ---------------------------------------------------------------------------

use iawj_common::PHASES;
use iawj_exec::cpu_clock;
use iawj_obs::{BenchSnapshot, CachesimPerTuple, PhaseSnapshot, RunSnapshot, SCHEMA_VERSION};

/// The current commit's abbreviated SHA, or `"unknown"` outside a repo.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Collects every configuration a harness target executed and writes them
/// as a versioned `BENCH_<fig>.json` when `IAWJ_BENCH_DIR` is set — the
/// machine-readable perf trajectory consumed by `iawj bench-diff`. With
/// the variable unset, recording is free and nothing is written.
pub struct SnapshotWriter {
    snap: BenchSnapshot,
}

impl SnapshotWriter {
    /// Start a snapshot for one figure/table tag (`"fig7"`, `"table5"`…).
    pub fn new(fig: &str, env: &BenchEnv) -> Self {
        let clock = cpu_clock();
        let created_unix_s = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        SnapshotWriter {
            snap: BenchSnapshot {
                schema_version: SCHEMA_VERSION,
                fig: fig.into(),
                git_sha: git_sha(),
                created_unix_s,
                scale: env.scale,
                speedup: env.speedup,
                threads: env.threads as u64,
                clock_ghz: clock.ghz,
                clock_source: clock.source.label().into(),
                runs: Vec::new(),
            },
        }
    }

    /// Record one executed configuration. `workload` may carry a
    /// parameter suffix (e.g. `"Micro/skew0.99"`) so sweep points stay
    /// distinct under `bench-diff`'s configuration key.
    pub fn record(&mut self, workload: &str, cfg: &RunConfig, res: &RunResult) {
        self.snap.runs.push(RunSnapshot {
            workload: workload.into(),
            engine: res.algorithm.name().into(),
            threads: cfg.threads as u64,
            scheduler: cfg.sched.scheduler.to_string(),
            scatter: cfg.prj.scatter.to_string(),
            npj_table: cfg.npj.table.to_string(),
            kernel: cfg.kernel.backend.to_string(),
            throughput_tpms: res.throughput_tpms(),
            latency_p99_ms: res.hist.quantile_ms(0.99),
            latency_max_ms: res.hist.max_ms(),
            matches: res.matches,
            counter_source: res.counter_source.label().into(),
            phases: PHASES
                .iter()
                .map(|&p| PhaseSnapshot {
                    label: p.label().into(),
                    ns: res.breakdown[p],
                    counters: res.counters[p],
                })
                .collect(),
            cachesim: None,
        });
    }

    /// Record one continuous-streaming run. Streaming has no
    /// [`RunResult`]; the row maps the [`StreamReport`]'s service metrics
    /// onto the snapshot schema — throughput is the operator-limited
    /// sustained ingest rate in tuples per *wall* ms (replay is unpaced,
    /// so backpressure makes producers run exactly as fast as the
    /// operator drains), latency quantiles are per-window close (join)
    /// wall times.
    pub fn record_stream(&mut self, workload: &str, engine: &str, report: &StreamReport) {
        self.snap.runs.push(RunSnapshot {
            workload: workload.into(),
            engine: engine.into(),
            threads: self.snap.threads,
            scheduler: "static".into(),
            scatter: "direct".into(),
            npj_table: "latch".into(),
            kernel: "simd".into(),
            throughput_tpms: report.wall_tpms(),
            latency_p99_ms: report.close_hist.quantile_ms(0.99),
            latency_max_ms: report.close_hist.max_ms(),
            matches: report.matches,
            counter_source: "none".into(),
            phases: Vec::new(),
            cachesim: None,
        });
    }

    /// Record a cache-simulator profile row (Table 5 / Fig. 19): no wall
    /// clock, only simulated per-tuple counters.
    pub fn record_cachesim(&mut self, workload: &str, engine: &str, per: CachesimPerTuple) {
        self.snap.runs.push(RunSnapshot {
            workload: workload.into(),
            engine: engine.into(),
            threads: self.snap.threads,
            scheduler: "static".into(),
            scatter: "direct".into(),
            npj_table: "latch".into(),
            kernel: "simd".into(),
            throughput_tpms: 0.0,
            latency_p99_ms: None,
            latency_max_ms: None,
            matches: 0,
            counter_source: "cachesim".into(),
            phases: Vec::new(),
            cachesim: Some(per),
        });
    }

    /// Write `BENCH_<fig>.json` into `IAWJ_BENCH_DIR`, if set. Failures
    /// are reported but never abort a harness run.
    pub fn write(&self) {
        let Ok(dir) = std::env::var("IAWJ_BENCH_DIR") else {
            return;
        };
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.snap.fig));
        match std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(&path, self.snap.to_json()))
        {
            Ok(()) => println!("(bench snapshot: {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

// ---------------------------------------------------------------------------
// Table printing
// ---------------------------------------------------------------------------

use std::sync::Mutex;

/// The active harness title (set by [`banner`]), used to name CSV files.
static CURRENT_TITLE: Mutex<Option<String>> = Mutex::new(None);
/// Per-title table counter so multiple tables per harness get distinct files.
static TABLE_SEQ: Mutex<usize> = Mutex::new(0);

/// Print a header line for a harness target.
pub fn banner(title: &str, env: &BenchEnv) {
    println!();
    println!("==============================================================");
    println!("{title}");
    println!(
        "(scale={}, speedup={}x, threads={})",
        env.scale, env.speedup, env.threads
    );
    println!("==============================================================");
    let slug: String = title
        .chars()
        .take_while(|&c| c != '—' && c != '(')
        .collect::<String>()
        .trim()
        .to_lowercase()
        .replace([' ', '/'], "_");
    *CURRENT_TITLE.lock().unwrap() = Some(slug);
    *TABLE_SEQ.lock().unwrap() = 0;
}

/// Write a printed table as CSV when `IAWJ_CSV_DIR` is set. Failures are
/// reported but never abort a harness run.
fn export_csv(columns: &[&str], rows: &[Vec<String>]) {
    let Ok(dir) = std::env::var("IAWJ_CSV_DIR") else {
        return;
    };
    let title = CURRENT_TITLE
        .lock()
        .unwrap()
        .clone()
        .unwrap_or_else(|| "table".into());
    let seq = {
        let mut s = TABLE_SEQ.lock().unwrap();
        *s += 1;
        *s
    };
    let path = std::path::Path::new(&dir).join(format!("{title}_{seq}.csv"));
    let mut out = String::new();
    out.push_str(&columns.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, out)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Print an aligned table: `columns` then one row per entry.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = columns.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    export_csv(columns, rows);
}

/// Format a float compactly (about 3 significant digits).
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        "-".into()
    } else if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format an optional float.
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt).unwrap_or_else(|| "-".into())
}

/// Print a progressiveness curve as `t_ms:frac%` pairs, thinned to `n`.
pub fn print_curve(label: &str, curve: &[(f64, f64)], n: usize) {
    let thin = iawj_core::metrics::thin_curve(curve, n);
    let cells: Vec<String> = thin
        .iter()
        .map(|(t, f)| format!("{}:{:.0}%", fmt(*t), f * 100.0))
        .collect();
    println!("{label:>10}  {}", cells.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let env = BenchEnv::from_env();
        assert!(env.scale > 0.0);
        assert!(env.speedup > 0.0);
        assert!(env.threads >= 2);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.2345), "1.234");
        assert_eq!(fmt_opt(None), "-");
        assert_eq!(fmt(f64::NAN), "-");
    }

    #[test]
    fn csv_export_writes_files() {
        let dir = std::env::temp_dir().join("iawj_csv_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("IAWJ_CSV_DIR", &dir);
        let env = BenchEnv {
            scale: 0.01,
            speedup: 25.0,
            threads: 2,
        };
        banner("Figure 99 — csv export test", &env);
        print_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        std::env::remove_var("IAWJ_CSV_DIR");
        let file = dir.join("figure_99_1.csv");
        let content = std::fs::read_to_string(&file).expect("csv written");
        assert_eq!(content, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_writer_round_trips_through_bench_dir() {
        let dir = std::env::temp_dir().join("iawj_snapshot_writer_test");
        let _ = std::fs::remove_dir_all(&dir);
        let env = BenchEnv {
            scale: 0.01,
            speedup: 25.0,
            threads: 2,
        };
        let ds = MicroSpec::static_counts(300, 300)
            .dupe(3)
            .seed(7)
            .generate();
        let cfg = env.config();
        let res = run(Algorithm::Npj, &ds, &cfg);
        let mut w = SnapshotWriter::new("figtest", &env);
        w.record(&ds.name, &cfg, &res);
        w.record_cachesim(
            &ds.name,
            "PRJ",
            CachesimPerTuple {
                dtlb: 0.1,
                l1d: 1.5,
                l2: 0.4,
                l3: 0.2,
            },
        );
        // Without the env var nothing is written.
        w.write();
        assert!(!dir.exists());
        std::env::set_var("IAWJ_BENCH_DIR", &dir);
        w.write();
        std::env::remove_var("IAWJ_BENCH_DIR");
        let text = std::fs::read_to_string(dir.join("BENCH_figtest.json")).expect("written");
        let parsed = BenchSnapshot::parse(&text).expect("parses");
        assert_eq!(parsed.fig, "figtest");
        assert_eq!(parsed.runs.len(), 2);
        assert_eq!(parsed.runs[0].engine, "NPJ");
        assert!(parsed.runs[0].throughput_tpms > 0.0);
        assert_eq!(parsed.runs[0].phases.len(), 6);
        assert_eq!(parsed.runs[1].counter_source, "cachesim");
        assert!(parsed.runs[1].cachesim.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workloads_generate_at_small_scale() {
        let env = BenchEnv {
            scale: 0.005,
            speedup: 50.0,
            threads: 2,
        };
        let ws = env.real_workloads();
        let names: Vec<&str> = ws.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["Stock", "Rovio", "YSB", "DEBS"]);
        for ds in &ws {
            assert!(ds.total_inputs() > 0, "{}", ds.name);
        }
    }
}
