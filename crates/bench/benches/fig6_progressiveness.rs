//! Figure 6: progressiveness (cumulative % of matches vs elapsed stream
//! time) of all eight algorithms over the four real-world workloads.

use iawj_bench::{banner, print_curve, run, BenchEnv};
use iawj_core::metrics::{progressiveness, time_to_fraction_ms};
use iawj_core::Algorithm;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 6 — progressiveness (cumulative % matches over stream-ms)",
        &env,
    );
    let cfg = env.config();
    for ds in env.real_workloads() {
        println!("\n--- {} ---", ds.name);
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            let curve = progressiveness(&res);
            print_curve(algo.name(), &curve, 8);
            if let Some(t50) = time_to_fraction_ms(&res, 0.5) {
                println!("{:>10}  time-to-50% = {:.1} ms", "", t50);
            }
        }
    }
}
