//! Criterion microbenchmarks of the shared kernels: hash-table build and
//! probe, radix partitioning, the two sort backends, merging, and the
//! merge-join — the ablation level below the per-figure harnesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iawj_common::{ColumnarStream, Rng, Tuple};
use iawj_exec::merge::{kway_merge, kway_merge_loser, merge_two_into, merge_two_into_branchless};
use iawj_exec::mergejoin::count_matches;
use iawj_exec::radix::{partition_parallel, partition_seq, partition_seq_buffered};
use iawj_exec::sort::{pack_tuples, sort_packed, SortBackend};
use iawj_exec::{run_workers, LocalTable, SharedTable, StripedTable};
use std::hint::black_box;

const N: usize = 1 << 16;

fn tuples(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| Tuple::new(rng.next_u32() % keys, i as u32))
        .collect()
}

fn bench_hashtables(c: &mut Criterion) {
    let data = tuples(N, N as u32 / 4, 1);
    let mut g = c.benchmark_group("hashtable");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("local_build", |b| {
        b.iter(|| {
            let mut t = LocalTable::with_capacity(N);
            for tup in &data {
                t.insert(tup.key, tup.ts);
            }
            black_box(t.len())
        })
    });
    let mut table = LocalTable::with_capacity(N);
    for tup in &data {
        table.insert(tup.key, tup.ts);
    }
    g.bench_function("local_probe", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for tup in &data {
                table.probe(tup.key, |_| n += 1);
            }
            black_box(n)
        })
    });
    g.bench_function("shared_build", |b| {
        b.iter(|| {
            let t = SharedTable::with_capacity(N);
            for tup in &data {
                t.insert(tup.key, tup.ts);
            }
            black_box(t.len())
        })
    });
    // Latching ablation under 4-way contention: per-bucket vs striped.
    g.bench_function("shared_build_contended_per_bucket", |b| {
        b.iter(|| {
            let t = SharedTable::with_capacity(N);
            run_workers(4, |tid| {
                for tup in &data[tid * N / 4..(tid + 1) * N / 4] {
                    t.insert(tup.key, tup.ts);
                }
            });
            black_box(t.len())
        })
    });
    g.bench_function("shared_build_contended_striped_256", |b| {
        b.iter(|| {
            let t = StripedTable::with_capacity(N, 256);
            run_workers(4, |tid| {
                for tup in &data[tid * N / 4..(tid + 1) * N / 4] {
                    t.insert(tup.key, tup.ts);
                }
            });
            black_box(t.len())
        })
    });
    g.finish();
}

fn bench_radix(c: &mut Criterion) {
    let data = tuples(N, u32::MAX, 2);
    let mut g = c.benchmark_group("radix_partition");
    g.throughput(Throughput::Elements(N as u64));
    for bits in [6u32, 10, 14] {
        g.bench_with_input(BenchmarkId::new("seq", bits), &bits, |b, &bits| {
            b.iter(|| black_box(partition_seq(&data, 0, bits).data.len()))
        });
    }
    g.bench_function("parallel_10bit_4t", |b| {
        b.iter(|| black_box(partition_parallel(&data, 0, 10, 4).data.len()))
    });
    // SWWCB ablation: direct vs write-combined scatter at high fan-out.
    for bits in [10u32, 14] {
        g.bench_with_input(BenchmarkId::new("seq_buffered", bits), &bits, |b, &bits| {
            b.iter(|| black_box(partition_seq_buffered(&data, 0, bits).data.len()))
        });
    }
    g.finish();
}

fn bench_sorts(c: &mut Criterion) {
    let data = pack_tuples(&tuples(N, u32::MAX, 3));
    let mut g = c.benchmark_group("sort");
    g.throughput(Throughput::Elements(N as u64));
    for backend in [SortBackend::Scalar, SortBackend::Vectorized] {
        g.bench_with_input(
            BenchmarkId::new("backend", backend.label()),
            &backend,
            |b, &backend| {
                b.iter_batched(
                    || data.clone(),
                    |mut v| {
                        sort_packed(&mut v, backend);
                        black_box(v.len())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.bench_function("std_unstable", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| {
                v.sort_unstable();
                black_box(v.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_merges(c: &mut Criterion) {
    let mut a = pack_tuples(&tuples(N / 2, u32::MAX, 4));
    let mut bb = pack_tuples(&tuples(N / 2, u32::MAX, 5));
    a.sort_unstable();
    bb.sort_unstable();
    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("two_way_branching", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            merge_two_into(&a, &bb, &mut out);
            black_box(out.len())
        })
    });
    g.bench_function("two_way_branchless", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            merge_two_into_branchless(&a, &bb, &mut out);
            black_box(out.len())
        })
    });
    let quarters: Vec<Vec<u64>> = (0..4)
        .map(|i| {
            let mut q = pack_tuples(&tuples(N / 4, u32::MAX, 10 + i));
            q.sort_unstable();
            q
        })
        .collect();
    let refs: Vec<&[u64]> = quarters.iter().map(|q| q.as_slice()).collect();
    g.bench_function("kway_4_heap", |b| {
        b.iter(|| black_box(kway_merge(&refs).len()))
    });
    g.bench_function("kway_4_loser_tree", |b| {
        b.iter(|| black_box(kway_merge_loser(&refs).len()))
    });
    g.finish();
}

fn bench_layouts(c: &mut Criterion) {
    // Key-only pass (radix histogram shape) over row vs columnar storage:
    // the columnar layout touches half the bytes.
    let rows = tuples(N * 4, u32::MAX, 8);
    let cols = ColumnarStream::from_tuples(&rows);
    let mut g = c.benchmark_group("layout_key_scan");
    g.throughput(Throughput::Elements((N * 4) as u64));
    g.bench_function("row_aos", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in &rows {
                acc = acc.wrapping_add((t.key & 1023) as u64);
            }
            black_box(acc)
        })
    });
    g.bench_function("columnar_soa", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &cols.keys {
                acc = acc.wrapping_add((k & 1023) as u64);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_mergejoin(c: &mut Criterion) {
    let mut g = c.benchmark_group("mergejoin");
    for dupe in [1u32, 16, 64] {
        let keys = (N as u32 / dupe).max(1);
        let mut r = pack_tuples(&tuples(N, keys, 6));
        let mut s = pack_tuples(&tuples(N, keys, 7));
        r.sort_unstable();
        s.sort_unstable();
        g.throughput(Throughput::Elements(N as u64));
        g.bench_with_input(BenchmarkId::new("dupe", dupe), &dupe, |b, _| {
            b.iter(|| black_box(count_matches(&r, &s)))
        });
    }
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hashtables, bench_radix, bench_sorts, bench_merges, bench_layouts, bench_mergejoin
}
criterion_main!(kernels);
