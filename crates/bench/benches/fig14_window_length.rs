//! Figure 14: impact of window length w (500 → 2500 ms). Amortised cost
//! per tuple stays flat; latency grows as more tuples queue up.

use iawj_bench::{banner, fmt, fmt_opt, print_table, run, BenchEnv};
use iawj_core::metrics::latency_quantile_ms;
use iawj_core::Algorithm;

const WINDOWS: [u32; 5] = [500, 750, 1000, 1250, 1500];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 14 — window length sweep (v = 12800 t/ms)", &env);
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for &w in &WINDOWS {
        let ds = env.micro(12800.0, 12800.0).window_ms(w).generate();
        let mut tpt = vec![w.to_string()];
        let mut lat = vec![w.to_string()];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["w (ms)"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th latency (ms)");
    print_table(&cols, &lat_rows);
}
