//! Figure 12: impact of arrival skewness skew_ts (Zipf over window slots,
//! early slots hottest). Only SHJ^JM is sensitive, improving with skew.

use iawj_bench::{banner, fmt, print_curve, print_table, run, BenchEnv};
use iawj_core::metrics::progressiveness;
use iawj_core::Algorithm;

const SKEWS: [f64; 5] = [0.0, 0.4, 0.8, 1.2, 1.6];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 12 — arrival skewness sweep (v = 1600 t/ms)", &env);
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut top = Vec::new();
    for &skew in &SKEWS {
        let ds = env.micro(1600.0, 1600.0).skew_ts(skew).generate();
        let mut tpt = vec![format!("{skew}")];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            if skew == SKEWS[SKEWS.len() - 1] {
                top.push(res);
            }
        }
        tpt_rows.push(tpt);
    }
    let mut cols = vec!["skew_ts"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) Progressiveness at skew_ts = 1.6");
    for res in &top {
        print_curve(res.algorithm.name(), &progressiveness(res), 8);
    }
}
