//! Figure 7: six-phase execution-time breakdown (wait / partition /
//! build-sort / merge / probe / others) per algorithm per workload,
//! reported as total cycles (summed over threads) per input tuple.
//!
//! Cycles use the calibrated host clock (`IAWJ_CPU_GHZ` override →
//! perf-measured → assumed 2.6 GHz); the banner labels which. Runs carry
//! a span journal, so a companion table attributes the journaled
//! contention marks (`latch:wait`, `cas:retry`, `swwc:flush`) to the
//! phase they occurred in.

use iawj_bench::{banner, fmt, print_table, run, BenchEnv, SnapshotWriter};
use iawj_common::PHASES;
use iawj_core::Algorithm;
use iawj_exec::cpu_clock;
use iawj_exec::swwc::MARK_FLUSH;
use iawj_obs::{MARK_CAS_RETRY, MARK_LATCH_WAIT};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 7 — execution time breakdown (cycles per input tuple)",
        &env,
    );
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let cfg = env.config().with_journal();
    let mut snap = SnapshotWriter::new("fig7", &env);
    for ds in env.real_workloads() {
        println!("\n--- {} ---", ds.name);
        let mut rows = Vec::new();
        let mut mark_rows = Vec::new();
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            snap.record(&ds.name, &cfg, &res);
            let per_tuple = 1.0 / res.total_inputs.max(1) as f64;
            let mut row = vec![algo.name().to_string()];
            for phase in PHASES {
                row.push(fmt(res.breakdown.cycles(phase, clock.ghz) * per_tuple));
            }
            row.push(fmt(res.breakdown.total_ns() as f64 * clock.ghz * per_tuple));
            rows.push(row);
            let per_1k = 1000.0 * per_tuple;
            let mut mark_row = vec![algo.name().to_string()];
            for mark in [MARK_LATCH_WAIT, MARK_CAS_RETRY, MARK_FLUSH] {
                for span in ["partition", "build/sort", "probe"] {
                    mark_row.push(fmt(res.count_marks_in(mark, span) as f64 * per_1k));
                }
            }
            mark_rows.push(mark_row);
        }
        print_table(
            &[
                "algo",
                "wait",
                "partition",
                "build/sort",
                "merge",
                "probe",
                "others",
                "total",
            ],
            &rows,
        );
        if mark_rows
            .iter()
            .any(|r| r[1..].iter().any(|c| c != "0" && c != "-"))
        {
            println!("\ncontention marks per 1k input tuples, by phase");
            print_table(
                &[
                    "algo",
                    "latch@part",
                    "latch@build",
                    "latch@probe",
                    "cas@part",
                    "cas@build",
                    "cas@probe",
                    "flush@part",
                    "flush@build",
                    "flush@probe",
                ],
                &mark_rows,
            );
        }
    }
    snap.write();
}
