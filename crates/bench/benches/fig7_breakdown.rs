//! Figure 7: six-phase execution-time breakdown (wait / partition /
//! build-sort / merge / probe / others) per algorithm per workload,
//! reported as total cycles (summed over threads) per input tuple.

use iawj_bench::{banner, fmt, print_table, run, BenchEnv};
use iawj_common::PHASES;
use iawj_core::Algorithm;
use iawj_exec::NOMINAL_GHZ;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 7 — execution time breakdown (cycles per input tuple)",
        &env,
    );
    let cfg = env.config();
    for ds in env.real_workloads() {
        println!("\n--- {} ---", ds.name);
        let mut rows = Vec::new();
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            let per_tuple = 1.0 / res.total_inputs.max(1) as f64;
            let mut row = vec![algo.name().to_string()];
            for phase in PHASES {
                row.push(fmt(res.breakdown.cycles(phase, NOMINAL_GHZ) * per_tuple));
            }
            row.push(fmt(res.breakdown.total_ns() as f64
                * NOMINAL_GHZ
                * per_tuple));
            rows.push(row);
        }
        print_table(
            &[
                "algo",
                "wait",
                "partition",
                "build/sort",
                "merge",
                "probe",
                "others",
                "total",
            ],
            &rows,
        );
    }
}
