//! Figure 8: cache-efficiency profiling on YSB — L1/L2/L3 misses per input
//! tuple during the partition and probe phases, from the cache simulator.

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_common::Phase;
use iawj_core::{trace, Algorithm};
use iawj_datagen::ysb;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 8 — simulated cache misses per input tuple, YSB",
        &env,
    );
    // The trace replays every access; keep the dataset modest.
    let ds = ysb((env.scale * 0.5).min(0.02), 42);
    let cfg = env.config();
    let prefetch = std::env::var("IAWJ_PREFETCH").is_ok_and(|v| v == "1");
    if prefetch {
        println!("(next-line stream prefetcher: ON)");
    }
    for phase in [Phase::Partition, Phase::Probe] {
        println!(
            "\n({}) {} phase",
            if phase == Phase::Partition { "a" } else { "b" },
            phase
        );
        let mut rows = Vec::new();
        for algo in Algorithm::STUDIED {
            let p = trace::profile_with(algo, &ds, &cfg, prefetch);
            let c = p.phase(phase);
            let per = 1.0 / p.tuples.max(1) as f64;
            rows.push(vec![
                algo.name().to_string(),
                fmt(c.l1d_misses as f64 * per),
                fmt(c.l2_misses as f64 * per),
                fmt(c.l3_misses as f64 * per),
            ]);
        }
        print_table(&["algo", "L1 miss/t", "L2 miss/t", "L3 miss/t"], &rows);
    }
}
