//! Figure 16: JB group size g sweep for PMJ^JB and SHJ^JB, with the JM
//! scheme as the horizontal reference line. Static Micro, cycles per input
//! tuple.

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_core::{execute, Algorithm};
use iawj_datagen::MicroSpec;
use iawj_exec::cpu_clock;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 16 — JB group size (static Micro); last row = JM reference",
        &env,
    );
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let n_r = (128_000.0 * env.scale * 10.0).max(1000.0) as usize;
    let ds = MicroSpec::static_counts(n_r, n_r * 10)
        .dupe(4)
        .seed(42)
        .generate();
    for (jb, jm, label) in [
        (Algorithm::PmjJb, Algorithm::PmjJm, "PMJ"),
        (Algorithm::ShjJb, Algorithm::ShjJm, "SHJ"),
    ] {
        println!("\n--- {label} ---");
        let mut rows = Vec::new();
        let mut g = 1usize;
        while g <= env.threads {
            if env.threads.is_multiple_of(g) {
                let mut cfg = env.config();
                cfg.jb.group_size = g;
                let res = execute(jb, &ds, &cfg);
                let per = 1.0 / res.total_inputs.max(1) as f64;
                rows.push(vec![
                    format!("g={g}"),
                    fmt(res.breakdown.busy_ns() as f64 * clock.ghz * per),
                    fmt(res.throughput_tpms()),
                ]);
            }
            g *= 2;
        }
        let res = execute(jm, &ds, &env.config());
        let per = 1.0 / res.total_inputs.max(1) as f64;
        rows.push(vec![
            "JM".into(),
            fmt(res.breakdown.busy_ns() as f64 * clock.ghz * per),
            fmt(res.throughput_tpms()),
        ]);
        print_table(&["config", "cycles/tuple", "tpt (t/ms)"], &rows);
    }
}
