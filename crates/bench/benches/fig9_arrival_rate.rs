//! Figure 9: impact of the input arrival rate v (both streams swept
//! together) on throughput, 95th latency, and progressiveness.

use iawj_bench::{banner, fmt, fmt_opt, print_curve, print_table, run, BenchEnv};
use iawj_core::metrics::{latency_quantile_ms, progressiveness};
use iawj_core::Algorithm;

const RATES: [f64; 5] = [1600.0, 3200.0, 6400.0, 12800.0, 25600.0];

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 9 — varying arrival rate v (unique keys, uniform arrivals)",
        &env,
    );
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    let mut lowest_rate_results = Vec::new();
    for (ri, &rate) in RATES.iter().enumerate() {
        let ds = env.micro(rate, rate).generate();
        let mut tpt = vec![format!("{rate}")];
        let mut lat = vec![format!("{rate}")];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
            if ri == 0 {
                lowest_rate_results.push(res);
            }
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["v (t/ms)"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th latency (ms)");
    print_table(&cols, &lat_rows);
    println!("\n(c) Progressiveness at v = {} t/ms", RATES[0]);
    for res in &lowest_rate_results {
        print_curve(res.algorithm.name(), &progressiveness(res), 8);
    }
}
