//! Extension study: the hybrid eager/lazy operator (§5.2's orchestration
//! direction) against its parents. Under light load it should track
//! SHJ^JM's early progressiveness; under pressure its bulk tail should
//! close the throughput gap toward the lazy side.

use iawj_bench::{banner, fmt, fmt_opt, print_curve, print_table, run, BenchEnv};
use iawj_core::metrics::{latency_quantile_ms, progressiveness, time_to_fraction_ms};
use iawj_core::Algorithm;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Extension — hybrid eager/lazy operator vs SHJ_JM and NPJ",
        &env,
    );
    for (label, rate, dupe) in [
        ("light load, unique keys", 1600.0, 1),
        ("heavy load, unique keys", 25600.0, 1),
        ("heavy load, dupe=100", 12800.0, 100),
    ] {
        let ds = env.micro(rate, rate).dupe(dupe).generate();
        println!("\n--- {label} (v = {rate} t/ms x scale) ---");
        let mut rows = Vec::new();
        for algo in [Algorithm::ShjJm, Algorithm::HybridShj, Algorithm::Npj] {
            let res = run(algo, &ds, &env.config());
            rows.push(vec![
                algo.name().to_string(),
                fmt(res.throughput_tpms()),
                fmt_opt(latency_quantile_ms(&res, 0.95)),
                fmt_opt(time_to_fraction_ms(&res, 0.5)),
            ]);
            print_curve(algo.name(), &progressiveness(&res), 6);
        }
        print_table(&["algo", "tpt (t/ms)", "p95 (ms)", "t50 (ms)"], &rows);
    }
}
