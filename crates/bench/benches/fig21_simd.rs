//! Figure 21: impact of the batched SIMD kernels — per-phase cycles per
//! input tuple of every studied algorithm with `--kernel simd` (8-wide
//! batched hashing, prefetched probe pipelines, AVX2 sort networks) vs
//! `--kernel scalar` (the per-tuple reference paths). The sort-based
//! engines isolate the vectorized sort (the paper's with/without-AVX
//! switch); NPJ and PRJ isolate the batched hash + prefetch pipelines.
//!
//! Emits `BENCH_fig21.json` so `iawj bench-diff` can hold the scalar/simd
//! gap across commits; the committed baseline asserts simd wins the sort
//! phase by ≥ 1.15× on x86_64.

use iawj_bench::{banner, fmt, print_table, BenchEnv, SnapshotWriter};
use iawj_common::{KernelBackend, Phase};
use iawj_core::{execute, Algorithm};
use iawj_datagen::MicroSpec;
use iawj_exec::cpu_clock;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 21 — scalar vs simd kernels, all studied algorithms (static Micro)",
        &env,
    );
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let n = (512_000.0 * env.scale * 10.0).max(20_000.0) as usize;
    let ds = MicroSpec::static_counts(n, n).dupe(4).seed(42).generate();
    let mut snap = SnapshotWriter::new("fig21", &env);
    let mut rows = Vec::new();
    // Sort-phase ns per kernel, summed over the sort-based engines, for the
    // headline speedup line.
    let mut sort_ns = [0u64; 2];
    for algo in Algorithm::STUDIED {
        for kernel in [KernelBackend::Simd, KernelBackend::Scalar] {
            let cfg = env.config().kernel(kernel);
            let res = execute(algo, &ds, &cfg);
            snap.record("Micro", &cfg, &res);
            let per = 1.0 / res.total_inputs.max(1) as f64;
            if matches!(
                algo,
                Algorithm::MWay | Algorithm::MPass | Algorithm::PmjJm | Algorithm::PmjJb
            ) {
                sort_ns[kernel.is_simd() as usize] += res.breakdown[Phase::BuildSort];
            }
            rows.push(vec![
                format!("{}({})", algo.name(), kernel.label()),
                fmt(res.breakdown.cycles(Phase::Partition, clock.ghz) * per),
                fmt(res.breakdown.cycles(Phase::BuildSort, clock.ghz) * per),
                fmt(res.breakdown.cycles(Phase::Merge, clock.ghz) * per),
                fmt(res.breakdown.cycles(Phase::Probe, clock.ghz) * per),
                fmt(res.breakdown.busy_ns() as f64 * clock.ghz * per),
            ]);
        }
    }
    print_table(
        &["config", "part", "build/sort", "merge", "join", "total"],
        &rows,
    );
    if sort_ns[1] > 0 {
        println!(
            "\nsort-phase speedup (scalar/simd, all engines): {:.2}x",
            sort_ns[0] as f64 / sort_ns[1] as f64
        );
    }
    snap.write();
}
