//! Figure 21: impact of the SIMD sort backend — per-phase cycles per input
//! tuple of the sort-based algorithms with the vectorizable backend vs the
//! scalar one (the paper's with/without-AVX switch).

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_common::Phase;
use iawj_core::{execute, Algorithm};
use iawj_datagen::MicroSpec;
use iawj_exec::{cpu_clock, SortBackend};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 21 — SIMD on/off for the sort-based algorithms (static Micro)",
        &env,
    );
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let n = (512_000.0 * env.scale * 10.0).max(20_000.0) as usize;
    let ds = MicroSpec::static_counts(n, n).dupe(4).seed(42).generate();
    let mut rows = Vec::new();
    for algo in [
        Algorithm::MWay,
        Algorithm::MPass,
        Algorithm::PmjJm,
        Algorithm::PmjJb,
    ] {
        for backend in [SortBackend::Vectorized, SortBackend::Scalar] {
            let cfg = env.config().sort(backend);
            let res = execute(algo, &ds, &cfg);
            let per = 1.0 / res.total_inputs.max(1) as f64;
            rows.push(vec![
                format!("{}({})", algo.name(), backend.label()),
                fmt(res.breakdown.cycles(Phase::BuildSort, clock.ghz) * per),
                fmt(res.breakdown.cycles(Phase::Merge, clock.ghz) * per),
                fmt(res.breakdown.cycles(Phase::Probe, clock.ghz) * per),
                fmt(res.breakdown.busy_ns() as f64 * clock.ghz * per),
            ]);
        }
    }
    print_table(&["config", "sort", "merge", "join", "total"], &rows);
}
