//! Figure 17: physical partitioning (value passing) vs pointer passing in
//! SHJ^JM — per-phase cycles per input tuple.

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_common::Phase;
use iawj_core::{execute, Algorithm};
use iawj_datagen::MicroSpec;
use iawj_exec::cpu_clock;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 17 — physical partitioning of SHJ^JM (static Micro)",
        &env,
    );
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let n_r = (128_000.0 * env.scale * 10.0).max(1000.0) as usize;
    let ds = MicroSpec::static_counts(n_r, n_r * 10)
        .dupe(4)
        .seed(42)
        .generate();
    let mut rows = Vec::new();
    for physical in [true, false] {
        let mut cfg = env.config();
        cfg.jm.physical_partition = physical;
        let res = execute(Algorithm::ShjJm, &ds, &cfg);
        let per = 1.0 / res.total_inputs.max(1) as f64;
        rows.push(vec![
            if physical {
                "w/ partition"
            } else {
                "w/o partition"
            }
            .to_string(),
            fmt(res.breakdown.cycles(Phase::Partition, clock.ghz) * per),
            fmt(res.breakdown.cycles(Phase::BuildSort, clock.ghz) * per),
            fmt(res.breakdown.cycles(Phase::Probe, clock.ghz) * per),
            fmt(res.breakdown.busy_ns() as f64 * clock.ghz * per),
        ]);
    }
    print_table(&["config", "partition", "build", "probe", "overall"], &rows);
}
