//! Figure 11: impact of key duplication (dupe 1 → 100; matches scale with
//! it). Sort-based algorithms overtake hash-based ones past dupe ≈ 10.

use iawj_bench::{banner, fmt, fmt_opt, print_curve, print_table, run, BenchEnv};
use iawj_core::metrics::{latency_quantile_ms, progressiveness};
use iawj_core::Algorithm;

const DUPES: [usize; 4] = [1, 10, 50, 100];

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 11 — key duplication sweep (v = 6400 t/ms, w = 1000 ms)",
        &env,
    );
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    let mut top = Vec::new();
    for &dupe in &DUPES {
        let ds = env.micro(6400.0, 6400.0).dupe(dupe).generate();
        let mut tpt = vec![dupe.to_string()];
        let mut lat = vec![dupe.to_string()];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
            if dupe == DUPES[DUPES.len() - 1] {
                top.push(res);
            }
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["dupe"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th latency (ms)");
    print_table(&cols, &lat_rows);
    println!("\n(c) Progressiveness at dupe = {}", DUPES[DUPES.len() - 1]);
    for res in &top {
        print_curve(res.algorithm.name(), &progressiveness(res), 8);
    }
}
