//! Figure 5: throughput and 95th-percentile latency of all eight
//! algorithms over the four real-world workloads.

use iawj_bench::{banner, fmt, fmt_opt, print_table, run, BenchEnv, SnapshotWriter};
use iawj_common::KernelBackend;
use iawj_core::metrics::latency_quantile_ms;
use iawj_core::Algorithm;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 5 — throughput (tuples/ms) and 95th latency (ms), 4 workloads x 8 algorithms",
        &env,
    );
    let workloads = env.real_workloads();
    let cfg = env.config();
    // Scalar-kernel A/B rows ride along in the snapshot so bench-diff can
    // hold the simd gap on the real workloads too.
    let scalar_cfg = env.config().kernel(KernelBackend::Scalar);
    let mut snap = SnapshotWriter::new("fig5", &env);
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for ds in &workloads {
        let mut tpt = vec![ds.name.clone()];
        let mut lat = vec![ds.name.clone()];
        for algo in Algorithm::STUDIED {
            let res = run(algo, ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
            snap.record(&ds.name, &cfg, &res);
            let scalar_res = run(algo, ds, &scalar_cfg);
            snap.record(&ds.name, &scalar_cfg, &scalar_res);
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["workload"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (input tuples per stream-ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th-percentile processing latency (stream-ms)");
    print_table(&cols, &lat_rows);
    snap.write();
}
