//! Executor scalability trajectory — throughput of a repeatedly-invoked
//! engine swept over threads × executor mode × pin policy.
//!
//! This is the harness behind the persistent-executor claim: a one-shot
//! batch join barely notices thread spawn cost, but a service that runs an
//! engine per window close pays it on every invocation. Each cell therefore
//! provisions ONE executor, runs the engine `REPS` times through it
//! (`execute_on`), and reports the median run — spawn mode re-spawns OS
//! threads each repetition, pool mode re-dispatches parked workers, and the
//! pin policies add placement on top.
//!
//! Emits `BENCH_fig13.json` when `IAWJ_BENCH_DIR` is set; the committed
//! baseline under `baselines/` is the trajectory CI diffs against.

use iawj_bench::{banner, fmt, print_table, BenchEnv, SnapshotWriter};
use iawj_core::{execute_on, Algorithm, ExecMode, PinPolicy, RunConfig, RunResult};
use iawj_datagen::MicroSpec;

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Repetitions per cell; the median is reported. Odd so the median is a
/// real run, small so the full sweep stays laptop-friendly.
const REPS: usize = 9;

/// The executor configurations under comparison.
const CONFIGS: [(ExecMode, PinPolicy, &str); 4] = [
    (ExecMode::Spawn, PinPolicy::None, "spawn"),
    (ExecMode::Pool, PinPolicy::None, "pool"),
    (ExecMode::Pool, PinPolicy::Compact, "pool+compact"),
    (ExecMode::Pool, PinPolicy::Scatter, "pool+scatter"),
];

fn median_run(algo: Algorithm, ds: &iawj_datagen::Dataset, cfg: &RunConfig) -> RunResult {
    let exec = cfg.make_executor();
    let mut runs: Vec<RunResult> = (0..REPS)
        .map(|_| execute_on(algo, ds, cfg, &exec))
        .collect();
    runs.sort_by(|a, b| {
        a.throughput_tpms()
            .partial_cmp(&b.throughput_tpms())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    runs.swap_remove(REPS / 2)
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 13x — executor scalability (threads x mode x pin)",
        &env,
    );
    let mut snap = SnapshotWriter::new("fig13", &env);

    // A deliberately small static workload: per-invocation overhead (thread
    // spawn vs pool dispatch) is the quantity under test, so the join body
    // must not drown it out. ~2k tuples a side joins in well under a
    // millisecond per thread.
    let ds = MicroSpec::static_counts(2000, 2000)
        .dupe(4)
        .seed(42)
        .generate();
    println!(
        "({} + {} static tuples, {REPS} reps per cell, median reported)",
        ds.r.len(),
        ds.s.len()
    );

    for algo in [Algorithm::Npj, Algorithm::MPass] {
        println!("\n--- {} (t/ms) ---", algo.name());
        let mut rows = Vec::new();
        for (mode, pin, label) in CONFIGS {
            let mut row = vec![label.to_string()];
            for &t in &THREADS {
                let cfg = RunConfig::with_threads(t)
                    .speedup(env.speedup)
                    .executor(mode)
                    .pin(pin);
                let res = median_run(algo, &ds, &cfg);
                row.push(fmt(res.throughput_tpms()));
                snap.record(&format!("{}/{label}", ds.name), &cfg, &res);
            }
            rows.push(row);
        }
        print_table(&["executor", "1", "2", "4", "8"], &rows);
    }
    snap.write();
}
