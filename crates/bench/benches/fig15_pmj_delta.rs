//! Figure 15: PMJ sorting-step size δ sweep — the trade-off between early
//! results (small δ, many runs to merge) and overall cost (large δ defeats
//! eagerness). Static Micro, per-phase cycles per input tuple.

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_common::{Phase, PHASES};
use iawj_core::{execute, Algorithm};
use iawj_datagen::MicroSpec;
use iawj_exec::cpu_clock;

const DELTAS: [f64; 5] = [0.10, 0.20, 0.30, 0.40, 0.50];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 15 — PMJ sorting step size (static Micro)", &env);
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let n_r = (128_000.0 * env.scale * 10.0).max(1000.0) as usize;
    let ds = MicroSpec::static_counts(n_r, n_r * 10)
        .dupe(4)
        .seed(42)
        .generate();
    for eager_merge in [false, true] {
        println!(
            "\n({}) {}",
            if eager_merge { "b" } else { "a" },
            if eager_merge {
                "progressive per-run merging (ablation)"
            } else {
                "final merge phase (paper configuration)"
            }
        );
        let mut rows = Vec::new();
        for &delta in &DELTAS {
            let mut cfg = env.config();
            cfg.pmj.delta = delta;
            cfg.pmj.eager_merge = eager_merge;
            let res = execute(Algorithm::PmjJm, &ds, &cfg);
            let per = 1.0 / res.total_inputs.max(1) as f64;
            let mut row = vec![format!("{:.0}%", delta * 100.0)];
            for phase in [
                Phase::Partition,
                Phase::BuildSort,
                Phase::Merge,
                Phase::Probe,
            ] {
                row.push(fmt(res.breakdown.cycles(phase, clock.ghz) * per));
            }
            let total: f64 = PHASES
                .iter()
                .map(|&p| res.breakdown.cycles(p, clock.ghz) * per)
                .sum();
            row.push(fmt(total));
            rows.push(row);
        }
        print_table(
            &["delta", "partition", "sort", "merge", "probe", "total"],
            &rows,
        );
    }
}
