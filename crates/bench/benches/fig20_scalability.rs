//! Figure 20: multicore scalability of MPass (lazy) and SHJ^JM (eager) —
//! throughput normalised to the single-thread run, 1..8 threads, all four
//! workloads. (On hosts with fewer physical cores than threads, scaling
//! flattens into time-slicing; EXPERIMENTS.md records the host.)

use iawj_bench::{banner, fmt, print_table, run, BenchEnv};
use iawj_core::{Algorithm, RunConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Figure 20 — multicore scalability (normalised throughput)",
        &env,
    );
    for algo in [Algorithm::MPass, Algorithm::ShjJm] {
        println!("\n--- {} ---", algo.name());
        let mut rows = Vec::new();
        for ds in env.real_workloads() {
            let mut base = 0.0f64;
            let mut row = vec![ds.name.clone()];
            for &t in &THREADS {
                let cfg = RunConfig::with_threads(t).speedup(env.speedup);
                let res = run(algo, &ds, &cfg);
                let tpt = res.throughput_tpms();
                if t == 1 {
                    base = tpt.max(1e-9);
                }
                row.push(fmt(tpt / base));
            }
            rows.push(row);
        }
        print_table(&["workload", "1", "2", "4", "8"], &rows);
    }
}
