//! Figure 18: PRJ radix-bit sweep (#r = 8..18) — the partitioning-cost vs
//! probe-cost trade-off. Static Micro, cycles per input tuple.

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_common::Phase;
use iawj_core::{execute, Algorithm};
use iawj_datagen::MicroSpec;
use iawj_exec::NOMINAL_GHZ;

const BITS: [u32; 6] = [8, 10, 12, 14, 16, 18];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 18 — PRJ number of radix bits (static Micro)", &env);
    let n_r = (128_000.0 * env.scale * 10.0).max(1000.0) as usize;
    let ds = MicroSpec::static_counts(n_r, n_r * 10)
        .dupe(4)
        .seed(42)
        .generate();
    let mut rows = Vec::new();
    for &bits in &BITS {
        let mut cfg = env.config();
        cfg.prj.radix_bits = bits;
        let res = execute(Algorithm::Prj, &ds, &cfg);
        let per = 1.0 / res.total_inputs.max(1) as f64;
        rows.push(vec![
            bits.to_string(),
            fmt(res.breakdown.cycles(Phase::Partition, NOMINAL_GHZ) * per),
            fmt((res.breakdown.cycles(Phase::BuildSort, NOMINAL_GHZ)
                + res.breakdown.cycles(Phase::Probe, NOMINAL_GHZ))
                * per),
            fmt(res.breakdown.busy_ns() as f64 * NOMINAL_GHZ * per),
        ]);
    }
    print_table(&["#r", "partition", "build+probe", "total"], &rows);
}
