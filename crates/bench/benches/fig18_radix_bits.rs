//! Figure 18: PRJ radix-bit sweep (#r = 8..18) — the partitioning-cost vs
//! probe-cost trade-off. Static Micro, cycles per input tuple, run once
//! per scatter mode so the direct-vs-SWWC ablation shares the sweep.

use iawj_bench::{banner, fmt, print_table, BenchEnv, SnapshotWriter};
use iawj_common::{KernelBackend, Phase};
use iawj_core::{execute, Algorithm, ScatterMode};
use iawj_datagen::MicroSpec;
use iawj_exec::cpu_clock;

const BITS: [u32; 6] = [8, 10, 12, 14, 16, 18];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 18 — PRJ number of radix bits (static Micro)", &env);
    let clock = cpu_clock();
    println!(
        "(cycles at {:.2} GHz, {} clock)",
        clock.ghz,
        clock.source.label()
    );
    let n_r = (128_000.0 * env.scale * 10.0).max(1000.0) as usize;
    let ds = MicroSpec::static_counts(n_r, n_r * 10)
        .dupe(4)
        .seed(42)
        .generate();
    let mut snap = SnapshotWriter::new("fig18", &env);
    let mut rows = Vec::new();
    for &bits in &BITS {
        let mut row = vec![bits.to_string()];
        for mode in ScatterMode::ALL {
            let mut cfg = env.config();
            cfg.prj.radix_bits = bits;
            cfg.prj.scatter = mode;
            let res = execute(Algorithm::Prj, &ds, &cfg);
            snap.record(&format!("Micro/r{bits}"), &cfg, &res);
            if mode == ScatterMode::Direct {
                // Scalar-kernel A/B row (direct scatter only) for bench-diff.
                let scalar_cfg = cfg.clone().kernel(KernelBackend::Scalar);
                let scalar_res = execute(Algorithm::Prj, &ds, &scalar_cfg);
                snap.record(&format!("Micro/r{bits}"), &scalar_cfg, &scalar_res);
            }
            let per = 1.0 / res.total_inputs.max(1) as f64;
            row.push(fmt(res.breakdown.cycles(Phase::Partition, clock.ghz) * per));
            if mode == ScatterMode::Direct {
                // Build+probe and total are scatter-invariant; report them
                // once, from the direct run.
                row.push(fmt((res.breakdown.cycles(Phase::BuildSort, clock.ghz)
                    + res.breakdown.cycles(Phase::Probe, clock.ghz))
                    * per));
                row.push(fmt(res.breakdown.busy_ns() as f64 * clock.ghz * per));
            }
        }
        rows.push(row);
    }
    print_table(
        &["#r", "part(direct)", "build+probe", "total", "part(swwc)"],
        &rows,
    );
    snap.write();
}
