//! Figure 19: micro-architectural analysis on Rovio — (a) top-down-style
//! cycle breakdown from the cache simulator and cost model, (b) memory
//! consumption over time from the run-time gauges.

use iawj_bench::{banner, fmt, print_table, run, BenchEnv};
use iawj_cachesim::CostModel;
use iawj_core::output::aggregate_mem_curve;
use iawj_core::{trace, Algorithm};
use iawj_datagen::rovio;

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 19 — micro-architectural analysis (Rovio)", &env);
    let ds = rovio((env.scale * 0.5).min(0.02), 42);
    let cfg = env.config();
    let model = CostModel::default();

    println!("\n(a) Top-down-style breakdown (% of modelled cycles)");
    let mut rows = Vec::new();
    for algo in Algorithm::STUDIED {
        let p = trace::profile(algo, &ds, &cfg);
        let (retiring, core, memory) = p.estimate(&model).percentages();
        rows.push(vec![
            algo.name().to_string(),
            fmt(retiring),
            fmt(core),
            fmt(memory),
        ]);
    }
    print_table(
        &["algo", "retiring%", "core-bound%", "memory-bound%"],
        &rows,
    );

    println!("\n(b) Memory consumption over time (peak bytes; sampled curve)");
    let mut rows = Vec::new();
    let mut mem_cfg = cfg.clone();
    mem_cfg.mem_sample_every = 1024;
    for algo in Algorithm::STUDIED {
        let res = run(algo, &ds, &mem_cfg);
        let curve = aggregate_mem_curve(&res.mem_samples, res.threads);
        let peak = curve.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let final_b = curve.last().map(|&(_, b)| b).unwrap_or(0);
        rows.push(vec![
            algo.name().to_string(),
            format!("{}", peak),
            format!("{}", final_b),
            curve.len().to_string(),
        ]);
    }
    print_table(&["algo", "peak bytes", "final bytes", "samples"], &rows);
}
