//! fig_index — where indexing the window beats rebuilding it.
//!
//! The paper's eight engines all join tuples at rest, so the streaming
//! service re-builds hash tables (or re-sorts) from scratch at every
//! window close. The index engines (IBWJ / IBWJ_PART) instead pay an
//! *incremental* maintenance cost — one insert per tuple at ingest, one
//! eviction sweep per close — and answer each close with probes only.
//! This harness sweeps window length × key skew × engine over sliding
//! windows whose length is a large multiple of the slide: the bigger the
//! window, the more rebuild work the at-rest engines repeat per close
//! while the index path's probe cost stays proportional to the slide.
//!
//! The final table replays the decision tree over the same corners: the
//! low-rate large-window region must select the index engines (the
//! `index_window_tuples` crossover), the skewed corner the partitioned
//! variant.
//!
//! Emits `BENCH_fig_index.json` when `IAWJ_BENCH_DIR` is set.

use iawj_bench::{banner, fmt, fmt_opt, print_table, BenchEnv, SnapshotWriter};
use iawj_core::decision::{recommend, Objective, Thresholds, Workload};
use iawj_core::streaming::{run_replay, StreamConfig};
use iawj_core::windowing::WindowSpec;
use iawj_core::Algorithm;
use iawj_common::{Rate, Tuple};
use iawj_datagen::MicroSpec;

const QUEUE_CAP: usize = 1024;

/// Timestamp-ordered Zipf-keyed streams spanning `span_ms` of stream time.
fn streams(rate: f64, span_ms: u32, theta: f64, seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    let ds = MicroSpec {
        rate_r: rate,
        rate_s: rate,
        window_ms: span_ms,
        dupe: 4,
        skew_key: theta,
        skew_ts: 0.0,
        static_data: false,
        count_r: None,
        count_s: None,
        seed,
    }
    .generate();
    (ds.r, ds.s)
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "fig_index — index maintenance vs rebuild (window length x skew x engine)",
        &env,
    );
    let mut snap = SnapshotWriter::new("fig_index", &env);

    let span_ms = 8_000u32;
    let rate = 1000.0 * env.scale;
    let engines = [
        Algorithm::Npj,
        Algorithm::Prj,
        Algorithm::Ibwj,
        Algorithm::IbwjPart,
    ];
    // Window length grows while the slide stays len/4: every tuple is
    // re-joined 4x regardless of length, so the column trend isolates the
    // per-close rebuild cost the index engines avoid.
    let lens = [200u32, 800, 3200];

    for theta in [0.0f64, 0.99] {
        let (r, s) = streams(rate, span_ms, theta, 42);
        println!(
            "\n--- theta={theta} ({} + {} tuples over {span_ms} stream-ms) ---",
            r.len(),
            s.len()
        );
        let mut rows = Vec::new();
        for engine in engines {
            let mut row = vec![engine.name().to_string()];
            for len in lens {
                let spec = WindowSpec::Sliding {
                    len_ms: len,
                    slide_ms: len / 4,
                };
                let cfg = StreamConfig::new(spec, engine)
                    .run_config(env.config())
                    .tick_every_ms(0.0);
                let report = run_replay(cfg, r.clone(), s.clone(), QUEUE_CAP);
                snap.record_stream(
                    &format!("FigIndex/len{len}/theta{theta}"),
                    engine.name(),
                    &report,
                );
                row.push(format!(
                    "{} t/wall-ms, close p99 {} ms",
                    fmt(report.wall_tpms()),
                    fmt_opt(report.close_hist.quantile_ms(0.99)),
                ));
            }
            rows.push(row);
        }
        print_table(&["engine", "len=200", "len=800", "len=3200"], &rows);
    }

    // Decision-tree crossover: the same corners through `recommend`. A
    // low arrival rate leaves slack for incremental maintenance; the
    // window population decides whether rebuilding is still cheap enough.
    println!("\n--- decision tree (low arrival rate, throughput objective) ---");
    let th = Thresholds::default();
    let mut rows = Vec::new();
    for (label, total, skew) in [
        ("small window", 100_000usize, 0.0f64),
        ("large window", 4 << 20, 0.0),
        ("large window, skewed", 4 << 20, 1.4),
    ] {
        let w = Workload {
            rate_r: Rate::PerMs(2.0),
            rate_s: Rate::PerMs(2.0),
            dupe: 4.0,
            skew_key: skew,
            total_tuples: total,
            cores: env.threads,
        };
        let pick = recommend(&w, Objective::Throughput, &th);
        rows.push(vec![
            label.to_string(),
            format!("{total}"),
            format!("{skew}"),
            pick.name().to_string(),
        ]);
    }
    print_table(&["corner", "tuples", "skew", "recommends"], &rows);
    snap.write();
}
