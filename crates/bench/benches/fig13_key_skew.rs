//! Figure 13: impact of key skewness skew_key. PRJ is the sensitive one —
//! skew collapses its radix partitions; SHJ^JM improves via cache reuse.

use iawj_bench::{banner, fmt, fmt_opt, print_table, run, BenchEnv};
use iawj_core::metrics::latency_quantile_ms;
use iawj_core::Algorithm;

const SKEWS: [f64; 6] = [0.0, 0.4, 0.8, 1.2, 1.6, 2.0];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 13 — key skewness sweep (v = 12800 t/ms)", &env);
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for &skew in &SKEWS {
        let ds = env.micro(12800.0, 12800.0).skew_key(skew).generate();
        let mut tpt = vec![format!("{skew}")];
        let mut lat = vec![format!("{skew}")];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["skew_key"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th latency (ms)");
    print_table(&cols, &lat_rows);
}
