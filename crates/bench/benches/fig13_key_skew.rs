//! Figure 13: impact of key skewness skew_key. PRJ is the sensitive one —
//! skew collapses its radix partitions; SHJ^JM improves via cache reuse.
//! Part (c) compares static chunking against the morsel-steal scheduler
//! on the skew-sensitive lazy engines: stealing is exactly the remedy for
//! the thread starvation the paper blames for PRJ's drop.

use iawj_bench::{banner, fmt, fmt_opt, print_table, run, BenchEnv};
use iawj_core::metrics::latency_quantile_ms;
use iawj_core::{Algorithm, Scheduler};

const SKEWS: [f64; 6] = [0.0, 0.4, 0.8, 1.2, 1.6, 2.0];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 13 — key skewness sweep (v = 12800 t/ms)", &env);
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for &skew in &SKEWS {
        let ds = env.micro(12800.0, 12800.0).skew_key(skew).generate();
        let mut tpt = vec![format!("{skew}")];
        let mut lat = vec![format!("{skew}")];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["skew_key"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th latency (ms)");
    print_table(&cols, &lat_rows);

    // (c) scheduler ablation on the engines whose parallel loops starve
    // under skew. Same sweep, static vs morsel-steal throughput.
    const ABLATED: [Algorithm; 3] = [Algorithm::Prj, Algorithm::MPass, Algorithm::Npj];
    let mut sched_rows = Vec::new();
    for &skew in &SKEWS {
        let ds = env.micro(12800.0, 12800.0).skew_key(skew).generate();
        let mut row = vec![format!("{skew}")];
        for algo in ABLATED {
            for sched in Scheduler::ALL {
                let res = run(algo, &ds, &cfg.clone().scheduler(sched));
                row.push(fmt(res.throughput_tpms()));
            }
        }
        sched_rows.push(row);
    }
    let mut sched_cols = vec!["skew_key".to_string()];
    for algo in ABLATED {
        for sched in Scheduler::ALL {
            sched_cols.push(format!("{}/{sched}", algo.name()));
        }
    }
    let sched_cols: Vec<&str> = sched_cols.iter().map(String::as_str).collect();
    println!("\n(c) Throughput (tuples/ms), static vs morsel-steal scheduler");
    print_table(&sched_cols, &sched_rows);
}
