//! Table 5: simulated hardware counters per input tuple on Rovio.
//! (The instruction, L1I and branch-misprediction rows of the paper are
//! hardware-only and out of the data-cache simulator's scope.)

use iawj_bench::{banner, fmt, print_table, BenchEnv, SnapshotWriter};
use iawj_core::{trace, Algorithm};
use iawj_datagen::rovio;
use iawj_obs::CachesimPerTuple;

fn main() {
    let env = BenchEnv::from_env();
    banner("Table 5 — simulated counters per input tuple (Rovio)", &env);
    let ds = rovio((env.scale * 0.5).min(0.02), 42);
    let cfg = env.config();
    let prefetch = std::env::var("IAWJ_PREFETCH").is_ok_and(|v| v == "1");
    if prefetch {
        println!("(next-line stream prefetcher: ON)");
    }
    let mut snap = SnapshotWriter::new("table5", &env);
    let mut rows = Vec::new();
    for algo in Algorithm::STUDIED {
        let p = trace::profile_with(algo, &ds, &cfg, prefetch).per_tuple();
        snap.record_cachesim(
            &ds.name,
            algo.name(),
            CachesimPerTuple {
                dtlb: p.dtlb,
                l1d: p.l1d,
                l2: p.l2,
                l3: p.l3,
            },
        );
        rows.push(vec![
            algo.name().to_string(),
            fmt(p.dtlb),
            fmt(p.l1d),
            fmt(p.l2),
            fmt(p.l3),
        ]);
    }
    print_table(
        &[
            "algo",
            "TLBD miss/t",
            "L1D miss/t",
            "L2 miss/t",
            "L3 miss/t",
        ],
        &rows,
    );
    snap.write();
}
