//! Streaming service — sustained-ingest throughput of the continuous
//! [`StreamingJoin`] operator, swept over window spec × engine.
//!
//! Each cell replays a multi-second stream through capacity-bounded
//! ingress queues as fast as the operator drains them (no wall-clock
//! pacing), so the measured tuples-per-stream-ms is the *operator-limited*
//! sustained rate: pane assignment + watermark-driven closes + engine
//! runs, with backpressure throttling the producers whenever a close is
//! in flight. Sliding cells run the pane-sharing path; the `no-share`
//! column re-runs them naively to show what sharing buys.
//!
//! Emits `BENCH_stream.json` when `IAWJ_BENCH_DIR` is set.

use iawj_bench::{banner, fmt, fmt_opt, print_table, BenchEnv, SnapshotWriter};
use iawj_common::Rate;
use iawj_core::streaming::{run_replay, StreamConfig};
use iawj_core::windowing::WindowSpec;
use iawj_core::{Algorithm, ExecMode};
use iawj_datagen::rate_stream;

const QUEUE_CAP: usize = 1024;

fn spec_label(spec: WindowSpec) -> String {
    match spec {
        WindowSpec::Tumbling { len_ms } => format!("tumbling:{len_ms}"),
        WindowSpec::Sliding { len_ms, slide_ms } => format!("sliding:{len_ms}/{slide_ms}"),
        WindowSpec::Session { gap_ms } => format!("session:{gap_ms}"),
    }
}

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Streaming service — sustained ingest (window spec x engine)",
        &env,
    );
    let mut snap = SnapshotWriter::new("stream", &env);

    // ~8 s of stream time at a rate the scale knob controls: the default
    // 0.01 scale ingests ~2x80k tuples per cell.
    let span_ms = 8_000u32;
    let rate = Rate::PerMs(1000.0 * env.scale);
    let r = rate_stream(rate, span_ms, 4096, 42);
    let s = rate_stream(rate, span_ms, 4096, 43);
    println!(
        "({} + {} tuples over {span_ms} stream-ms, queue cap {QUEUE_CAP})",
        r.len(),
        s.len()
    );

    let specs = [
        WindowSpec::Tumbling { len_ms: 500 },
        WindowSpec::Sliding {
            len_ms: 500,
            slide_ms: 250,
        },
        WindowSpec::Session { gap_ms: 50 },
    ];
    let engines = [
        Algorithm::Npj,
        Algorithm::Prj,
        Algorithm::MWay,
        Algorithm::ShjJm,
    ];

    for spec in specs {
        let label = spec_label(spec);
        println!("\n--- {label} ---");
        let mut rows = Vec::new();
        for engine in engines {
            let mut row = vec![engine.name().to_string()];
            let shares: &[bool] = match spec {
                WindowSpec::Sliding { .. } => &[true, false],
                _ => &[true],
            };
            let mut cells = vec!["-".to_string(); 2];
            for &share in shares {
                let cfg = StreamConfig::new(spec, engine)
                    .run_config(env.config())
                    .share_panes(share)
                    .tick_every_ms(0.0);
                let report = run_replay(cfg, r.clone(), s.clone(), QUEUE_CAP);
                let cell = format!(
                    "{} t/wall-ms, close p99 {} ms",
                    fmt(report.wall_tpms()),
                    fmt_opt(report.close_hist.quantile_ms(0.99)),
                );
                if share {
                    snap.record_stream(&format!("Stream/{label}"), engine.name(), &report);
                    row.push(format!("{}", report.windows.len()));
                    row.push(fmt(report.wall_ms));
                    cells[0] = cell;
                } else {
                    snap.record_stream(&format!("Stream/{label}/no-share"), engine.name(), &report);
                    cells[1] = cell;
                }
            }
            row.extend(cells);
            rows.push(row);
        }
        print_table(
            &["engine", "windows", "wall ms", "shared", "no-share"],
            &rows,
        );
    }

    // Executor comparison: the service runs an engine per window close, so
    // per-close thread provisioning is on the latency path. Re-measure the
    // close-latency distribution with the persistent pool (the default,
    // provisioned once in `StreamingJoin::new`) against per-close spawning.
    // Short windows on purpose: 320 closes per cell put the p99 deep
    // enough into the sample that a stray OS stall can't decide it, and
    // the small per-close join makes provisioning cost a large fraction
    // of each close — the quantity under test.
    let spec = WindowSpec::Tumbling { len_ms: 25 };
    println!("\n--- executor (close latency, {}) ---", spec_label(spec));
    let mut rows = Vec::new();
    for engine in engines {
        let mut row = vec![engine.name().to_string()];
        // A p99 over one replay is decided by a handful of worst closes —
        // one OS stall anywhere flips it. Replay each cell three times
        // with the modes interleaved (so environment drift across the
        // harness run hits both equally) and keep each mode's median-p99
        // run.
        let modes = [ExecMode::Spawn, ExecMode::Pool];
        let mut reports: [Vec<iawj_core::StreamReport>; 2] = [Vec::new(), Vec::new()];
        for _rep in 0..3 {
            for (m, mode) in modes.into_iter().enumerate() {
                let cfg = StreamConfig::new(spec, engine)
                    .run_config(env.config().executor(mode))
                    .tick_every_ms(0.0);
                reports[m].push(run_replay(cfg, r.clone(), s.clone(), QUEUE_CAP));
            }
        }
        for (m, mode) in modes.into_iter().enumerate() {
            let cell = &mut reports[m];
            cell.sort_by(|a, b| {
                let q = |r: &iawj_core::StreamReport| {
                    r.close_hist.quantile_ms(0.99).unwrap_or(f64::MAX)
                };
                q(a).partial_cmp(&q(b)).unwrap_or(std::cmp::Ordering::Equal)
            });
            let report = cell.swap_remove(1);
            let tag = match mode {
                ExecMode::Spawn => "exec-spawn",
                ExecMode::Pool => "exec-pool",
            };
            snap.record_stream(&format!("Stream/{tag}"), engine.name(), &report);
            row.push(format!(
                "p50 {} / p99 {} ms",
                fmt_opt(report.close_hist.quantile_ms(0.50)),
                fmt_opt(report.close_hist.quantile_ms(0.99)),
            ));
        }
        rows.push(row);
    }
    print_table(&["engine", "spawn", "pool"], &rows);
    snap.write();
}
