//! Figure 8 companion — NPJ shared-table contention A/B: the per-bucket
//! latched table against the lock-free CAS-chained table, swept over
//! threads × key skew. Alongside throughput, each cell reports the
//! journaled contention events per 1k build+probe operations: `latch:wait`
//! spin episodes in latch mode, `cas:retry` failed bucket-head publishes
//! in lock-free mode. Under high skew the latched table pays on *both*
//! sides (probes take the bucket latch across whole hot-chain scans),
//! while the lock-free table's only conflict window is the two
//! instructions between a head load and its CAS — which is the
//! latched-vs-lock-free argument of the paper's §5.3.2 discussion.

use iawj_bench::{banner, fmt, print_table, run, BenchEnv, SnapshotWriter};
use iawj_core::{Algorithm, NpjTable};
use iawj_obs::{MARK_CAS_RETRY, MARK_LATCH_WAIT};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SKEWS: [f64; 2] = [0.0, 0.99];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 8 — NPJ latched vs lock-free table contention", &env);

    let mut snap = SnapshotWriter::new("fig8_npj", &env);
    let mut rows = Vec::new();
    for &skew in &SKEWS {
        let ds = env.micro(12800.0, 12800.0).skew_key(skew).generate();
        let ops = (ds.r.len() + ds.s.len()) as f64;
        for &threads in &THREADS {
            let mut row = vec![format!("{skew}"), format!("{threads}")];
            for table in NpjTable::ALL {
                let mut cfg = env.config().npj_table(table).with_journal();
                cfg.threads = threads;
                let res = run(Algorithm::Npj, &ds, &cfg);
                snap.record(&format!("Micro/skew{skew}"), &cfg, &res);
                let mark = match table {
                    NpjTable::Latch => MARK_LATCH_WAIT,
                    NpjTable::LockFree => MARK_CAS_RETRY,
                };
                row.push(fmt(res.throughput_tpms()));
                row.push(fmt(res.count_marks(mark) as f64 * 1000.0 / ops));
            }
            rows.push(row);
        }
    }
    let cols = [
        "skew_key",
        "threads",
        "latch t/ms",
        "latch:wait/1k",
        "lockfree t/ms",
        "cas:retry/1k",
    ];
    println!("\nThroughput and journaled contention events per 1k operations");
    print_table(&cols, &rows);
    snap.write();
}
