//! Table 3 + Figure 3: statistics of the four real-world-equivalent
//! workloads, re-measured from the generated data, plus the arrival-time
//! distribution of Stock and Rovio.

use iawj_bench::{banner, fmt, print_table, BenchEnv};
use iawj_datagen::stats::{arrival_histogram, WorkloadStats};

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Table 3 — workload statistics (measured from generated data)",
        &env,
    );
    let workloads = env.real_workloads();
    let mut rows = Vec::new();
    for ds in &workloads {
        let st = WorkloadStats::measure(ds);
        rows.push(vec![
            ds.name.clone(),
            format!("{}", st.r.rate),
            format!("{}", st.s.rate),
            fmt(st.r.dupe_avg),
            fmt(st.s.dupe_avg),
            fmt(st.r.skew_key_est),
            fmt(st.s.skew_key_est),
            fmt(st.r.skew_ts_est),
            fmt(st.s.skew_ts_est),
            st.r.count.to_string(),
            st.s.count.to_string(),
        ]);
    }
    print_table(
        &[
            "workload", "v_R", "v_S", "dupe(R)", "dupe(S)", "skewK(R)", "skewK(S)", "skewT(R)",
            "skewT(S)", "|R|", "|S|",
        ],
        &rows,
    );

    println!("\nFigure 3 — arrival-time distribution (tuples per 100 ms bucket)");
    for ds in workloads
        .iter()
        .filter(|d| d.name == "Stock" || d.name == "Rovio")
    {
        for (label, stream) in [("R", &ds.r), ("S", &ds.s)] {
            let hist = arrival_histogram(stream, 1000);
            let buckets: Vec<String> = hist
                .chunks(100)
                .map(|c| c.iter().sum::<usize>().to_string())
                .collect();
            println!(
                "{:>6} {label}  [{}]  peak/ms={}",
                ds.name,
                buckets.join(" "),
                hist.iter().max().unwrap_or(&0)
            );
        }
    }
}
