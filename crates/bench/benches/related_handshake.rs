//! §6 validation: the handshake join delivers orders-of-magnitude lower
//! throughput than any of the eight studied algorithms, because every
//! tuple flows through — and is compared at — every core.

use iawj_bench::{banner, fmt, print_table, run, BenchEnv};
use iawj_core::Algorithm;

fn main() {
    let env = BenchEnv::from_env();
    banner(
        "Related work — handshake join vs the studied algorithms",
        &env,
    );
    // Modest static input: handshake is extremely slow by design.
    let ds = iawj_datagen::MicroSpec::static_counts(20_000, 20_000)
        .dupe(4)
        .seed(42)
        .generate();
    let cfg = env.config();
    let mut rows = Vec::new();
    for algo in [
        Algorithm::Npj,
        Algorithm::MPass,
        Algorithm::ShjJm,
        Algorithm::PmjJb,
        Algorithm::Handshake,
    ] {
        let res = run(algo, &ds, &cfg);
        rows.push(vec![algo.name().to_string(), fmt(res.throughput_tpms())]);
    }
    print_table(&["algo", "tpt (t/ms)"], &rows);
}
