//! Table 6: resource utilisation on Rovio — CPU utilisation measured from
//! the run's busy/wait accounting, memory-bandwidth share estimated from
//! the simulated DRAM traffic over the measured runtime.

use iawj_bench::{banner, fmt, print_table, run, BenchEnv};
use iawj_core::{trace, Algorithm};
use iawj_datagen::rovio;

/// Assumed peak DRAM bandwidth of the modelled platform (6-channel DDR4
/// 2666 ≈ 128 GB/s).
const PEAK_BW_BYTES_PER_MS: f64 = 128e9 / 1e3;

fn main() {
    let env = BenchEnv::from_env();
    banner("Table 6 — resource utilisation (Rovio)", &env);
    let ds = rovio((env.scale * 0.5).min(0.02), 42);
    // Utilisation is only meaningful under load: replay fast enough that
    // Rovio is processing-bound, as it is at paper scale.
    let mut cfg = env.config();
    cfg.speedup = env.speedup * 16.0;
    let mut rows = Vec::new();
    for algo in Algorithm::STUDIED {
        let res = run(algo, &ds, &cfg);
        let p = trace::profile(algo, &ds, &cfg);
        let dram_bytes = p.total().dram_bytes(64) as f64;
        let wall_ms = (res.elapsed_ms / env.speedup).max(1e-6); // real ms
        let bw_pct = 100.0 * dram_bytes / wall_ms / PEAK_BW_BYTES_PER_MS;
        rows.push(vec![
            algo.name().to_string(),
            fmt(bw_pct),
            fmt(res.cpu_utilisation() * 100.0),
        ]);
    }
    print_table(&["algo", "Mem BW (%)", "CPU util (%)"], &rows);
}
