//! Figure 10: impact of the relative arrival rate — v_R fixed at 1600
//! tuples/ms while v_S sweeps up to 25600.

use iawj_bench::{banner, fmt, fmt_opt, print_curve, print_table, run, BenchEnv};
use iawj_core::metrics::{latency_quantile_ms, progressiveness};
use iawj_core::Algorithm;

const S_RATES: [f64; 5] = [1600.0, 3200.0, 6400.0, 12800.0, 25600.0];

fn main() {
    let env = BenchEnv::from_env();
    banner("Figure 10 — relative arrival rates (v_R = 1600 t/ms)", &env);
    let cfg = env.config();
    let mut tpt_rows = Vec::new();
    let mut lat_rows = Vec::new();
    let mut top_results = Vec::new();
    for &vs in &S_RATES {
        let ds = env.micro(1600.0, vs).generate();
        let mut tpt = vec![format!("{vs}")];
        let mut lat = vec![format!("{vs}")];
        for algo in Algorithm::STUDIED {
            let res = run(algo, &ds, &cfg);
            tpt.push(fmt(res.throughput_tpms()));
            lat.push(fmt_opt(latency_quantile_ms(&res, 0.95)));
            if vs == S_RATES[S_RATES.len() - 1] {
                top_results.push(res);
            }
        }
        tpt_rows.push(tpt);
        lat_rows.push(lat);
    }
    let mut cols = vec!["v_S (t/ms)"];
    cols.extend(Algorithm::STUDIED.iter().map(|a| a.name()));
    println!("\n(a) Throughput (tuples/ms)");
    print_table(&cols, &tpt_rows);
    println!("\n(b) 95th latency (ms)");
    print_table(&cols, &lat_rows);
    println!("\n(c) Progressiveness at v_S = 25600 t/ms");
    for res in &top_results {
        print_curve(res.algorithm.name(), &progressiveness(res), 8);
    }
}
