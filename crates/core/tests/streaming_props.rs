//! Property tests pinning the streaming operator's invariants under
//! arbitrary window specs, streams and queue shapes:
//!
//! 1. a window never closes before the watermark passes its end (lateness
//!    is already folded into the watermark),
//! 2. every non-late tuple lands in exactly the windows
//!    [`pair_multiplicity`] / [`windows_for`] predict,
//! 3. pane-shared sliding totals equal naive per-window re-joining,
//! 4. capacity-1 queues neither deadlock nor drop in-order tuples.

use iawj_common::Tuple;
use iawj_core::streaming::{run_replay, StreamConfig, WM_END};
use iawj_core::windowing::{pair_multiplicity, windows_for, WindowSpec};
use iawj_core::{Algorithm, RunConfig};
use iawj_datagen::MicroSpec;
use proptest::prelude::*;

fn spec_from(kind: u8, a: u32, b: u32) -> WindowSpec {
    match kind % 3 {
        0 => WindowSpec::Tumbling { len_ms: a },
        1 => WindowSpec::Sliding {
            len_ms: a.max(b),
            slide_ms: a.min(b),
        },
        _ => WindowSpec::Session { gap_ms: b },
    }
}

fn streams(n: usize, span_ms: u32, seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    let ds = MicroSpec {
        rate_r: n as f64 / span_ms as f64,
        rate_s: n as f64 / span_ms as f64,
        window_ms: span_ms,
        dupe: 3,
        skew_key: 0.5,
        skew_ts: 0.0,
        static_data: false,
        count_r: None,
        count_s: None,
        seed,
    }
    .generate();
    (ds.r, ds.s)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// (1) + (2): closes respect the watermark, and window membership is
    /// exactly what the spec arithmetic predicts.
    #[test]
    fn closes_respect_watermark_and_membership(
        kind in 0u8..3,
        a in 20u32..200,
        b in 20u32..200,
        n in 30usize..150,
        seed in 0u64..500,
    ) {
        let spec = spec_from(kind, a, b);
        let (r, s) = streams(n, 600, seed);
        let cfg = StreamConfig::new(spec, Algorithm::Npj)
            .run_config(RunConfig::with_threads(1))
            .tick_every_ms(0.0);
        let report = run_replay(cfg, r.clone(), s.clone(), 64);
        prop_assert_eq!(report.late_dropped, 0);

        // (1) A window closed by watermark advance only closes once the
        // watermark (which already holds lateness back) passed its end.
        // Flushed windows carry WM_END instead.
        for w in &report.windows {
            prop_assert!(
                w.watermark_ms == WM_END || w.watermark_ms >= w.window.end() as u64,
                "window {:?} closed at watermark {}", w.window, w.watermark_ms
            );
        }

        // The realized windows are exactly the predicted set, in order.
        let predicted = windows_for(spec, &r, &s);
        let got: Vec<_> = report.windows.iter().map(|w| w.window).collect();
        prop_assert_eq!(got, predicted);

        // (2) Each tuple is counted as an input of exactly the windows
        // containing it — pair_multiplicity at a single stamp.
        let assigned: u64 = report
            .windows
            .iter()
            .map(|w| (w.inputs_r + w.inputs_s) as u64)
            .sum();
        let expected: u64 = r
            .iter()
            .chain(&s)
            .map(|t| pair_multiplicity(spec, t.ts, t.ts))
            .sum();
        prop_assert_eq!(assigned, expected);
    }

    /// (3) Pane sharing is an optimization, not a semantics change: the
    /// shared path's per-window counts and its multiplicity-recombined
    /// total both equal the naive path's.
    #[test]
    fn pane_sharing_preserves_sliding_totals(
        len in 2u32..20,
        slide in 1u32..20,
        n in 30usize..120,
        seed in 0u64..500,
    ) {
        // Scale to tens of ms so windows overlap the ~400 ms stream.
        let spec = WindowSpec::Sliding { len_ms: len * 10, slide_ms: slide * 10 };
        let (r, s) = streams(n, 400, seed);
        let mk = |share: bool| {
            let cfg = StreamConfig::new(spec, Algorithm::Npj)
                .run_config(RunConfig::with_threads(1))
                .share_panes(share)
                .tick_every_ms(0.0);
            run_replay(cfg, r.clone(), s.clone(), 64)
        };
        let shared = mk(true);
        let naive = mk(false);
        let a: Vec<u64> = shared.windows.iter().map(|w| w.matches).collect();
        let b: Vec<u64> = naive.windows.iter().map(|w| w.matches).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(shared.matches_via_multiplicity, Some(naive.matches));
    }

    /// (4) The smallest possible queues still deliver every tuple: no
    /// deadlock between two blocked producers and the draining operator,
    /// and nothing is dropped as late on an in-order stream.
    #[test]
    fn capacity_one_queues_neither_deadlock_nor_drop(
        kind in 0u8..3,
        a in 20u32..150,
        b in 20u32..150,
        n in 20usize..100,
        seed in 0u64..500,
    ) {
        let spec = spec_from(kind, a, b);
        let (r, s) = streams(n, 300, seed);
        let (nr, ns) = (r.len() as u64, s.len() as u64);
        let cfg = StreamConfig::new(spec, Algorithm::Npj)
            .run_config(RunConfig::with_threads(1))
            .tick_every_ms(0.0);
        let report = run_replay(cfg, r, s, 1);
        prop_assert_eq!(report.ingested_r, nr);
        prop_assert_eq!(report.ingested_s, ns);
        prop_assert_eq!(report.late_dropped, 0);
        prop_assert_eq!(report.final_watermark_ms, WM_END);
        prop_assert!(report.peak_queue_depth <= 1);
    }
}
