//! Differential streaming test rig: the continuous [`StreamingJoin`]
//! operator must produce *exactly* the windows and match counts of the
//! batch [`execute_windowed`] oracle over the same streams — per window,
//! not just in total — across window types, engines, key skews, thread
//! counts and seeds. A bounded out-of-order variant (arrival order
//! shuffled within the allowed lateness) must still agree, because a
//! watermark holding `lateness` behind the maximum seen timestamp never
//! declares such a tuple late.

use iawj_common::Tuple;
use iawj_core::streaming::{run_replay, StreamConfig};
use iawj_core::windowing::{execute_windowed, WindowSpec};
use iawj_core::{Algorithm, RunConfig};
use iawj_datagen::{jitter_arrival_order, MicroSpec};

const ENGINES: &[Algorithm] = &[
    Algorithm::Npj,
    Algorithm::Prj,
    Algorithm::MWay,
    Algorithm::Handshake,
    // Index engines take the persistent-index close path on pane
    // geometries and the generic at-rest path on sessions — both must
    // reproduce the oracle window-for-window.
    Algorithm::Ibwj,
    Algorithm::IbwjPart,
];

const SPECS: &[WindowSpec] = &[
    WindowSpec::Tumbling { len_ms: 250 },
    WindowSpec::Sliding {
        len_ms: 250,
        slide_ms: 100,
    },
    WindowSpec::Session { gap_ms: 40 },
];

/// A pair of timestamp-ordered streams: ~`n` tuples per side spanning
/// `span_ms` of stream time, keys Zipf-skewed at `theta`.
fn streams(n: usize, span_ms: u32, theta: f64, seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    let ds = MicroSpec {
        rate_r: n as f64 / span_ms as f64,
        rate_s: n as f64 / span_ms as f64,
        window_ms: span_ms,
        dupe: 4,
        skew_key: theta,
        skew_ts: 0.0,
        static_data: false,
        count_r: None,
        count_s: None,
        seed,
    }
    .generate();
    (ds.r, ds.s)
}

/// Assert the streaming report equals the batch oracle window-for-window.
fn assert_agrees(
    spec: WindowSpec,
    engine: Algorithm,
    threads: usize,
    r: &[Tuple],
    s: &[Tuple],
    arrival_r: Vec<Tuple>,
    arrival_s: Vec<Tuple>,
    lateness: u32,
    ctx: &str,
) {
    let run = RunConfig::with_threads(threads);
    let oracle = execute_windowed(engine, r, s, spec, &run);
    let cfg = StreamConfig::new(spec, engine)
        .run_config(run)
        .lateness(lateness)
        .tick_every_ms(0.0);
    let report = run_replay(cfg, arrival_r, arrival_s, 64);

    assert_eq!(report.late_dropped, 0, "{ctx}: no tuple may be late");
    assert_eq!(
        report.windows.len(),
        oracle.len(),
        "{ctx}: window count differs"
    );
    for (got, want) in report.windows.iter().zip(&oracle) {
        assert_eq!(got.window, want.window, "{ctx}: window bounds differ");
        assert_eq!(
            got.matches, want.result.matches,
            "{ctx}: matches differ in window {:?}",
            want.window
        );
        assert_eq!(
            got.inputs_r + got.inputs_s,
            want.result.total_inputs,
            "{ctx}: inputs differ in window {:?}",
            want.window
        );
    }
    let oracle_total: u64 = oracle.iter().map(|w| w.result.matches).sum();
    assert_eq!(report.matches, oracle_total, "{ctx}: total matches differ");
    if let Some(via) = report.matches_via_multiplicity {
        assert_eq!(
            via, oracle_total,
            "{ctx}: multiplicity recombination differs"
        );
    }
}

#[test]
fn streaming_matches_batch_oracle_in_order() {
    for &spec in SPECS {
        for &engine in ENGINES {
            for seed in [11u64, 29] {
                for theta in [0.0, 0.99] {
                    for threads in [1usize, 4] {
                        let (r, s) = streams(200, 700, theta, seed);
                        let ctx = format!(
                            "{spec:?} {engine:?} seed={seed} theta={theta} threads={threads}"
                        );
                        assert_agrees(spec, engine, threads, &r, &s, r.clone(), s.clone(), 0, &ctx);
                    }
                }
            }
        }
    }
}

#[test]
fn streaming_matches_batch_oracle_out_of_order() {
    // Arrival order is a bounded shuffle of timestamp order: each tuple is
    // displaced at most `lateness` ms. The operator runs with exactly that
    // allowed lateness, so nothing is dropped and the per-window results
    // must still be identical to the in-order batch oracle.
    let lateness = 50u32;
    for &spec in SPECS {
        for &engine in ENGINES {
            for seed in [7u64, 23] {
                let (r, s) = streams(200, 700, 0.99, seed);
                let shuffled_r = jitter_arrival_order(&r, lateness, seed ^ 0xa5);
                let shuffled_s = jitter_arrival_order(&s, lateness, seed ^ 0x5a);
                assert_ne!(
                    (r == shuffled_r, s == shuffled_s),
                    (true, true),
                    "shuffle must actually reorder something"
                );
                let ctx = format!("{spec:?} {engine:?} seed={seed} out-of-order");
                assert_agrees(
                    spec, engine, 2, &r, &s, shuffled_r, shuffled_s, lateness, &ctx,
                );
            }
        }
    }
}

#[test]
fn late_tuples_never_reach_the_persistent_index() {
    // A tuple behind the watermark is dropped before it can be indexed:
    // the index engines must agree with the oracle computed over the
    // punctual tuples alone, and count exactly the injected stragglers.
    let (r, s) = streams(200, 600, 0.4, 41);
    let spec = WindowSpec::Tumbling { len_ms: 150 };
    for &engine in &[Algorithm::Ibwj, Algorithm::IbwjPart] {
        let mut arrival_r = r.clone();
        arrival_r.push(Tuple::new(3, 0)); // arrives last, ~600 ms stale
        let run = RunConfig::with_threads(2);
        let oracle = execute_windowed(engine, &r, &s, spec, &run);
        let cfg = StreamConfig::new(spec, engine)
            .run_config(run)
            .tick_every_ms(0.0);
        let report = run_replay(cfg, arrival_r, s.clone(), 64);
        assert_eq!(report.late_dropped, 1, "{engine}");
        let got: Vec<u64> = report.windows.iter().map(|w| w.matches).collect();
        let want: Vec<u64> = oracle.iter().map(|w| w.result.matches).collect();
        assert_eq!(got, want, "{engine}: late tuple leaked into the index");
    }
}

#[test]
fn naive_and_shared_sliding_paths_agree() {
    // The naive per-window path and the pane-sharing path are two
    // implementations of the same semantics; lock them to each other and
    // to the oracle on a spec whose gcd pane (50 ms) is much smaller than
    // the window.
    let spec = WindowSpec::Sliding {
        len_ms: 250,
        slide_ms: 150,
    };
    let (r, s) = streams(250, 800, 0.5, 17);
    let run = RunConfig::with_threads(2);
    let oracle: Vec<u64> = execute_windowed(Algorithm::Npj, &r, &s, spec, &run)
        .iter()
        .map(|w| w.result.matches)
        .collect();
    for share in [true, false] {
        let cfg = StreamConfig::new(spec, Algorithm::Npj)
            .run_config(run.clone())
            .share_panes(share)
            .tick_every_ms(0.0);
        let report = run_replay(cfg, r.clone(), s.clone(), 64);
        let got: Vec<u64> = report.windows.iter().map(|w| w.matches).collect();
        assert_eq!(got, oracle, "share_panes={share}");
        assert_eq!(report.matches_via_multiplicity.is_some(), share);
    }
}
