//! The run harness: executes any studied algorithm over a dataset under a
//! configuration and produces the merged [`RunResult`].

use crate::algo::Algorithm;
use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::distribute::{jb, jm, View};
use crate::eager::hybrid::HybridEngine;
use crate::eager::pmj::PmjEngine;
use crate::eager::shj::ShjEngine;
use crate::eager::{drive_worker, handshake};
use crate::index::{self, IbwjEngine};
use crate::lazy;
use crate::output::{RunResult, WorkerOut};
use iawj_common::Ts;
use iawj_datagen::Dataset;
use iawj_exec::Executor;

/// Execute `algorithm` over `dataset` under `cfg`.
///
/// Arrival gating is enabled whenever the dataset is streaming (any tuple
/// with a nonzero timestamp); data-at-rest inputs (DEBS, static Micro) run
/// ungated. MWay and MPass get their thread count rounded down to a power
/// of two, the constraint §5 imposes for fair comparison.
///
/// # Panics
/// Panics when [`RunConfig::validate`] rejects the configuration (zero
/// threads or a zero morsel size).
///
/// ```
/// use iawj_core::{execute, Algorithm, RunConfig};
/// use iawj_datagen::MicroSpec;
///
/// // 1000 tuples per side, every key duplicated 10 times, data at rest.
/// let dataset = MicroSpec::static_counts(1000, 1000).dupe(10).generate();
/// let result = execute(Algorithm::Prj, &dataset, &RunConfig::with_threads(2));
/// // 100 keys x 10 R-dupes x 10 S-dupes:
/// assert_eq!(result.matches, 100 * 10 * 10);
/// assert!(result.throughput_tpms() > 0.0);
/// ```
pub fn execute(algorithm: Algorithm, dataset: &Dataset, cfg: &RunConfig) -> RunResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid RunConfig: {e}");
    }
    let mut cfg = cfg.clone();
    if algorithm.needs_pow2_threads() && !cfg.threads.is_power_of_two() {
        cfg.threads = prev_pow2(cfg.threads);
    }
    let exec = cfg.make_executor();
    execute_with(algorithm, dataset, &cfg, &exec)
}

/// [`execute`] on a caller-provided executor, so repeated runs (benchmark
/// sweeps, the streaming service's window closes) reuse one worker pool —
/// and one set of pinned cores — instead of provisioning threads per run.
/// The executor should have capacity for `cfg.threads` workers; runs that
/// need more fall back to spawning scoped threads for that run only.
pub fn execute_on(
    algorithm: Algorithm,
    dataset: &Dataset,
    cfg: &RunConfig,
    exec: &Executor,
) -> RunResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid RunConfig: {e}");
    }
    let mut cfg = cfg.clone();
    if algorithm.needs_pow2_threads() && !cfg.threads.is_power_of_two() {
        cfg.threads = prev_pow2(cfg.threads);
    }
    execute_with(algorithm, dataset, &cfg, exec)
}

/// Shared tail of [`execute`]/[`execute_on`]: `cfg` is validated and its
/// thread count already satisfies the algorithm's power-of-two rule.
fn execute_with(
    algorithm: Algorithm,
    dataset: &Dataset,
    cfg: &RunConfig,
    exec: &Executor,
) -> RunResult {
    let gated = !dataset.is_static();
    let clock = EventClock::start(cfg.speedup, gated);
    // The lazy approach starts once the window's last tuple has arrived.
    let arrive_by: Ts = dataset
        .r
        .last()
        .map(|t| t.ts)
        .unwrap_or(0)
        .max(dataset.s.last().map(|t| t.ts).unwrap_or(0));

    let mut workers = run_algorithm(algorithm, dataset, cfg, &clock, arrive_by, exec);
    let elapsed_ms = clock.now_ms();
    for (tid, w) in workers.iter_mut().enumerate() {
        w.core_id = exec.observed_core(tid);
    }
    RunResult::merge(
        algorithm,
        dataset.total_inputs(),
        cfg.sample_every,
        elapsed_ms,
        workers,
    )
}

fn prev_pow2(n: usize) -> usize {
    let mut p = 1usize;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

fn run_algorithm(
    algorithm: Algorithm,
    ds: &Dataset,
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
    exec: &Executor,
) -> Vec<WorkerOut> {
    let r = ds.r.as_slice();
    let s = ds.s.as_slice();
    match algorithm {
        Algorithm::Npj => lazy::npj::run_on(r, s, cfg, clock, arrive_by, exec),
        Algorithm::Prj => lazy::prj::run_on(r, s, cfg, clock, arrive_by, exec),
        Algorithm::MWay => lazy::mway::run_on(r, s, cfg, clock, arrive_by, exec),
        Algorithm::MPass => lazy::mpass::run_on(r, s, cfg, clock, arrive_by, exec),
        // Handshake owns its pipeline topology (a ring of channel-connected
        // cores fed by the caller) and is the §6 strawman, not one of the
        // eight studied engines — it keeps per-run scoped threads.
        Algorithm::Handshake => handshake::run(r, s, cfg, clock, arrive_by),
        Algorithm::ShjJm | Algorithm::PmjJm | Algorithm::HybridShj => {
            let (rows, cols) = cfg.jm_shape();
            exec.run(cfg.threads, |w| {
                let (rv, sv) = jm::worker_views(r, s, rows, cols, w);
                // Per-worker expected load: its stripe of each stream.
                let exp_r = r.len() / rows + 1;
                let exp_s = s.len() / cols + 1;
                match algorithm {
                    Algorithm::ShjJm => {
                        drive_worker(ShjEngine::new(exp_r, exp_s), rv, sv, cfg, clock)
                    }
                    Algorithm::HybridShj => {
                        let engine =
                            HybridEngine::new(exp_r, exp_s, cfg.hybrid.defer_at_batch, cfg.sort)
                                .kernel(cfg.kernel.backend);
                        drive_worker(engine, rv, sv, cfg, clock)
                    }
                    _ => {
                        let engine = PmjEngine::with_eager_merge(
                            exp_r.max(exp_s),
                            cfg.pmj.delta,
                            cfg.sort,
                            cfg.pmj.eager_merge,
                        )
                        .kernel(cfg.kernel.backend);
                        drive_worker(engine, rv, sv, cfg, clock)
                    }
                }
            })
        }
        // IBWJ: every worker observes the full streams and joins only the
        // keys it owns against its private pair of window indexes.
        Algorithm::Ibwj => exec.run(cfg.threads, |w| {
            let exp_r = r.len() / cfg.threads + 1;
            let exp_s = s.len() / cfg.threads + 1;
            let engine = IbwjEngine::new(exp_r, exp_s, w, cfg.threads)
                .kernel(cfg.kernel.backend, cfg.kernel.prefetch_dist)
                .evict_horizon(cfg.index.evict_horizon_ms);
            drive_worker(
                engine,
                View::strided(r, 0, 1),
                View::strided(s, 0, 1),
                cfg,
                clock,
            )
        }),
        Algorithm::IbwjPart => index::run_part_on(r, s, cfg, clock, arrive_by, exec),
        Algorithm::ShjJb | Algorithm::PmjJb => {
            let g = cfg.jb_group_size();
            let groups = cfg.threads / g;
            exec.run(cfg.threads, |w| {
                let (rv, sv) = jb::worker_views(r, s, cfg.threads, g, w);
                // R is partitioned across the whole matrix of workers; S is
                // replicated within the group (so a worker holds 1/groups
                // of S).
                let exp_r = r.len() / cfg.threads + 1;
                let exp_s = s.len() / groups + 1;
                if algorithm == Algorithm::ShjJb {
                    drive_worker(ShjEngine::new(exp_r, exp_s), rv, sv, cfg, clock)
                } else {
                    let engine = PmjEngine::with_eager_merge(
                        exp_r.max(exp_s),
                        cfg.pmj.delta,
                        cfg.sort,
                        cfg.pmj.eager_merge,
                    )
                    .kernel(cfg.kernel.backend);
                    drive_worker(engine, rv, sv, cfg, clock)
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{match_count, nested_loop_join};
    use iawj_datagen::MicroSpec;

    fn small_static() -> Dataset {
        MicroSpec::static_counts(800, 1000)
            .dupe(4)
            .seed(11)
            .generate()
    }

    #[test]
    #[should_panic(expected = "morsel size must be at least 1")]
    fn zero_morsel_size_is_rejected_before_dispatch() {
        let ds = small_static();
        let cfg = RunConfig::with_threads(2).morsel_size(0);
        let _ = execute(Algorithm::Prj, &ds, &cfg);
    }

    #[test]
    #[should_panic(expected = "striped latches require the latched NPJ table")]
    fn striped_lockfree_conflict_is_rejected_before_dispatch() {
        let ds = small_static();
        let mut cfg = RunConfig::with_threads(2).npj_table(iawj_exec::NpjTable::LockFree);
        cfg.npj.striped_latches = Some(64);
        let _ = execute(Algorithm::Npj, &ds, &cfg);
    }

    #[test]
    fn npj_lockfree_table_through_execute_is_exact() {
        let ds = small_static();
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .npj_table(iawj_exec::NpjTable::LockFree);
        let result = execute(Algorithm::Npj, &ds, &cfg);
        assert_eq!(result.matches, match_count(&ds.r, &ds.s, ds.window));
    }

    #[test]
    fn all_algorithms_agree_with_reference_on_static_data() {
        let ds = small_static();
        let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
        for algo in Algorithm::STUDIED {
            let cfg = RunConfig::with_threads(4).record_all();
            let result = execute(algo, &ds, &cfg);
            let mut got: Vec<_> = result
                .samples
                .iter()
                .map(|m| (m.key, m.r_ts, m.s_ts))
                .collect();
            got.sort_unstable();
            assert_eq!(got, expect, "{algo} diverged from the reference");
            assert_eq!(result.matches as usize, expect.len(), "{algo} count");
        }
    }

    #[test]
    fn index_engines_agree_with_reference() {
        let ds = small_static();
        let expect = nested_loop_join(&ds.r, &ds.s, ds.window);
        for algo in Algorithm::INDEX {
            for threads in [1usize, 3, 4] {
                let cfg = RunConfig::with_threads(threads).record_all();
                let result = execute(algo, &ds, &cfg);
                let mut got: Vec<_> = result
                    .samples
                    .iter()
                    .map(|m| (m.key, m.r_ts, m.s_ts))
                    .collect();
                got.sort_unstable();
                assert_eq!(got, expect, "{algo} diverged with {threads} threads");
            }
        }
    }

    #[test]
    fn index_engines_exact_on_streaming_input() {
        let ds = MicroSpec::with_rates(30.0, 30.0).dupe(3).seed(5).generate();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        for algo in Algorithm::INDEX {
            let cfg = RunConfig::with_threads(2).speedup(200.0);
            let result = execute(algo, &ds, &cfg);
            assert_eq!(result.matches, expect, "{algo}");
        }
    }

    #[test]
    fn hybrid_extension_agrees_with_reference() {
        let ds = small_static();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        for defer_at in [1usize, 64, usize::MAX] {
            let mut cfg = RunConfig::with_threads(4).record_all();
            cfg.hybrid.defer_at_batch = defer_at;
            let result = execute(Algorithm::HybridShj, &ds, &cfg);
            assert_eq!(result.matches, expect, "defer_at={defer_at}");
        }
    }

    #[test]
    fn handshake_agrees_too() {
        let ds = small_static();
        let cfg = RunConfig::with_threads(3).record_all();
        let result = execute(Algorithm::Handshake, &ds, &cfg);
        assert_eq!(result.matches, match_count(&ds.r, &ds.s, ds.window));
    }

    #[test]
    fn streaming_run_with_compression_is_exact() {
        // A 1000 ms window replayed 200x fast: gating active, results exact.
        let ds = MicroSpec::with_rates(30.0, 30.0).dupe(3).seed(5).generate();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        for algo in [Algorithm::Npj, Algorithm::ShjJm, Algorithm::PmjJb] {
            let cfg = RunConfig::with_threads(2).speedup(200.0);
            let result = execute(algo, &ds, &cfg);
            assert_eq!(result.matches, expect, "{algo}");
            assert!(result.last_emit_ms > 0.0);
        }
    }

    #[test]
    fn mway_threads_rounded_to_pow2() {
        let ds = small_static();
        let cfg = RunConfig::with_threads(6).record_all();
        let result = execute(Algorithm::MWay, &ds, &cfg);
        assert_eq!(result.threads, 4);
        assert_eq!(result.matches, match_count(&ds.r, &ds.s, ds.window));
    }

    #[test]
    fn jb_group_sizes_all_exact() {
        let ds = small_static();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        for g in [1usize, 2, 4] {
            let mut cfg = RunConfig::with_threads(4).record_all();
            cfg.jb.group_size = g;
            for algo in [Algorithm::ShjJb, Algorithm::PmjJb] {
                let result = execute(algo, &ds, &cfg);
                assert_eq!(result.matches, expect, "{algo} g={g}");
            }
        }
    }

    #[test]
    fn pmj_progressive_merge_ablation_is_exact() {
        let ds = small_static();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        let mut cfg = RunConfig::with_threads(4).record_all();
        cfg.pmj.eager_merge = true;
        cfg.pmj.delta = 0.1;
        for algo in [Algorithm::PmjJm, Algorithm::PmjJb] {
            let result = execute(algo, &ds, &cfg);
            assert_eq!(result.matches, expect, "{algo}");
        }
    }

    #[test]
    fn physical_partitioning_does_not_change_results() {
        let ds = small_static();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        let mut cfg = RunConfig::with_threads(4).record_all();
        cfg.jm.physical_partition = true;
        let result = execute(Algorithm::ShjJm, &ds, &cfg);
        assert_eq!(result.matches, expect);
    }

    #[test]
    fn pool_executor_is_bitwise_identical_to_spawn() {
        use iawj_exec::ExecMode;
        let ds = small_static();
        for algo in Algorithm::STUDIED {
            let collect = |mode: ExecMode| {
                let cfg = RunConfig::with_threads(4).record_all().executor(mode);
                let result = execute(algo, &ds, &cfg);
                let mut got: Vec<_> = result
                    .samples
                    .iter()
                    .map(|m| (m.key, m.r_ts, m.s_ts))
                    .collect();
                got.sort_unstable();
                (result.matches, got)
            };
            assert_eq!(
                collect(ExecMode::Spawn),
                collect(ExecMode::Pool),
                "{algo} diverged between executors"
            );
        }
    }

    #[test]
    fn one_executor_serves_many_runs_and_algorithms() {
        let ds = small_static();
        let cfg = RunConfig::with_threads(4).record_all();
        let exec = cfg.make_executor();
        let expect = match_count(&ds.r, &ds.s, ds.window);
        for _ in 0..3 {
            for algo in [
                Algorithm::Npj,
                Algorithm::Prj,
                Algorithm::MWay,
                Algorithm::ShjJm,
            ] {
                let result = execute_on(algo, &ds, &cfg, &exec);
                assert_eq!(result.matches, expect, "{algo}");
            }
        }
        assert!(
            exec.generations() > 0,
            "pool dispatch must be exercised, not the spawn fallback"
        );
    }

    #[test]
    fn run_result_carries_one_core_slot_per_worker() {
        let ds = small_static();
        let cfg = RunConfig::with_threads(2).record_all();
        let result = execute(Algorithm::Npj, &ds, &cfg);
        // One entry per worker; Some only where the platform exposes getcpu.
        assert_eq!(result.core_ids.len(), 2);
    }

    #[test]
    fn lazy_run_reports_wait_on_streaming_input() {
        use iawj_common::Phase;
        let ds = MicroSpec::with_rates(20.0, 20.0).seed(3).generate();
        let cfg = RunConfig::with_threads(2).speedup(100.0);
        let result = execute(Algorithm::Npj, &ds, &cfg);
        assert!(
            result.breakdown[Phase::Wait] > 0,
            "lazy algorithm must wait out the window"
        );
    }
}
