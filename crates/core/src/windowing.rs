//! Window assignment: running the intra-window join over a longer stream.
//!
//! The paper studies the join *within one window* and notes (§2) that the
//! IaWJ is the building block for every window type — sliding, tumbling, or
//! session. This module supplies that layer for library users: it splits a
//! pair of timestamp-ordered streams into per-window sub-inputs and runs
//! any studied algorithm over each window. Each window is joined
//! independently and completely (no incremental state is shared between
//! windows — that is the *inter*-window join problem the paper explicitly
//! scopes out).

use crate::algo::Algorithm;
use crate::config::RunConfig;
use crate::output::RunResult;
use crate::runner::execute;
use iawj_common::{Rate, Ts, Tuple, Window};
use iawj_datagen::Dataset;

/// How to carve a stream's time axis into windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Back-to-back fixed windows of `len_ms`.
    Tumbling {
        /// Window length in ms.
        len_ms: u32,
    },
    /// Overlapping fixed windows of `len_ms`, one starting every `slide_ms`.
    Sliding {
        /// Window length in ms.
        len_ms: u32,
        /// Distance between consecutive window starts.
        slide_ms: u32,
    },
    /// Data-driven windows: a window closes after `gap_ms` of silence
    /// across *both* streams.
    Session {
        /// Minimum inactivity gap that separates two sessions.
        gap_ms: u32,
    },
}

/// The windows a spec produces over streams ending at `max_ts` (inclusive).
pub fn windows_for(spec: WindowSpec, r: &[Tuple], s: &[Tuple]) -> Vec<Window> {
    let max_ts = r
        .last()
        .map(|t| t.ts)
        .unwrap_or(0)
        .max(s.last().map(|t| t.ts).unwrap_or(0));
    match spec {
        WindowSpec::Tumbling { len_ms } => {
            assert!(len_ms > 0, "tumbling windows need a positive length");
            (0..=max_ts / len_ms)
                .map(|i| Window {
                    start: i * len_ms,
                    len_ms,
                })
                .collect()
        }
        WindowSpec::Sliding { len_ms, slide_ms } => {
            assert!(
                len_ms > 0 && slide_ms > 0,
                "sliding windows need positive length and slide"
            );
            (0..=max_ts / slide_ms)
                .map(|i| Window {
                    start: i * slide_ms,
                    len_ms,
                })
                .collect()
        }
        WindowSpec::Session { gap_ms } => {
            assert!(gap_ms > 0, "session windows need a positive gap");
            // Merge the two (sorted) timestamp sequences and split on gaps.
            let mut stamps: Vec<Ts> = Vec::with_capacity(r.len() + s.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < r.len() || j < s.len() {
                let take_r = j >= s.len() || (i < r.len() && r[i].ts <= s[j].ts);
                if take_r {
                    stamps.push(r[i].ts);
                    i += 1;
                } else {
                    stamps.push(s[j].ts);
                    j += 1;
                }
            }
            let mut out = Vec::new();
            let mut start = match stamps.first() {
                Some(&t) => t,
                None => return out,
            };
            let mut prev = start;
            for &t in &stamps[1..] {
                if t - prev >= gap_ms {
                    out.push(Window {
                        start,
                        len_ms: prev - start + 1,
                    });
                    start = t;
                }
                prev = t;
            }
            out.push(Window {
                start,
                len_ms: prev - start + 1,
            });
            out
        }
    }
}

/// The half-open index range of `tuples` falling inside `w` (streams are
/// timestamp-ordered, so a window is a contiguous slice).
fn window_slice(tuples: &[Tuple], w: Window) -> std::ops::Range<usize> {
    let start = tuples.partition_point(|t| t.ts < w.start);
    let end = tuples.partition_point(|t| t.ts < w.end());
    start..end
}

/// How many windows of a spec contain a match between tuples arriving at
/// `ts_a` and `ts_b` — the multiplicity with which overlapping (sliding)
/// windows re-report the same pair. Use it to convert per-window match
/// totals into distinct-pair counts, or to weight duplicate emissions.
///
/// For tumbling windows this is 1 when both timestamps share a window and
/// 0 otherwise; for sliding windows it is the number of window starts `k ×
/// slide` with `start ≤ min(ts)` and `max(ts) < start + len`.
///
/// ```
/// use iawj_core::windowing::{pair_multiplicity, WindowSpec};
///
/// let sliding = WindowSpec::Sliding { len_ms: 200, slide_ms: 100 };
/// // Both at t=150: windows starting at 0 and 100 contain the pair.
/// assert_eq!(pair_multiplicity(sliding, 150, 150), 2);
/// // 180 ms apart: only the window starting at 0 holds both.
/// assert_eq!(pair_multiplicity(sliding, 10, 190), 1);
/// // Further apart than the window length: never joined.
/// assert_eq!(pair_multiplicity(sliding, 0, 300), 0);
/// ```
pub fn pair_multiplicity(spec: WindowSpec, ts_a: Ts, ts_b: Ts) -> u64 {
    let lo = ts_a.min(ts_b) as u64;
    let hi = ts_a.max(ts_b) as u64;
    match spec {
        WindowSpec::Tumbling { len_ms } => {
            assert!(len_ms > 0);
            u64::from(lo / len_ms as u64 == hi / len_ms as u64)
        }
        WindowSpec::Sliding { len_ms, slide_ms } => {
            assert!(len_ms > 0 && slide_ms > 0);
            let (len, slide) = (len_ms as u64, slide_ms as u64);
            if hi - lo >= len {
                return 0;
            }
            // Starts s = k*slide with s <= lo and hi < s + len, i.e.
            // s > hi - len  =>  s >= hi.saturating_sub(len - 1).
            let min_start = hi.saturating_sub(len - 1);
            let k_max = lo / slide;
            let k_min = min_start.div_ceil(slide);
            (k_max + 1).saturating_sub(k_min)
        }
        WindowSpec::Session { gap_ms } => {
            assert!(gap_ms > 0);
            // Session windows realized from the two stamps alone: they sit
            // in one session iff they are within a gap of each other, and
            // sessions never overlap, so the multiplicity is 0 or 1. When
            // the full stream is in evidence (more stamps may bridge or
            // split sessions), use [`pair_multiplicity_in`] over
            // `windows_for`'s realized windows instead.
            u64::from(hi - lo < gap_ms as u64)
        }
    }
}

/// Data-aware multiplicity: how many of the *realized* `windows` contain
/// both timestamps. This is the form [`pair_multiplicity`] cannot compute
/// from the spec alone for session windows (their extents depend on the
/// data); the streaming operator uses it for eviction accounting, and the
/// tests use it to cross-check the closed-form spec answer:
///
/// ```
/// use iawj_core::windowing::{pair_multiplicity_in, windows_for, WindowSpec};
/// use iawj_common::Tuple;
///
/// let r = vec![Tuple::new(1, 0), Tuple::new(1, 5), Tuple::new(1, 40)];
/// let ws = windows_for(WindowSpec::Session { gap_ms: 20 }, &r, &[]);
/// assert_eq!(pair_multiplicity_in(&ws, 0, 5), 1);  // same session
/// assert_eq!(pair_multiplicity_in(&ws, 5, 40), 0); // across the gap
/// ```
pub fn pair_multiplicity_in(windows: &[Window], ts_a: Ts, ts_b: Ts) -> u64 {
    windows
        .iter()
        .filter(|w| w.contains(ts_a) && w.contains(ts_b))
        .count() as u64
}

/// One window's join outcome.
pub struct WindowedResult {
    /// The window that was joined.
    pub window: Window,
    /// The run result of the IaWJ over that window.
    pub result: RunResult,
}

/// Run `algorithm` over every window of `spec`, independently.
///
/// ```
/// use iawj_core::windowing::{execute_windowed, WindowSpec};
/// use iawj_core::{Algorithm, RunConfig};
/// use iawj_common::Tuple;
///
/// // Key 7 appears in both streams in each of two 100 ms windows.
/// let r = vec![Tuple::new(7, 10), Tuple::new(7, 110)];
/// let s = vec![Tuple::new(7, 20), Tuple::new(7, 120)];
/// let out = execute_windowed(
///     Algorithm::Npj, &r, &s,
///     WindowSpec::Tumbling { len_ms: 100 },
///     &RunConfig::with_threads(1),
/// );
/// let matches: Vec<u64> = out.iter().map(|w| w.result.matches).collect();
/// assert_eq!(matches, vec![1, 1], "one match per window, no cross-window pairs");
/// ```
///
/// Each window's sub-streams are re-based to the window start (the IaWJ of
/// the paper always sees a window starting at 0) and joined at full speed
/// — the per-window join runs once the window has closed, which is the
/// natural batch deployment of an IaWJ building block. Windows with an
/// empty side still run (and produce zero matches).
pub fn execute_windowed(
    algorithm: Algorithm,
    r: &[Tuple],
    s: &[Tuple],
    spec: WindowSpec,
    cfg: &RunConfig,
) -> Vec<WindowedResult> {
    windows_for(spec, r, s)
        .into_iter()
        .map(|w| {
            let rebase = |t: &Tuple| Tuple::new(t.key, 0);
            let r_win: Vec<Tuple> = r[window_slice(r, w)].iter().map(rebase).collect();
            let s_win: Vec<Tuple> = s[window_slice(s, w)].iter().map(rebase).collect();
            let ds = Dataset {
                name: format!("window@{}", w.start),
                r: r_win,
                s: s_win,
                window: Window::of_len(0),
                rate_r: Rate::Infinite,
                rate_s: Rate::Infinite,
            };
            WindowedResult {
                window: w,
                result: execute(algorithm, &ds, cfg),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Rng;

    fn stream(n: usize, keys: u32, span_ms: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        let mut v: Vec<Tuple> = (0..n)
            .map(|_| Tuple::new(rng.next_u32() % keys, rng.below(span_ms as u64) as u32))
            .collect();
        v.sort_unstable_by_key(|t| t.ts);
        v
    }

    /// Reference: matches of one window by brute force.
    fn window_matches(r: &[Tuple], s: &[Tuple], w: Window) -> u64 {
        let mut n = 0;
        for a in r.iter().filter(|t| w.contains(t.ts)) {
            for b in s.iter().filter(|t| w.contains(t.ts)) {
                if a.key == b.key {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn tumbling_windows_tile_the_stream() {
        let r = stream(300, 16, 1000, 1);
        let s = stream(300, 16, 1000, 2);
        let ws = windows_for(WindowSpec::Tumbling { len_ms: 250 }, &r, &s);
        assert_eq!(ws.len(), 4);
        assert!(ws.windows(2).all(|p| p[0].end() == p[1].start));
        // Every tuple belongs to exactly one window.
        for t in r.iter().chain(s.iter()) {
            assert_eq!(ws.iter().filter(|w| w.contains(t.ts)).count(), 1);
        }
    }

    #[test]
    fn tumbling_join_equals_per_window_reference() {
        let r = stream(250, 8, 800, 3);
        let s = stream(250, 8, 800, 4);
        let cfg = RunConfig::with_threads(2);
        let spec = WindowSpec::Tumbling { len_ms: 200 };
        let outs = execute_windowed(Algorithm::Prj, &r, &s, spec, &cfg);
        for wr in &outs {
            assert_eq!(
                wr.result.matches,
                window_matches(&r, &s, wr.window),
                "window {:?}",
                wr.window
            );
        }
        // The tumbling total equals the sum of the per-window references.
        let total: u64 = outs.iter().map(|w| w.result.matches).sum();
        let expect: u64 = windows_for(spec, &r, &s)
            .into_iter()
            .map(|w| window_matches(&r, &s, w))
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn sliding_windows_overlap() {
        let r = stream(200, 8, 500, 5);
        let s = stream(200, 8, 500, 6);
        let spec = WindowSpec::Sliding {
            len_ms: 200,
            slide_ms: 100,
        };
        let ws = windows_for(spec, &r, &s);
        // A tuple at t=150 falls into windows starting at 0 and 100.
        let covering = ws.iter().filter(|w| w.contains(150)).count();
        assert_eq!(covering, 2);
        let cfg = RunConfig::with_threads(2);
        for wr in execute_windowed(Algorithm::ShjJm, &r, &s, spec, &cfg) {
            assert_eq!(wr.result.matches, window_matches(&r, &s, wr.window));
        }
    }

    #[test]
    fn session_windows_split_on_gaps() {
        // Two bursts separated by 500 ms of silence.
        let mk = |base: u32| -> Vec<Tuple> {
            (0..50).map(|i| Tuple::new(i % 5, base + i / 5)).collect()
        };
        let mut r = mk(0);
        r.extend(mk(600));
        let mut s = mk(2);
        s.extend(mk(602));
        let ws = windows_for(WindowSpec::Session { gap_ms: 200 }, &r, &s);
        assert_eq!(ws.len(), 2, "two sessions expected: {ws:?}");
        assert!(ws[0].end() <= 600);
        assert!(ws[1].start >= 600);
        // No cross-session matches.
        let cfg = RunConfig::with_threads(2);
        let outs = execute_windowed(
            Algorithm::MPass,
            &r,
            &s,
            WindowSpec::Session { gap_ms: 200 },
            &cfg,
        );
        let total: u64 = outs.iter().map(|w| w.result.matches).sum();
        let expect: u64 = ws.iter().map(|&w| window_matches(&r, &s, w)).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn pair_multiplicity_matches_brute_force() {
        use iawj_common::Rng;
        let mut rng = Rng::new(13);
        for _ in 0..500 {
            let len = 1 + rng.below(120) as u32;
            let slide = 1 + rng.below(len as u64) as u32;
            let a = rng.below(600) as u32;
            let b = rng.below(600) as u32;
            let spec = WindowSpec::Sliding {
                len_ms: len,
                slide_ms: slide,
            };
            let brute = (0..=600u32 / slide)
                .map(|k| Window {
                    start: k * slide,
                    len_ms: len,
                })
                .filter(|w| w.contains(a) && w.contains(b))
                .count() as u64;
            assert_eq!(
                pair_multiplicity(spec, a, b),
                brute,
                "len={len} slide={slide} a={a} b={b}"
            );
        }
    }

    #[test]
    fn sliding_totals_decompose_into_distinct_times_multiplicity() {
        // Sum of per-window matches == sum over distinct pairs of their
        // multiplicity.
        let r = stream(120, 8, 400, 21);
        let s = stream(120, 8, 400, 22);
        let spec = WindowSpec::Sliding {
            len_ms: 150,
            slide_ms: 50,
        };
        let cfg = RunConfig::with_threads(2);
        let per_window: u64 = execute_windowed(Algorithm::Npj, &r, &s, spec, &cfg)
            .iter()
            .map(|w| w.result.matches)
            .sum();
        let weighted: u64 = r
            .iter()
            .flat_map(|a| s.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.key == b.key)
            .map(|(a, b)| pair_multiplicity(spec, a.ts, b.ts))
            .sum();
        assert_eq!(per_window, weighted);
    }

    #[test]
    fn tumbling_multiplicity_is_membership() {
        let spec = WindowSpec::Tumbling { len_ms: 100 };
        assert_eq!(pair_multiplicity(spec, 10, 99), 1);
        assert_eq!(pair_multiplicity(spec, 99, 100), 0);
        assert_eq!(pair_multiplicity(spec, 250, 250), 1);
    }

    #[test]
    fn session_multiplicity_is_within_gap_membership() {
        let spec = WindowSpec::Session { gap_ms: 10 };
        assert_eq!(pair_multiplicity(spec, 0, 1), 1);
        assert_eq!(pair_multiplicity(spec, 0, 9), 1);
        assert_eq!(pair_multiplicity(spec, 0, 10), 0, "a full gap splits");
        assert_eq!(pair_multiplicity(spec, 7, 7), 1);
        // Agrees with the realized windows of the two stamps alone.
        for (a, b) in [(0u32, 1u32), (0, 9), (0, 10), (3, 30)] {
            let stamps = vec![Tuple::new(0, a), Tuple::new(0, b)];
            let ws = windows_for(spec, &stamps, &[]);
            assert_eq!(
                pair_multiplicity(spec, a, b),
                pair_multiplicity_in(&ws, a, b),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn realized_multiplicity_agrees_with_spec_for_sliding() {
        let r = stream(120, 8, 400, 31);
        let s = stream(120, 8, 400, 32);
        let spec = WindowSpec::Sliding {
            len_ms: 150,
            slide_ms: 50,
        };
        let ws = windows_for(spec, &r, &s);
        for a in r.iter().step_by(7) {
            for b in s.iter().step_by(7) {
                assert_eq!(
                    pair_multiplicity(spec, a.ts, b.ts),
                    pair_multiplicity_in(&ws, a.ts, b.ts),
                    "a={} b={}",
                    a.ts,
                    b.ts
                );
            }
        }
    }

    #[test]
    fn empty_streams_yield_no_session_windows() {
        assert!(windows_for(WindowSpec::Session { gap_ms: 10 }, &[], &[]).is_empty());
        let ws = windows_for(WindowSpec::Tumbling { len_ms: 100 }, &[], &[]);
        assert_eq!(ws.len(), 1, "one (empty) window covering t=0");
    }
}
