//! The eager join approach (§3.2): stream join engines driven by a gated
//! per-worker pull loop.
//!
//! Every eager worker owns two [`View`]s (its slice of R and S under the
//! distribution scheme) and one [`Engine`] (SHJ or PMJ state). The loop
//! alternates pulling available batches from both views — when one stream
//! has nothing available the worker reads from the other, and when neither
//! does it stalls (the Wait phase), exactly the behaviour §4.2.2 describes.
//!
//! Scheduler note: under `--scheduler steal` the eager loop adopts the
//! morsel *claim granularity* (pulled batches are processed and journaled
//! in `morsel:claim` units) but performs no inter-worker stealing. The
//! distribution schemes are ownership contracts — a JB worker's state only
//! joins tuples of its key classes, a JM worker covers a fixed matrix cell
//! — so migrating a pulled tuple to another worker would silently drop its
//! matches. Dynamic rebalancing for eager engines means re-partitioning
//! (PanJoin-style), which is out of scope here; both scheduler flags are
//! nevertheless valid on every engine and checked by the differential
//! harness.

pub mod handshake;
pub mod hybrid;
pub mod pmj;
pub mod shj;

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::distribute::{Take, View};
use crate::lazy::EmitClock;
use crate::output::WorkerOut;
use iawj_common::{Phase, Tuple};
use iawj_exec::morsel::MARK_CLAIM;
use iawj_exec::PhaseTimer;
use std::time::Duration;

/// Tuples pulled per batch. Small enough that availability is checked with
/// fine granularity, large enough to amortise the phase-timer switches.
pub const BATCH: usize = 64;

/// A per-worker eager join engine.
pub trait Engine {
    /// Process a batch of newly arrived R tuples.
    fn on_r(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    );

    /// Process a batch of newly arrived S tuples.
    fn on_s(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    );

    /// Both streams are exhausted: flush any remaining work (PMJ's final
    /// sort + merge phase; a no-op for SHJ).
    fn finish(&mut self, timer: &mut PhaseTimer, emit: &mut EmitClock<'_>, out: &mut WorkerOut);

    /// Bytes of state this engine currently holds (Figure 19b gauge).
    fn state_bytes(&self) -> usize;
}

/// Drive one eager worker to completion: pull, process, stall, repeat.
pub fn drive_worker<E: Engine>(
    mut engine: E,
    mut r_view: View<'_>,
    mut s_view: View<'_>,
    cfg: &RunConfig,
    clock: &EventClock,
) -> WorkerOut {
    let mut out = WorkerOut::new(cfg.sample_every);
    let mut timer = cfg.timer_for(Phase::Other, clock.epoch());
    let mut emit = EmitClock::new(clock);
    let mut r_batch: Vec<Tuple> = Vec::with_capacity(BATCH);
    let mut s_batch: Vec<Tuple> = Vec::with_capacity(BATCH);
    // Physical partitioning (Figure 17): retain value copies of every
    // dispatched tuple in worker-local buffers.
    let mut retained: Vec<Tuple> = Vec::new();
    let physical = cfg.jm.physical_partition;
    let stealing = cfg.sched.stealing();
    let morsel = cfg.sched.morsel_size.max(1);
    let mut processed_since_sample = 0usize;

    loop {
        timer.switch_to(Phase::Partition);
        r_batch.clear();
        let r_take = r_view.take_batch(clock, BATCH, &mut r_batch);
        s_batch.clear();
        let s_take = s_view.take_batch(clock, BATCH, &mut s_batch);
        if physical {
            retained.extend_from_slice(&r_batch);
            retained.extend_from_slice(&s_batch);
        }

        if !r_batch.is_empty() || !s_batch.is_empty() {
            // The emit clock caches between reads; a worker coming out of a
            // stall would otherwise stamp matches with pre-stall time.
            emit.refresh();
        }
        if stealing {
            // Morsel claim granularity: journal each processed unit so
            // steal-mode traces are comparable across engines. (No
            // inter-worker stealing here — see the module docs.)
            for chunk in r_batch.chunks(morsel) {
                timer.instant(MARK_CLAIM);
                engine.on_r(chunk, &mut timer, &mut emit, &mut out);
            }
            for chunk in s_batch.chunks(morsel) {
                timer.instant(MARK_CLAIM);
                engine.on_s(chunk, &mut timer, &mut emit, &mut out);
            }
        } else {
            if !r_batch.is_empty() {
                engine.on_r(&r_batch, &mut timer, &mut emit, &mut out);
            }
            if !s_batch.is_empty() {
                engine.on_s(&s_batch, &mut timer, &mut emit, &mut out);
            }
        }
        processed_since_sample += r_batch.len() + s_batch.len();

        if cfg.mem_sample_every > 0 && processed_since_sample >= cfg.mem_sample_every {
            processed_since_sample = 0;
            let bytes = engine.state_bytes()
                + r_view.log_bytes()
                + s_view.log_bytes()
                + retained.capacity() * std::mem::size_of::<Tuple>();
            out.mem_samples.push((clock.now_ms(), bytes));
        }

        match (r_take, s_take) {
            (Take::Exhausted, Take::Exhausted) => break,
            (Take::Got(_), _) | (_, Take::Got(_)) => {}
            _ => {
                // Neither stream has an arrived tuple: stall until one does.
                if timer.current() != Phase::Wait {
                    timer.instant("stall");
                }
                timer.switch_to(Phase::Wait);
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
    timer.instant("flush");
    engine.finish(&mut timer, &mut emit, &mut out);
    if cfg.mem_sample_every > 0 {
        let bytes = engine.state_bytes()
            + r_view.log_bytes()
            + s_view.log_bytes()
            + retained.capacity() * std::mem::size_of::<Tuple>();
        out.mem_samples.push((clock.now_ms(), bytes));
    }
    out.set_timing(timer.finish_parts());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Sink;

    /// A counting engine for loop-behaviour tests.
    struct CountEngine {
        r: usize,
        s: usize,
        finished: bool,
    }

    impl Engine for CountEngine {
        fn on_r(
            &mut self,
            batch: &[Tuple],
            _t: &mut PhaseTimer,
            _e: &mut EmitClock<'_>,
            _o: &mut WorkerOut,
        ) {
            self.r += batch.len();
        }
        fn on_s(
            &mut self,
            batch: &[Tuple],
            _t: &mut PhaseTimer,
            _e: &mut EmitClock<'_>,
            out: &mut WorkerOut,
        ) {
            self.s += batch.len();
            out.sink.push(0, 0, 0, 1.0);
        }
        fn finish(&mut self, _t: &mut PhaseTimer, _e: &mut EmitClock<'_>, _o: &mut WorkerOut) {
            self.finished = true;
        }
        fn state_bytes(&self) -> usize {
            8
        }
    }

    #[test]
    fn drives_both_streams_to_exhaustion() {
        let r: Vec<Tuple> = (0..200).map(|i| Tuple::new(i, 0)).collect();
        let s: Vec<Tuple> = (0..300).map(|i| Tuple::new(i, 0)).collect();
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1);
        let rv = View::strided(&r, 0, 1);
        let sv = View::strided(&s, 0, 1);
        let out = drive_worker(
            CountEngine {
                r: 0,
                s: 0,
                finished: false,
            },
            rv,
            sv,
            &cfg,
            &clock,
        );
        assert!(out.sink.count() > 0);
        assert!(out.breakdown.total_ns() > 0);
    }

    #[test]
    fn stalls_then_completes_under_gating() {
        // Tuples arrive at 0 and ~30 stream-ms; with 10x speedup that is
        // 3 ms of real waiting in between.
        let r = vec![Tuple::new(1, 0), Tuple::new(2, 30)];
        let s = vec![Tuple::new(3, 0), Tuple::new(4, 30)];
        let clock = EventClock::start(10.0, true);
        let cfg = RunConfig::with_threads(1);
        let rv = View::strided(&r, 0, 1);
        let sv = View::strided(&s, 0, 1);
        let out = drive_worker(
            CountEngine {
                r: 0,
                s: 0,
                finished: false,
            },
            rv,
            sv,
            &cfg,
            &clock,
        );
        assert!(
            out.breakdown[Phase::Wait] > 0,
            "worker must have stalled waiting for the 30 ms tuples"
        );
    }

    #[test]
    fn physical_partitioning_retains_copies() {
        let r: Vec<Tuple> = (0..100).map(|i| Tuple::new(i, 0)).collect();
        let s: Vec<Tuple> = Vec::new();
        let clock = EventClock::ungated();
        let mut cfg = RunConfig::with_threads(1);
        cfg.jm.physical_partition = true;
        cfg.mem_sample_every = 10;
        let rv = View::strided(&r, 0, 1);
        let sv = View::strided(&s, 0, 1);
        let out = drive_worker(
            CountEngine {
                r: 0,
                s: 0,
                finished: false,
            },
            rv,
            sv,
            &cfg,
            &clock,
        );
        let last_bytes = out.mem_samples.last().expect("final mem sample").1;
        assert!(
            last_bytes >= 100 * 8,
            "retained buffer must be accounted: {last_bytes}"
        );
    }
}
