//! Progressive Merge Join (PMJ), after Dittrich et al., with the paper's
//! modernisation (§3.2.1): the sorting step is controlled by a parameter δ
//! (a fraction of the expected input) instead of the physical memory limit,
//! and runs live in main memory rather than on disk.
//!
//! Initial phase: accumulate δ-sized loads from both streams, sort each
//! into a run pair, and immediately scan-join the new pair. Merge phase (at
//! end of input): merge all runs of each stream with run provenance and
//! join *across* runs, skipping same-run pairs the initial phase already
//! produced.

use crate::eager::Engine;
use crate::lazy::EmitClock;
use crate::output::WorkerOut;
use iawj_common::KernelBackend;
use iawj_common::{Phase, Sink, Tuple};
use iawj_exec::merge::kway_merge_tagged;
use iawj_exec::mergejoin::{merge_join, merge_join_cross_runs};
use iawj_exec::sort::{sort_packed_kernel, SortBackend};
use iawj_exec::PhaseTimer;

/// Per-worker PMJ state.
pub struct PmjEngine {
    /// Tuples per run (δ × expected per-worker input), at least 16.
    run_size: usize,
    sort: SortBackend,
    kernel: KernelBackend,
    /// Cross-join new runs against old ones immediately (progressive
    /// merging) instead of one final merge phase.
    eager_merge: bool,
    r_pending: Vec<u64>,
    s_pending: Vec<u64>,
    r_runs: Vec<Vec<u64>>,
    s_runs: Vec<Vec<u64>>,
}

impl PmjEngine {
    /// Engine producing runs of `delta × expected` tuples, with the final
    /// merge phase (the paper's configuration).
    pub fn new(expected_per_stream: usize, delta: f64, sort: SortBackend) -> Self {
        Self::with_eager_merge(expected_per_stream, delta, sort, false)
    }

    /// Engine with progressive (per-run) cross merging when `eager_merge`.
    pub fn with_eager_merge(
        expected_per_stream: usize,
        delta: f64,
        sort: SortBackend,
        eager_merge: bool,
    ) -> Self {
        let run_size = ((expected_per_stream as f64 * delta).ceil() as usize).max(16);
        PmjEngine {
            run_size,
            sort,
            kernel: KernelBackend::default(),
            eager_merge,
            r_pending: Vec::new(),
            s_pending: Vec::new(),
            r_runs: Vec::new(),
            s_runs: Vec::new(),
        }
    }

    /// Builder: select the hot-loop kernel backend for the sort steps.
    pub fn kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// The configured tuples-per-run.
    pub fn run_size(&self) -> usize {
        self.run_size
    }

    /// Close the current load: sort both pending buffers into a run pair,
    /// join the pair, and shelve the runs for the merge phase.
    fn step(&mut self, timer: &mut PhaseTimer, emit: &mut EmitClock<'_>, out: &mut WorkerOut) {
        if self.r_pending.is_empty() && self.s_pending.is_empty() {
            return;
        }
        timer.switch_to(Phase::BuildSort);
        let mut r_run = std::mem::take(&mut self.r_pending);
        sort_packed_kernel(&mut r_run, self.sort, self.kernel);
        let mut s_run = std::mem::take(&mut self.s_pending);
        sort_packed_kernel(&mut s_run, self.sort, self.kernel);

        timer.switch_to(Phase::Probe);
        let now = emit.refresh();
        let mut local_now = now;
        let mut n = 0u32;
        merge_join(&r_run, &s_run, |k, rts, sts| {
            n += 1;
            if n.is_multiple_of(32) {
                local_now = emit.now();
            }
            out.sink.push(k, rts, sts, local_now);
        });
        if self.eager_merge {
            // Progressive merging: join the new runs against every earlier
            // run of the opposite stream right now. Pair (i, j) with i != j
            // is produced exactly when max(i, j)'s run closes.
            timer.switch_to(Phase::Merge);
            let mut local_now = emit.refresh();
            let mut n = 0u32;
            let mut sink_match = |k, rts, sts| {
                n += 1;
                if n.is_multiple_of(32) {
                    local_now = emit.now();
                }
                out.sink.push(k, rts, sts, local_now);
            };
            for old_s in &self.s_runs {
                merge_join(&r_run, old_s, &mut sink_match);
            }
            for old_r in &self.r_runs {
                merge_join(old_r, &s_run, &mut sink_match);
            }
        }
        self.r_runs.push(r_run);
        self.s_runs.push(s_run);
    }

    /// A load is complete when either side has gathered a full run — the
    /// stand-in for "reading input until memory is full" in the original.
    fn load_full(&self) -> bool {
        self.r_pending.len() >= self.run_size || self.s_pending.len() >= self.run_size
    }
}

impl Engine for PmjEngine {
    fn on_r(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        timer.switch_to(Phase::BuildSort);
        self.r_pending.extend(batch.iter().map(|t| t.pack()));
        if self.load_full() {
            self.step(timer, emit, out);
        }
    }

    fn on_s(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        timer.switch_to(Phase::BuildSort);
        self.s_pending.extend(batch.iter().map(|t| t.pack()));
        if self.load_full() {
            self.step(timer, emit, out);
        }
    }

    fn finish(&mut self, timer: &mut PhaseTimer, emit: &mut EmitClock<'_>, out: &mut WorkerOut) {
        // Final partial load.
        self.step(timer, emit, out);
        if self.eager_merge {
            // Every cross-run pair was already joined progressively.
            return;
        }
        if self.r_runs.len() <= 1 && self.s_runs.len() <= 1 {
            // A single run pair was fully joined in the initial phase.
            return;
        }
        // Merge phase: provenance-tagged merge of all runs per stream...
        timer.switch_to(Phase::Merge);
        let r_refs: Vec<&[u64]> = self.r_runs.iter().map(|r| r.as_slice()).collect();
        let (r_all, r_tags) = kway_merge_tagged(&r_refs);
        let s_refs: Vec<&[u64]> = self.s_runs.iter().map(|r| r.as_slice()).collect();
        let (s_all, s_tags) = kway_merge_tagged(&s_refs);

        // ...then join across runs, skipping the same-run pairs.
        timer.switch_to(Phase::Probe);
        let mut local_now = emit.refresh();
        let mut n = 0u32;
        merge_join_cross_runs(&r_all, &r_tags, &s_all, &s_tags, |k, rts, sts| {
            n += 1;
            if n.is_multiple_of(32) {
                local_now = emit.now();
            }
            out.sink.push(k, rts, sts, local_now);
        });
    }

    fn state_bytes(&self) -> usize {
        let vec_bytes = |v: &Vec<u64>| v.capacity() * 8;
        vec_bytes(&self.r_pending)
            + vec_bytes(&self.s_pending)
            + self.r_runs.iter().map(vec_bytes).sum::<usize>()
            + self.s_runs.iter().map(vec_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::EventClock;
    use crate::config::RunConfig;
    use crate::distribute::View;
    use crate::eager::drive_worker;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    fn run_single(r: &[Tuple], s: &[Tuple], delta: f64) -> Vec<(u32, u32, u32)> {
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1).record_all();
        let engine = PmjEngine::new(r.len().max(s.len()), delta, SortBackend::Vectorized);
        let out = drive_worker(
            engine,
            View::strided(r, 0, 1),
            View::strided(s, 0, 1),
            &cfg,
            &clock,
        );
        let mut got: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn matches_reference_across_deltas() {
        let r = random_stream(600, 48, 1);
        let s = random_stream(800, 48, 2);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for &delta in &[0.05, 0.2, 0.5, 1.0] {
            assert_eq!(run_single(&r, &s, delta), expect, "delta={delta}");
        }
    }

    #[test]
    fn steal_scheduler_matches_reference() {
        use iawj_exec::Scheduler;
        let r = random_stream(600, 48, 1);
        let s = random_stream(800, 48, 2);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        let clock = EventClock::ungated();
        // Sub-chunked delivery changes PMJ's run boundaries; the match set
        // must not change with them.
        let cfg = RunConfig::with_threads(1)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(5);
        let engine = PmjEngine::new(r.len().max(s.len()), 0.2, SortBackend::Vectorized);
        let out = drive_worker(
            engine,
            View::strided(&r, 0, 1),
            View::strided(&s, 0, 1),
            &cfg,
            &clock,
        );
        let mut got: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn tiny_delta_many_runs_still_exact() {
        let r = random_stream(300, 8, 3);
        let s = random_stream(300, 8, 4);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        // run_size clamps at 16 -> ~19 runs per stream.
        assert_eq!(run_single(&r, &s, 0.0001), expect);
    }

    #[test]
    fn asymmetric_streams() {
        let r = random_stream(50, 16, 5);
        let s = random_stream(900, 16, 6);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        assert_eq!(run_single(&r, &s, 0.1), expect);
    }

    #[test]
    fn empty_side() {
        let r = random_stream(100, 8, 7);
        assert!(run_single(&r, &[], 0.2).is_empty());
        assert!(run_single(&[], &r, 0.2).is_empty());
    }

    #[test]
    fn eager_merge_matches_reference() {
        let r = random_stream(700, 24, 11);
        let s = random_stream(900, 24, 12);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for &delta in &[0.05, 0.3, 1.0] {
            let clock = EventClock::ungated();
            let cfg = RunConfig::with_threads(1).record_all();
            let engine = PmjEngine::with_eager_merge(
                r.len().max(s.len()),
                delta,
                SortBackend::Vectorized,
                true,
            );
            let out = drive_worker(
                engine,
                View::strided(&r, 0, 1),
                View::strided(&s, 0, 1),
                &cfg,
                &clock,
            );
            let mut got: Vec<_> = out
                .sink
                .samples
                .iter()
                .map(|m| (m.key, m.r_ts, m.s_ts))
                .collect();
            got.sort_unstable();
            assert_eq!(got, expect, "delta={delta}");
        }
    }

    #[test]
    fn run_size_respects_delta_and_floor() {
        assert_eq!(
            PmjEngine::new(1000, 0.2, SortBackend::Scalar).run_size(),
            200
        );
        assert_eq!(PmjEngine::new(10, 0.1, SortBackend::Scalar).run_size(), 16);
    }

    #[test]
    fn merge_phase_is_timed_with_many_runs() {
        let r = random_stream(2000, 64, 8);
        let s = random_stream(2000, 64, 9);
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1);
        let engine = PmjEngine::new(2000, 0.05, SortBackend::Vectorized);
        let out = drive_worker(
            engine,
            View::strided(&r, 0, 1),
            View::strided(&s, 0, 1),
            &cfg,
            &clock,
        );
        assert!(out.breakdown[Phase::Merge] > 0, "merge phase must appear");
    }
}
