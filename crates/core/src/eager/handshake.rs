//! A handshake-join-style pipelined stream join — the §6 validation
//! strawman. The paper implemented handshake join (Teubner & Müller) and
//! observed throughput orders of magnitude below all eight studied
//! algorithms, because every tuple must flow through (and be compared
//! against state in) every core.
//!
//! This implementation keeps that defining dataflow property in a
//! simplified, provably exactly-once form: both streams enter a linear
//! pipeline of cores in global arrival order; each tuple is stored at its
//! home core (round-robin) and probes every core's opposite-stream store as
//! it passes, emitting a match only against tuples with a smaller global
//! sequence number. FIFO channels preserve entry order at every core, so
//! of any matching pair the later tuple always finds the earlier one,
//! exactly once. (The original's bidirectional flow is a performance
//! refinement, not a semantic one; the per-hop messaging overhead being
//! measured here is the same.)

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::lazy::EmitClock;
use crate::output::WorkerOut;
use iawj_common::{Key, Phase, Sink, Ts, Tuple};

use std::collections::HashMap;
use std::sync::mpsc;

enum Msg {
    Tuple { t: Tuple, is_r: bool, seq: u32 },
    Done,
}

/// Run the handshake pipeline. `arrive_by` is unused (eager algorithms are
/// gated per tuple) but kept for signature parity with the lazy runners.
pub fn run(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    _arrive_by: Ts,
) -> Vec<WorkerOut> {
    let threads = cfg.threads;
    // Merge both streams into one arrival-ordered feed with global seqs.
    let mut feed: Vec<(Tuple, bool)> = Vec::with_capacity(r.len() + s.len());
    {
        let (mut i, mut j) = (0usize, 0usize);
        while i < r.len() || j < s.len() {
            let take_r = j >= s.len() || (i < r.len() && r[i].ts <= s[j].ts);
            if take_r {
                feed.push((r[i], true));
                i += 1;
            } else {
                feed.push((s[j], false));
                j += 1;
            }
        }
    }

    let mut senders = Vec::with_capacity(threads);
    let mut receivers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::sync_channel::<Msg>(1024);
        senders.push(tx);
        receivers.push(rx);
    }
    let head = senders[0].clone();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (core, rx) in receivers.into_iter().enumerate() {
            let next = senders.get(core + 1).cloned();
            handles.push(scope.spawn(move || core_loop(core, threads, rx, next, cfg, clock)));
        }
        drop(senders);

        // Feed the pipeline, gated on arrival.
        for (seq, &(t, is_r)) in feed.iter().enumerate() {
            clock.wait_until(t.ts);
            head.send(Msg::Tuple {
                t,
                is_r,
                seq: seq as u32,
            })
            .expect("pipeline alive");
        }
        head.send(Msg::Done).expect("pipeline alive");
        drop(head);

        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

type Store = HashMap<Key, Vec<(Ts, u32)>>;

fn core_loop(
    core: usize,
    threads: usize,
    rx: mpsc::Receiver<Msg>,
    next: Option<mpsc::SyncSender<Msg>>,
    cfg: &RunConfig,
    clock: &EventClock,
) -> WorkerOut {
    let mut out = WorkerOut::new(cfg.sample_every);
    let mut timer = cfg.timer_for(Phase::Wait, clock.epoch());
    let mut emit = EmitClock::new(clock);
    let mut r_store: Store = HashMap::new();
    let mut s_store: Store = HashMap::new();
    let mut stored = 0usize;
    loop {
        timer.switch_to(Phase::Wait);
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        match msg {
            Msg::Done => {
                timer.instant("pipeline:done");
                if let Some(n) = &next {
                    let _ = n.send(Msg::Done);
                }
                break;
            }
            Msg::Tuple { t, is_r, seq } => {
                // Probe the opposite store: only strictly older tuples, so
                // each pair is emitted at exactly one core, once.
                timer.switch_to(Phase::Probe);
                let opposite = if is_r { &s_store } else { &r_store };
                if let Some(entries) = opposite.get(&t.key) {
                    let now = emit.now();
                    for &(ts, other_seq) in entries {
                        if other_seq < seq {
                            let (r_ts, s_ts) = if is_r { (t.ts, ts) } else { (ts, t.ts) };
                            out.sink.push(t.key, r_ts, s_ts, now);
                        }
                    }
                }
                // Store at the home core.
                if seq as usize % threads == core {
                    timer.switch_to(Phase::BuildSort);
                    let store = if is_r { &mut r_store } else { &mut s_store };
                    store.entry(t.key).or_default().push((t.ts, seq));
                    stored += 1;
                    if cfg.mem_sample_every > 0 && stored.is_multiple_of(cfg.mem_sample_every) {
                        let bytes = (r_store.len() + s_store.len()) * 48
                            + (stored) * std::mem::size_of::<(Ts, u32)>();
                        out.mem_samples.push((clock.now_ms(), bytes));
                    }
                }
                // Forward along the chain.
                if let Some(n) = &next {
                    timer.switch_to(Phase::Partition);
                    let _ = n.send(Msg::Tuple { t, is_r, seq });
                }
            }
        }
    }
    out.set_timing(timer.finish_parts());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 32) as u32))
            .collect()
    }

    fn canonical(outs: &[WorkerOut]) -> Vec<(u32, u32, u32)> {
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn matches_reference() {
        let r = random_stream(200, 16, 1);
        let s = random_stream(250, 16, 2);
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(32))
        );
    }

    #[test]
    fn single_core_pipeline() {
        let r = random_stream(100, 8, 3);
        let s = random_stream(100, 8, 4);
        let cfg = RunConfig::with_threads(1).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(32))
        );
    }

    #[test]
    fn steal_scheduler_flag_is_inert_but_exact() {
        // The handshake pipeline is dataflow-scheduled (tuples flow
        // core-to-core), so there is no claimable index space to steal;
        // the flag must be accepted and change nothing.
        use iawj_exec::Scheduler;
        let r = random_stream(200, 16, 1);
        let s = random_stream(250, 16, 2);
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .scheduler(Scheduler::Steal);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(32))
        );
    }

    #[test]
    fn empty_inputs() {
        let cfg = RunConfig::with_threads(2).record_all();
        let clock = EventClock::ungated();
        let outs = run(&[], &[], &cfg, &clock, 0);
        assert_eq!(outs.iter().map(|w| w.sink.count()).sum::<u64>(), 0);
    }
}
