//! A hybrid eager/lazy engine — the paper's §5.2 closing observation made
//! concrete: *"an interesting future research area to explore how to
//! orchestrate both approaches to achieve optimal progressiveness at all
//! time"*.
//!
//! Under light load the engine behaves exactly like SHJ — matches stream
//! out the moment both sides have arrived. When a pull delivers a *full*
//! batch (the dispatcher is saturated and per-tuple probing is falling
//! behind, the regime where §5.3.1 shows eager hashing thrashes), the
//! batch is deferred to a backlog instead. Once the backlog reaches
//! `flush_at` tuples — or input ends — it is joined in *bulk*: one sorted
//! merge-join for backlog×backlog plus one sequential probe pass per side
//! against the live tables, after which the backlog is folded into the
//! tables and the engine is eager again. Bursts are absorbed lazily,
//! steady trickles stay eager.
//!
//! Exactly-once argument: a tuple is either *eager* (processed through
//! SHJ) or *backlogged until flush F*. For a pair (r, s):
//! - both eager → classic SHJ exactness;
//! - r backlogged in F, s eager or flushed before F → r probes the S table
//!   during F, which contains s (and not vice versa: when s was processed,
//!   r was not yet in the R table);
//! - both in the same flush → the backlog×backlog merge join (tables do
//!   not yet contain either);
//! - s backlogged in a later flush F′ → s finds r then (r was folded in at
//!   F).
//!
//! Each pair is produced by exactly one of these steps.

use crate::eager::shj::ShjEngine;
use crate::eager::Engine;
use crate::lazy::EmitClock;
use crate::output::WorkerOut;
use iawj_common::KernelBackend;
use iawj_common::{Phase, Sink, Tuple};
use iawj_exec::mergejoin::merge_join;
use iawj_exec::sort::{sort_packed_kernel, SortBackend};
use iawj_exec::PhaseTimer;

/// Per-worker hybrid state: an SHJ core plus a flushable backlog.
pub struct HybridEngine {
    shj: ShjEngine,
    r_backlog: Vec<Tuple>,
    s_backlog: Vec<Tuple>,
    /// A single `on_*` batch at least this full is deferred.
    defer_at_batch: usize,
    /// Combined backlog size that triggers a mid-stream bulk flush.
    flush_at: usize,
    sort: SortBackend,
    kernel: KernelBackend,
    flushes: usize,
}

impl HybridEngine {
    /// Engine sized like [`ShjEngine`]. `defer_at_batch` is the saturation
    /// heuristic (`usize::MAX` disables deferral → pure SHJ); the backlog
    /// is bulk-joined every `16 × defer_at_batch` tuples or at end of
    /// input, whichever comes first.
    pub fn new(
        expected_r: usize,
        expected_s: usize,
        defer_at_batch: usize,
        sort: SortBackend,
    ) -> Self {
        HybridEngine {
            shj: ShjEngine::new(expected_r, expected_s),
            r_backlog: Vec::new(),
            s_backlog: Vec::new(),
            defer_at_batch: defer_at_batch.max(1),
            flush_at: defer_at_batch.saturating_mul(16).max(1024),
            sort,
            kernel: KernelBackend::default(),
            flushes: 0,
        }
    }

    /// Builder: select the hot-loop kernel backend for the flush sorts.
    pub fn kernel(mut self, kernel: KernelBackend) -> Self {
        self.kernel = kernel;
        self
    }

    /// How many tuples are currently deferred (diagnostics).
    pub fn backlog_len(&self) -> usize {
        self.r_backlog.len() + self.s_backlog.len()
    }

    /// Bulk flushes performed so far (diagnostics).
    pub fn flushes(&self) -> usize {
        self.flushes
    }

    /// Bulk-join and fold in the backlog.
    fn flush(&mut self, timer: &mut PhaseTimer, emit: &mut EmitClock<'_>, out: &mut WorkerOut) {
        if self.r_backlog.is_empty() && self.s_backlog.is_empty() {
            return;
        }
        self.flushes += 1;
        // Backlog × backlog: one sorted merge join.
        timer.switch_to(Phase::BuildSort);
        let mut r_sorted: Vec<u64> = self.r_backlog.iter().map(|t| t.pack()).collect();
        sort_packed_kernel(&mut r_sorted, self.sort, self.kernel);
        let mut s_sorted: Vec<u64> = self.s_backlog.iter().map(|t| t.pack()).collect();
        sort_packed_kernel(&mut s_sorted, self.sort, self.kernel);
        timer.switch_to(Phase::Probe);
        let mut local_now = emit.refresh();
        let mut n = 0u32;
        merge_join(&r_sorted, &s_sorted, |k, rts, sts| {
            n += 1;
            if n.is_multiple_of(32) {
                local_now = emit.now();
            }
            out.sink.push(k, rts, sts, local_now);
        });
        // Backlog × the eagerly-built tables (one sequential pass per side).
        for t in &self.r_backlog {
            let now = emit.now();
            self.shj
                .s_table()
                .probe(t.key, |s_ts| out.sink.push(t.key, t.ts, s_ts, now));
        }
        for t in &self.s_backlog {
            let now = emit.now();
            self.shj
                .r_table()
                .probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
        }
        // Fold the backlog into the tables so later arrivals find it.
        timer.switch_to(Phase::BuildSort);
        self.shj.insert_r_bulk(&self.r_backlog);
        self.shj.insert_s_bulk(&self.s_backlog);
        self.r_backlog.clear();
        self.s_backlog.clear();
    }
}

impl Engine for HybridEngine {
    fn on_r(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        if batch.len() >= self.defer_at_batch {
            timer.switch_to(Phase::Partition);
            self.r_backlog.extend_from_slice(batch);
            if self.backlog_len() >= self.flush_at {
                self.flush(timer, emit, out);
            }
        } else {
            self.shj.on_r(batch, timer, emit, out);
        }
    }

    fn on_s(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        if batch.len() >= self.defer_at_batch {
            timer.switch_to(Phase::Partition);
            self.s_backlog.extend_from_slice(batch);
            if self.backlog_len() >= self.flush_at {
                self.flush(timer, emit, out);
            }
        } else {
            self.shj.on_s(batch, timer, emit, out);
        }
    }

    fn finish(&mut self, timer: &mut PhaseTimer, emit: &mut EmitClock<'_>, out: &mut WorkerOut) {
        self.shj.finish(timer, emit, out);
        self.flush(timer, emit, out);
    }

    fn state_bytes(&self) -> usize {
        self.shj.state_bytes()
            + (self.r_backlog.capacity() + self.s_backlog.capacity()) * std::mem::size_of::<Tuple>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::EventClock;
    use crate::config::RunConfig;
    use crate::distribute::View;
    use crate::eager::drive_worker;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    fn run_single(r: &[Tuple], s: &[Tuple], defer_at: usize) -> Vec<(u32, u32, u32)> {
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1).record_all();
        let engine = HybridEngine::new(r.len(), s.len(), defer_at, SortBackend::Vectorized);
        let out = drive_worker(
            engine,
            View::strided(r, 0, 1),
            View::strided(s, 0, 1),
            &cfg,
            &clock,
        );
        let mut got: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn pure_eager_mode_matches_reference() {
        let r = random_stream(400, 32, 1);
        let s = random_stream(500, 32, 2);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        assert_eq!(run_single(&r, &s, usize::MAX), expect);
    }

    #[test]
    fn always_deferring_matches_reference() {
        // defer_at = 1: every batch is backlogged; multiple mid-stream
        // flushes exercise the fold-in path.
        let r = random_stream(3000, 32, 3);
        let s = random_stream(3000, 32, 4);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        assert_eq!(run_single(&r, &s, 1), expect);
    }

    #[test]
    fn steal_scheduler_matches_reference() {
        use iawj_exec::Scheduler;
        let r = random_stream(1000, 16, 5);
        let s = random_stream(1000, 16, 6);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        let clock = EventClock::ungated();
        // Sub-chunked pulls shrink per-call batch sizes below the defer
        // threshold; the engine must stay exact either way it flips.
        let cfg = RunConfig::with_threads(1)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(16);
        let engine = HybridEngine::new(r.len(), s.len(), 16, SortBackend::Vectorized);
        let out = drive_worker(
            engine,
            View::strided(&r, 0, 1),
            View::strided(&s, 0, 1),
            &cfg,
            &clock,
        );
        let mut got: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn mixed_mode_exactly_once() {
        // Ungated pulls come in full batches (64) except the tails, so a
        // threshold of 64 routes most tuples through the backlog and the
        // tails through SHJ — every pair class is exercised.
        let r = random_stream(1000, 16, 5);
        let s = random_stream(1000, 16, 6);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        assert_eq!(run_single(&r, &s, 64), expect);
    }

    #[test]
    fn mid_stream_flushes_happen() {
        let r = random_stream(40_000, 64, 7);
        let s = random_stream(40_000, 64, 8);
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1);
        let mut engine = HybridEngine::new(r.len(), s.len(), 64, SortBackend::Vectorized);
        // Drive by hand so we can inspect the engine afterwards.
        let mut timer = iawj_exec::PhaseTimer::start(Phase::Other);
        let mut emit = crate::lazy::EmitClock::new(&clock);
        let mut out = WorkerOut::new(cfg.sample_every);
        for chunk in r.chunks(64) {
            engine.on_r(chunk, &mut timer, &mut emit, &mut out);
        }
        for chunk in s.chunks(64) {
            engine.on_s(chunk, &mut timer, &mut emit, &mut out);
        }
        assert!(
            engine.flushes() > 1,
            "expected mid-stream flushes, got {}",
            engine.flushes()
        );
        engine.finish(&mut timer, &mut emit, &mut out);
        assert_eq!(engine.backlog_len(), 0);
        let expect = crate::reference::match_count(&r, &s, Window::of_len(64));
        assert_eq!(out.sink.count(), expect);
    }

    #[test]
    fn backlog_threshold_behaviour() {
        let mut e = HybridEngine::new(8, 8, 2, SortBackend::Scalar);
        let clock = EventClock::ungated();
        let mut emit = EmitClock::new(&clock);
        let mut timer = PhaseTimer::start(Phase::Other);
        let mut out = WorkerOut::new(1);
        e.on_r(&[Tuple::new(1, 0)], &mut timer, &mut emit, &mut out);
        assert_eq!(e.backlog_len(), 0, "below threshold stays eager");
        e.on_r(
            &[Tuple::new(1, 1), Tuple::new(1, 2)],
            &mut timer,
            &mut emit,
            &mut out,
        );
        assert_eq!(e.backlog_len(), 2, "threshold batch defers");
        e.on_s(&[Tuple::new(1, 3)], &mut timer, &mut emit, &mut out);
        assert_eq!(e.backlog_len(), 2, "small batches stay eager (not sticky)");
        // s@3 probed the r_table eagerly: only r@0 is there -> 1 match.
        assert_eq!(out.sink.count(), 1);
        e.finish(&mut timer, &mut emit, &mut out);
        assert_eq!(e.backlog_len(), 0);
        // Flush adds r@1,r@2 x s@3 via the s_table probe... r backlog
        // probes s_table which holds s@3 -> 2 more matches. Total 3.
        assert_eq!(out.sink.count(), 3);
    }
}
