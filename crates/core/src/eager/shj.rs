//! Symmetric Hash Join (SHJ), after Wilschut & Apers — the first hash-based
//! stream join and the default in most stream processing engines (§3.2.1).
//!
//! Each worker keeps two hash tables, one per input stream. A newly arrived
//! R tuple is inserted into the R table and immediately probes the S table
//! (and symmetrically for S), so matches appear as soon as both sides have
//! arrived. Exactly-once emission holds because the worker processes its
//! tuples sequentially: of any matching pair, whichever side is processed
//! second finds the first in the opposite table.

use crate::eager::Engine;
use crate::lazy::EmitClock;
use crate::output::WorkerOut;
use iawj_common::{Phase, Sink, Tuple};
use iawj_exec::{LocalTable, PhaseTimer};

/// Per-worker SHJ state.
pub struct ShjEngine {
    r_table: LocalTable,
    s_table: LocalTable,
}

impl ShjEngine {
    /// Engine with tables pre-sized for the expected per-worker load.
    pub fn new(expected_r: usize, expected_s: usize) -> Self {
        ShjEngine {
            r_table: LocalTable::with_capacity(expected_r.max(16)),
            s_table: LocalTable::with_capacity(expected_s.max(16)),
        }
    }

    /// The R-side table (the hybrid engine's bulk phase probes it).
    pub fn r_table(&self) -> &LocalTable {
        &self.r_table
    }

    /// The S-side table.
    pub fn s_table(&self) -> &LocalTable {
        &self.s_table
    }

    /// Bulk-insert R tuples without probing (the hybrid engine folds its
    /// joined backlog in through here).
    pub fn insert_r_bulk(&mut self, tuples: &[Tuple]) {
        for t in tuples {
            self.r_table.insert(t.key, t.ts);
        }
    }

    /// Bulk-insert S tuples without probing.
    pub fn insert_s_bulk(&mut self, tuples: &[Tuple]) {
        for t in tuples {
            self.s_table.insert(t.key, t.ts);
        }
    }
}

impl Engine for ShjEngine {
    fn on_r(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        timer.switch_to(Phase::BuildSort);
        for t in batch {
            self.r_table.insert(t.key, t.ts);
        }
        timer.switch_to(Phase::Probe);
        for t in batch {
            let now = emit.now();
            self.s_table
                .probe(t.key, |s_ts| out.sink.push(t.key, t.ts, s_ts, now));
        }
    }

    fn on_s(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        timer.switch_to(Phase::BuildSort);
        for t in batch {
            self.s_table.insert(t.key, t.ts);
        }
        timer.switch_to(Phase::Probe);
        for t in batch {
            let now = emit.now();
            self.r_table
                .probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
        }
    }

    fn finish(&mut self, _timer: &mut PhaseTimer, _emit: &mut EmitClock<'_>, _out: &mut WorkerOut) {
        // SHJ is fully incremental: nothing is deferred.
    }

    fn state_bytes(&self) -> usize {
        self.r_table.bytes() + self.s_table.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::EventClock;
    use crate::config::RunConfig;
    use crate::distribute::View;
    use crate::eager::drive_worker;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    #[test]
    fn single_worker_matches_reference() {
        let r = random_stream(400, 32, 1);
        let s = random_stream(500, 32, 2);
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1).record_all();
        let out = drive_worker(
            ShjEngine::new(r.len(), s.len()),
            View::strided(&r, 0, 1),
            View::strided(&s, 0, 1),
            &cfg,
            &clock,
        );
        let mut got: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn steal_scheduler_subchunks_batches_exactly() {
        use iawj_exec::morsel::MARK_CLAIM;
        use iawj_exec::Scheduler;
        let r = random_stream(400, 32, 1);
        let s = random_stream(500, 32, 2);
        let clock = EventClock::ungated();
        // morsel 7 < BATCH forces every pull through the sub-chunk path.
        let cfg = RunConfig::with_threads(1)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(7)
            .with_journal();
        let out = drive_worker(
            ShjEngine::new(r.len(), s.len()),
            View::strided(&r, 0, 1),
            View::strided(&s, 0, 1),
            &cfg,
            &clock,
        );
        let mut got: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
        let claims = out
            .journal
            .as_ref()
            .expect("journaled")
            .count_marks(MARK_CLAIM);
        assert!(claims >= 900 / 7, "every sub-chunk journaled: {claims}");
    }

    #[test]
    fn direct_interleaving_is_exactly_once() {
        // Drive the engine by hand with interleaved singleton batches.
        let mut e = ShjEngine::new(4, 4);
        let clock = EventClock::ungated();
        let mut emit = EmitClock::new(&clock);
        let mut timer = PhaseTimer::start(Phase::Other);
        let mut out = WorkerOut::new(1);
        e.on_r(&[Tuple::new(7, 1)], &mut timer, &mut emit, &mut out);
        e.on_s(&[Tuple::new(7, 2)], &mut timer, &mut emit, &mut out); // finds r@1 via r_table
        e.on_r(&[Tuple::new(7, 3)], &mut timer, &mut emit, &mut out); // finds s@2 via s_table
        assert_eq!(
            out.sink.count(),
            2,
            "matches (1,2) and (3,2), each exactly once"
        );
    }

    #[test]
    fn batch_insert_then_probe_does_not_self_match() {
        // A batch of R tuples must not match against the R table.
        let mut e = ShjEngine::new(4, 4);
        let clock = EventClock::ungated();
        let mut emit = EmitClock::new(&clock);
        let mut timer = PhaseTimer::start(Phase::Other);
        let mut out = WorkerOut::new(1);
        e.on_r(
            &[Tuple::new(1, 0), Tuple::new(1, 1)],
            &mut timer,
            &mut emit,
            &mut out,
        );
        assert_eq!(out.sink.count(), 0);
        e.on_s(&[Tuple::new(1, 2)], &mut timer, &mut emit, &mut out);
        assert_eq!(out.sink.count(), 2);
    }

    #[test]
    fn state_grows_with_inserts() {
        let mut e = ShjEngine::new(4, 4);
        let before = e.state_bytes();
        let clock = EventClock::ungated();
        let mut emit = EmitClock::new(&clock);
        let mut timer = PhaseTimer::start(Phase::Other);
        let mut out = WorkerOut::new(1);
        let batch: Vec<Tuple> = (0..1000).map(|i| Tuple::new(i, 0)).collect();
        e.on_r(&batch, &mut timer, &mut emit, &mut out);
        assert!(e.state_bytes() > before);
    }
}
