//! Continuous streaming join: the long-running deployment of the IaWJ.
//!
//! Every engine in this crate joins one window at rest; the paper (§2)
//! frames that as the building block any window type composes over. This
//! module supplies the composition as a service: a [`StreamingJoin`]
//! operator ingests two unbounded, timestamp-ordered streams through
//! bounded SPSC queues (blocking backpressure — a slow join throttles its
//! sources), assigns tuples to panes, closes windows as the watermark
//! advances, and runs any of the eight engines over each closed window.
//!
//! ## Watermark semantics
//!
//! The watermark is `min(max_ts_R, max_ts_S) - allowed_lateness_ms`: the
//! operator trusts each source to be in timestamp order up to a bounded
//! shuffle of `allowed_lateness_ms`. A window `[start, end)` closes once
//! the watermark reaches `end`; a tuple arriving with `ts` strictly behind
//! the watermark is *late* — counted, journaled (`stream:late`), and
//! dropped. An exhausted source's contribution to the `min` becomes +∞, so
//! when both sources end the watermark jumps to +∞ and every remaining
//! window (exactly the set [`windows_for`] realizes over the final
//! streams) flushes.
//!
//! ## Pane sharing
//!
//! Sliding windows overlap, and a naive operator re-joins every tuple
//! `len/slide` times. With pane sharing the time axis is cut into panes of
//! `g = gcd(len, slide)` ms. A window join does **not** decompose into
//! per-pane joins — matches cross pane boundaries — but it does decompose
//! into pane *pairs*: `matches(window) = Σ M(i, j)` over all panes `i, j`
//! inside the window, where `M(i, j)` is the match count of pane `i`'s
//! R-side against pane `j`'s S-side. Because `g` divides both `slide` and
//! `len`, every containing window covers whole panes, so `M(i, j)` is
//! computed once (one engine run over the pane pair, cached) and re-used
//! by every window that contains both panes. The number of such windows is
//! exactly [`pair_multiplicity`] evaluated at the pane corners — constant
//! across the pair — which gives the recombination identity the property
//! tests pin: `Σ per-window matches = Σ M(i, j) × multiplicity(i, j)`.
//! A pane (and its cached pairs) is evicted as soon as the last window
//! containing it has closed.
//!
//! Session windows are data-dependent and disjoint, so there is nothing to
//! share: a session closes when the watermark passes `last_stamp + gap`
//! (no future tuple can extend it) and its tuples are joined once.
//!
//! ## Persistent index path
//!
//! When the configured engine is index-based ([`Algorithm::is_index_based`])
//! and the geometry is pane-based, the operator does not run the engine
//! over tuples at rest at all — that would rebuild the index at every
//! close, which defeats the entire point of the family. Instead it keeps a
//! *persistent* [`WindowIndex`] per side (sharded by key partition for
//! IBWJ_PART), inserting each tuple once at ingest (`index:insert`). A
//! window close gathers the window's R tuples from the resident panes and
//! probes the persistent S index with a timestamp-range filter, fanned out
//! as contiguous morsel ranges over the operator's executor — safe because
//! probing takes `&self` and the single writer only mutates between
//! closes. Pane eviction evicts the index to the same horizon
//! (`index:evict`), and the partitioned variant re-balances its
//! partition→worker probe ownership from the per-close partition
//! histogram (`index:repart`), mirroring the batch engine's LPT plan.
//! Session geometry falls back to the generic at-rest path.
//!
//! ## Backpressure contract
//!
//! Ingress queues are bounded; `send` blocks while full. Producers are
//! never asked to drop data — the queue counts blocking episodes and the
//! operator surfaces each observation as a `stream:backpressure` journal
//! instant plus a counter in the report and the periodic [`StreamTick`].

use crate::algo::Algorithm;
use crate::config::RunConfig;
use crate::index::part_of;
use crate::runner::execute_on;
use crate::windowing::{pair_multiplicity, WindowSpec};
use iawj_common::kernel::tuple_buckets_into;
use iawj_common::spsc::{stream_channel, RecvError, StreamReceiver, StreamSender};
use iawj_common::{KernelBackend, Rate, Ts, Tuple, Window};
use iawj_datagen::{Dataset, StreamSource};
use iawj_exec::{Executor, WindowIndex};
use iawj_obs::{
    LogHistogram, SpanJournal, StreamTick, MARK_INDEX_EVICT, MARK_INDEX_INSERT, MARK_INDEX_REPART,
    MARK_STREAM_BACKPRESSURE, MARK_STREAM_CLOSE, MARK_STREAM_INGEST, MARK_STREAM_LATE,
};
use std::collections::{BTreeMap, HashMap};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The end-of-stream watermark: both sources exhausted, every window may
/// close.
pub const WM_END: u64 = u64::MAX;

/// Tuples drained from one queue per poll before servicing the other side
/// and the window state.
const INGEST_BATCH: usize = 256;

/// Configuration of a [`StreamingJoin`] operator.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// How the time axis is carved into windows.
    pub spec: WindowSpec,
    /// The engine run over each closed window (or pane pair).
    pub engine: Algorithm,
    /// Per-engine-run configuration (threads, scheduler, ...).
    pub run: RunConfig,
    /// Bounded out-of-orderness tolerated before a tuple is late.
    pub allowed_lateness_ms: u32,
    /// Share gcd-sized panes across overlapping sliding windows.
    pub share_panes: bool,
    /// Wall-clock metrics interval in ms (0 disables periodic ticks; one
    /// final tick is always emitted).
    pub tick_every_ms: f64,
}

impl StreamConfig {
    /// A config with the given window spec and engine; 0 ms lateness, pane
    /// sharing on, 2-thread engine runs, ticks once per second.
    pub fn new(spec: WindowSpec, engine: Algorithm) -> Self {
        match spec {
            WindowSpec::Tumbling { len_ms } => assert!(len_ms > 0),
            WindowSpec::Sliding { len_ms, slide_ms } => assert!(len_ms > 0 && slide_ms > 0),
            WindowSpec::Session { gap_ms } => assert!(gap_ms > 0),
        }
        StreamConfig {
            spec,
            engine,
            run: RunConfig::with_threads(2),
            allowed_lateness_ms: 0,
            share_panes: true,
            tick_every_ms: 1000.0,
        }
    }

    /// Set the allowed out-of-orderness.
    pub fn lateness(mut self, ms: u32) -> Self {
        self.allowed_lateness_ms = ms;
        self
    }

    /// Enable or disable pane sharing.
    pub fn share_panes(mut self, on: bool) -> Self {
        self.share_panes = on;
        self
    }

    /// Replace the per-engine-run configuration.
    pub fn run_config(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Set the metrics tick interval (wall ms; 0 disables).
    pub fn tick_every_ms(mut self, ms: f64) -> Self {
        self.tick_every_ms = ms;
        self
    }
}

/// One window closed by the operator, in window-start order.
#[derive(Clone, Debug)]
pub struct ClosedWindow {
    /// The closed window.
    pub window: Window,
    /// Matches found by the engine over this window.
    pub matches: u64,
    /// R-side tuples that fell in this window.
    pub inputs_r: usize,
    /// S-side tuples that fell in this window.
    pub inputs_s: usize,
    /// The watermark when the window closed ([`WM_END`] when flushed
    /// because both sources ended).
    pub watermark_ms: u64,
    /// Wall ms spent joining (engine runs + recombination) at close.
    pub join_wall_ms: f64,
    /// Pane pairs whose engine run happened at this close (shared mode).
    pub pane_pairs_computed: usize,
    /// Pane pairs answered from the cache at this close (shared mode).
    pub pane_pairs_reused: usize,
}

impl ClosedWindow {
    /// Whether this window closed in the end-of-stream flush rather than
    /// by watermark advance.
    pub fn flushed_at_end(&self) -> bool {
        self.watermark_ms == WM_END
    }
}

/// Everything a finished [`StreamingJoin`] run observed.
#[derive(Debug)]
pub struct StreamReport {
    /// Every closed window, in start order.
    pub windows: Vec<ClosedWindow>,
    /// Total matches across all closed windows.
    pub matches: u64,
    /// Total matches recombined as `Σ M(i,j) × pair_multiplicity` (shared
    /// pane mode and sessions; `None` when the naive per-window path or
    /// the persistent-index path ran).
    pub matches_via_multiplicity: Option<u64>,
    /// Tuples ingested from the R side (late drops included).
    pub ingested_r: u64,
    /// Tuples ingested from the S side (late drops included).
    pub ingested_s: u64,
    /// Late tuples dropped.
    pub late_dropped: u64,
    /// Producer blocking episodes observed on the ingress queues.
    pub backpressure_waits: u64,
    /// Engine invocations (whole windows or pane pairs).
    pub engine_runs: u64,
    /// Most panes (or pending sessions) resident at once. Pane counts are
    /// tracked per tuple; session residency needs a scan of the pending
    /// set and is sampled at metrics ticks.
    pub peak_resident_panes: usize,
    /// Deepest ingress queue observed at a poll boundary.
    pub peak_queue_depth: usize,
    /// The watermark when the run ended ([`WM_END`] on a drained stream).
    pub final_watermark_ms: u64,
    /// Stream time covered: the maximum timestamp ingested.
    pub stream_ms: u64,
    /// Wall time of the whole run.
    pub wall_ms: f64,
    /// Per-window close (join) wall-time histogram.
    pub close_hist: LogHistogram,
    /// Periodic metrics ticks (always at least the final one).
    pub ticks: Vec<StreamTick>,
    /// The operator's journal: `stream:*` instants.
    pub journal: SpanJournal,
}

impl StreamReport {
    /// Ingest throughput in tuples per stream millisecond.
    pub fn throughput_tpms(&self) -> f64 {
        if self.stream_ms == 0 {
            0.0
        } else {
            (self.ingested_r + self.ingested_s) as f64 / self.stream_ms as f64
        }
    }

    /// Sustained ingest rate in tuples per *wall* millisecond — the
    /// operator-limited rate when replay is unpaced (backpressure makes
    /// the producers run exactly as fast as the operator drains).
    pub fn wall_tpms(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            (self.ingested_r + self.ingested_s) as f64 / self.wall_ms
        }
    }

    /// Count of a named journal instant (`stream:*`).
    pub fn count_marks(&self, name: &str) -> usize {
        self.journal.count_marks(name)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Side {
    R,
    S,
}

#[derive(Clone, Copy)]
enum Geo {
    /// Tumbling/sliding normalized to (len, slide) with `g = gcd`.
    Panes {
        len: u64,
        slide: u64,
        g: u64,
    },
    Session {
        gap: u64,
    },
}

#[derive(Default)]
struct Pane {
    r: Vec<Tuple>,
    s: Vec<Tuple>,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Persistent index state for the index-based engines over pane
/// geometries: resident window content is indexed once at ingest and
/// re-probed at every close instead of rebuilt per close. Probing is
/// read-only (`&self` on [`WindowIndex`]), so a close fans morsel ranges
/// out across the operator's executor; the single writer (the operator
/// thread) only mutates between closes.
struct StreamIndex {
    /// Key-partitioned `(R, S)` sub-index pairs. IBWJ keeps one partition;
    /// IBWJ_PART keeps [`RunConfig::index_partitions`] of them.
    parts: Vec<(WindowIndex, WindowIndex)>,
    /// Partition → worker probe ownership (IBWJ_PART), re-balanced by the
    /// per-close histogram trigger.
    assignment: Vec<usize>,
    threads: usize,
    kernel: KernelBackend,
    prefetch_dist: usize,
    repart_factor: f64,
    /// Tuples indexed since the last `index:insert` journal mark (the
    /// operator marks once per ingest poll, not per tuple).
    unmarked_inserts: u64,
}

impl StreamIndex {
    fn new(engine: Algorithm, run: &RunConfig) -> StreamIndex {
        let p_n = if engine == Algorithm::IbwjPart {
            run.index_partitions()
        } else {
            1
        };
        let threads = run.threads.max(1);
        StreamIndex {
            parts: (0..p_n)
                .map(|_| (WindowIndex::with_capacity(64), WindowIndex::with_capacity(64)))
                .collect(),
            assignment: (0..p_n).map(|p| p % threads).collect(),
            threads,
            kernel: run.kernel.backend,
            prefetch_dist: run.kernel.prefetch_dist.max(1),
            repart_factor: run.index.repart_factor,
            unmarked_inserts: 0,
        }
    }

    fn insert(&mut self, t: Tuple, side: Side) {
        let p = if self.parts.len() == 1 {
            0
        } else {
            part_of(t.key, self.parts.len())
        };
        match side {
            Side::R => self.parts[p].0.insert(t.key, t.ts),
            Side::S => self.parts[p].1.insert(t.key, t.ts),
        }
        self.unmarked_inserts += 1;
    }

    /// Drop all entries with `ts < horizon` from every sub-index; returns
    /// the number of entries evicted.
    fn evict(&mut self, horizon: Ts) -> usize {
        self.parts
            .iter_mut()
            .map(|(r, s)| r.evict_before(horizon) + s.evict_before(horizon))
            .sum()
    }

    /// Probe a contiguous slice of window-R tuples against one S
    /// sub-index, counting entries with ts in `[lo, hi)` — the batched
    /// bucket-derivation + software-prefetch pipeline of the batch engines.
    fn probe_slice(&self, idx: &WindowIndex, r: &[Tuple], lo: Ts, hi: Ts) -> u64 {
        let mut m = 0u64;
        let mut buckets = Vec::new();
        for chunk in r.chunks(64) {
            tuple_buckets_into(self.kernel, chunk, idx.mask(), &mut buckets);
            for (i, t) in chunk.iter().enumerate() {
                if let Some(&ahead) = buckets.get(i + self.prefetch_dist) {
                    idx.prefetch_bucket(ahead);
                }
                idx.probe_range_at(buckets[i], t.key, lo, hi, |_| m += 1);
            }
        }
        m
    }

    /// Join one closed window `[lo, hi)`: probe its R tuples against the
    /// persistent S index in parallel on `exec`. For the partitioned
    /// variant the per-partition probe histogram doubles as the cheap
    /// rebalance trigger: when the heaviest worker's share exceeds the
    /// ideal by `repart_factor`, ownership is recomputed with greedy LPT
    /// (heaviest partition first, ties by index — deterministic).
    fn close_join(
        &mut self,
        r: &[Tuple],
        lo: Ts,
        hi: Ts,
        exec: &Executor,
        journal: &mut SpanJournal,
    ) -> u64 {
        let p_n = self.parts.len();
        let w_n = self.threads;
        if p_n == 1 {
            let this = &*self;
            let idx = &this.parts[0].1;
            let per = r.len().div_ceil(w_n).max(1);
            return exec
                .run(w_n, |w| {
                    let a = (w * per).min(r.len());
                    let b = ((w + 1) * per).min(r.len());
                    this.probe_slice(idx, &r[a..b], lo, hi)
                })
                .into_iter()
                .sum();
        }
        let mut by_part: Vec<Vec<Tuple>> = vec![Vec::new(); p_n];
        for t in r {
            by_part[part_of(t.key, p_n)].push(*t);
        }
        let loads: Vec<usize> = by_part.iter().map(|v| v.len()).collect();
        let total: usize = loads.iter().sum();
        let mut per_worker = vec![0usize; w_n];
        for (p, &l) in loads.iter().enumerate() {
            per_worker[self.assignment[p]] += l;
        }
        let worst = per_worker.iter().copied().max().unwrap_or(0);
        if total > 0 && (worst * w_n) as f64 > total as f64 * self.repart_factor {
            let mut order: Vec<usize> = (0..p_n).collect();
            order.sort_by_key(|&p| (std::cmp::Reverse(loads[p]), p));
            let mut new_load = vec![0usize; w_n];
            let mut asg = vec![0usize; p_n];
            for p in order {
                let w = (0..w_n).min_by_key(|&w| (new_load[w], w)).unwrap();
                asg[p] = w;
                new_load[w] += loads[p];
            }
            if asg != self.assignment {
                self.assignment = asg;
                journal.mark(MARK_INDEX_REPART, Instant::now());
            }
        }
        let this = &*self;
        let by_part = &by_part;
        exec.run(w_n, |w| {
            let mut m = 0u64;
            for (p, tuples) in by_part.iter().enumerate() {
                if this.assignment[p] == w && !tuples.is_empty() {
                    m += this.probe_slice(&this.parts[p].1, tuples, lo, hi);
                }
            }
            m
        })
        .into_iter()
        .sum()
    }
}

/// The long-running streaming join operator. See the module docs.
pub struct StreamingJoin {
    cfg: StreamConfig,
    geo: Geo,
    panes: BTreeMap<u64, Pane>,
    /// Persistent per-side indexes, maintained across closes when the
    /// engine is index-based and the geometry is pane-based.
    idx: Option<StreamIndex>,
    pairs: HashMap<(u64, u64), u64>,
    next_window: u64,
    pending_r: Vec<Tuple>,
    pending_s: Vec<Tuple>,
    max_r: Option<u64>,
    max_s: Option<u64>,
    done_r: bool,
    done_s: bool,
    last_advanced_wm: Option<u64>,
    /// Session mode: the earliest watermark that could close the first
    /// pending session (`last + gap` from the last scan). Adding tuples
    /// only fills gaps — the first run's close point never moves earlier —
    /// so while the watermark is below this bound `advance` can skip the
    /// full sort-and-scan entirely. `None` forces a rescan.
    next_session_close: Option<u64>,
    windows: Vec<ClosedWindow>,
    matches: u64,
    via_mult: Option<u64>,
    ingested_r: u64,
    ingested_s: u64,
    late: u64,
    engine_runs: u64,
    peak_resident: usize,
    close_hist: LogHistogram,
    journal: SpanJournal,
    /// The worker pool every window close runs on: provisioned (and, under
    /// a pin policy, placed) once at operator construction, not per close.
    exec: Executor,
}

impl StreamingJoin {
    /// Build an operator for `cfg`.
    pub fn new(cfg: StreamConfig) -> Self {
        let geo = match cfg.spec {
            WindowSpec::Tumbling { len_ms } => Geo::Panes {
                len: len_ms as u64,
                slide: len_ms as u64,
                g: len_ms as u64,
            },
            WindowSpec::Sliding { len_ms, slide_ms } => Geo::Panes {
                len: len_ms as u64,
                slide: slide_ms as u64,
                g: gcd(len_ms as u64, slide_ms as u64),
            },
            WindowSpec::Session { gap_ms } => Geo::Session { gap: gap_ms as u64 },
        };
        let idx = match geo {
            Geo::Panes { .. } if cfg.engine.is_index_based() => {
                Some(StreamIndex::new(cfg.engine, &cfg.run))
            }
            _ => None,
        };
        // The index path computes per-window matches directly from the
        // persistent index, so there are no pane-pair counts to recombine.
        let track_mult = idx.is_none()
            && match geo {
                Geo::Panes { .. } => cfg.share_panes,
                Geo::Session { .. } => true,
            };
        let journal = SpanJournal::with_capacity(Instant::now(), cfg.run.journal_capacity);
        let exec = cfg.run.make_executor();
        StreamingJoin {
            geo,
            panes: BTreeMap::new(),
            idx,
            pairs: HashMap::new(),
            next_window: 0,
            pending_r: Vec::new(),
            pending_s: Vec::new(),
            max_r: None,
            max_s: None,
            done_r: false,
            done_s: false,
            last_advanced_wm: None,
            next_session_close: None,
            windows: Vec::new(),
            matches: 0,
            via_mult: if track_mult { Some(0) } else { None },
            ingested_r: 0,
            ingested_s: 0,
            late: 0,
            engine_runs: 0,
            peak_resident: 0,
            close_hist: LogHistogram::new(),
            journal,
            exec,
            cfg,
        }
    }

    /// The current watermark: `None` until both sides have reported a
    /// timestamp (an exhausted side counts as +∞), [`WM_END`] once both
    /// sources are exhausted.
    fn watermark(&self) -> Option<u64> {
        let eff = |max: Option<u64>, done: bool| {
            if done {
                Some(u64::MAX)
            } else {
                max
            }
        };
        let raw = eff(self.max_r, self.done_r)?.min(eff(self.max_s, self.done_s)?);
        Some(if raw == u64::MAX {
            WM_END
        } else {
            raw.saturating_sub(self.cfg.allowed_lateness_ms as u64)
        })
    }

    fn max_seen(&self) -> u64 {
        self.max_r.unwrap_or(0).max(self.max_s.unwrap_or(0))
    }

    fn resident(&self) -> usize {
        match self.geo {
            Geo::Panes { .. } => self.panes.len(),
            Geo::Session { gap } => session_count(&self.pending_r, &self.pending_s, gap),
        }
    }

    fn ingest(&mut self, t: Tuple, side: Side) {
        match side {
            Side::R => {
                self.ingested_r += 1;
                self.max_r = Some(self.max_r.unwrap_or(0).max(t.ts as u64));
            }
            Side::S => {
                self.ingested_s += 1;
                self.max_s = Some(self.max_s.unwrap_or(0).max(t.ts as u64));
            }
        }
        // Late iff strictly behind the watermark: every state this tuple
        // could touch (panes of closed windows, closed sessions) lies
        // entirely behind the watermark, so non-late tuples always find
        // their state still resident.
        if let Some(wm) = self.watermark() {
            if (t.ts as u64) < wm {
                self.late += 1;
                self.journal.mark(MARK_STREAM_LATE, Instant::now());
                return;
            }
        }
        match self.geo {
            Geo::Panes { g, .. } => {
                let pane = self.panes.entry(t.ts as u64 / g).or_default();
                match side {
                    Side::R => pane.r.push(t),
                    Side::S => pane.s.push(t),
                }
                // Index engines index each tuple exactly once, here at
                // ingest — closes re-probe, they never rebuild.
                if let Some(ix) = self.idx.as_mut() {
                    ix.insert(t, side);
                }
            }
            Geo::Session { .. } => match side {
                Side::R => self.pending_r.push(t),
                Side::S => self.pending_s.push(t),
            },
        }
        // Pane count is O(1) to read; session residency needs a scan, so
        // it is sampled at metrics ticks instead of per tuple.
        if matches!(self.geo, Geo::Panes { .. }) {
            self.peak_resident = self.peak_resident.max(self.panes.len());
        }
    }

    fn drain_side(&mut self, rx: &StreamReceiver<Tuple>, side: Side) -> usize {
        let mut got = 0;
        while got < INGEST_BATCH {
            match rx.try_recv() {
                Ok(t) => {
                    self.ingest(t, side);
                    got += 1;
                }
                Err(RecvError::Empty) => break,
                Err(RecvError::Disconnected) => {
                    match side {
                        Side::R => self.done_r = true,
                        Side::S => self.done_s = true,
                    }
                    break;
                }
            }
        }
        got
    }

    fn advance<FW: FnMut(&ClosedWindow)>(&mut self, on_window: &mut FW) {
        let Some(wm) = self.watermark() else { return };
        if self.last_advanced_wm == Some(wm) {
            return;
        }
        self.last_advanced_wm = Some(wm);
        match self.geo {
            Geo::Panes { len, slide, .. } => loop {
                let start = self.next_window * slide;
                let closable = if wm == WM_END {
                    // End-of-stream flush: exactly the window set
                    // `windows_for` realizes (starts up to the last ts).
                    start <= self.max_seen()
                } else {
                    wm >= start + len
                };
                if !closable {
                    break;
                }
                let k = self.next_window;
                self.next_window += 1;
                self.close_pane_window(k, wm, on_window);
            },
            Geo::Session { gap } => loop {
                if self.pending_r.is_empty() && self.pending_s.is_empty() {
                    break;
                }
                // Cheap gate: below the cached close bound nothing can
                // close, so skip the full sort-and-scan of the pending set.
                if wm != WM_END && self.next_session_close.is_some_and(|nc| wm < nc) {
                    break;
                }
                let mut stamps: Vec<u64> = self
                    .pending_r
                    .iter()
                    .chain(self.pending_s.iter())
                    .map(|t| t.ts as u64)
                    .collect();
                stamps.sort_unstable();
                let start = stamps[0];
                let mut last = start;
                for &t in &stamps[1..] {
                    if t - last >= gap {
                        break;
                    }
                    last = t;
                }
                // Close only when no future tuple can extend (or bridge)
                // this session: the watermark must clear last + gap.
                if wm != WM_END && wm < last + gap {
                    self.next_session_close = Some(last + gap);
                    break;
                }
                self.next_session_close = None;
                self.close_session(start, last, wm, on_window);
            },
        }
    }

    fn close_pane_window<FW: FnMut(&ClosedWindow)>(&mut self, k: u64, wm: u64, on_window: &mut FW) {
        let Geo::Panes { len, slide, g } = self.geo else {
            unreachable!()
        };
        let t0 = Instant::now();
        let start = k * slide;
        let (a, b) = (start / g, (start + len) / g);
        let mut inputs_r = 0;
        let mut inputs_s = 0;
        for (_, pane) in self.panes.range(a..b) {
            inputs_r += pane.r.len();
            inputs_s += pane.s.len();
        }
        let mut matches = 0u64;
        let mut computed = 0usize;
        let mut reused = 0usize;
        if let Some(ix) = self.idx.as_mut() {
            // Persistent-index close: gather the window's R tuples once
            // and probe the resident S index with a ts-range filter. No
            // per-close rebuild and no pane-pair cache — the index *is*
            // the shared state.
            if inputs_r > 0 && inputs_s > 0 {
                let r: Vec<Tuple> = self
                    .panes
                    .range(a..b)
                    .flat_map(|(_, p)| p.r.iter().copied())
                    .collect();
                let lo = start.min(Ts::MAX as u64) as Ts;
                let hi = (start + len).min(Ts::MAX as u64) as Ts;
                matches = ix.close_join(&r, lo, hi, &self.exec, &mut self.journal);
                self.engine_runs += 1;
            }
        } else if self.cfg.share_panes {
            for i in a..b {
                for j in a..b {
                    let (r_len, s_len) = {
                        let pr = self.panes.get(&i).map(|p| p.r.len()).unwrap_or(0);
                        let ps = self.panes.get(&j).map(|p| p.s.len()).unwrap_or(0);
                        (pr, ps)
                    };
                    if r_len == 0 || s_len == 0 {
                        continue;
                    }
                    if let Some(&m) = self.pairs.get(&(i, j)) {
                        matches += m;
                        reused += 1;
                        continue;
                    }
                    let m = run_engine(
                        self.cfg.engine,
                        &self.cfg.run,
                        &self.panes[&i].r,
                        &self.panes[&j].s,
                        &self.exec,
                    );
                    self.engine_runs += 1;
                    computed += 1;
                    self.pairs.insert((i, j), m);
                    matches += m;
                    if let Some(acc) = self.via_mult.as_mut() {
                        // Multiplicity is constant across the pane pair
                        // (g divides len and slide), so the pair corners
                        // stand in for every tuple pair inside.
                        let (lo, hi) = (i.min(j), i.max(j));
                        *acc += m * pair_multiplicity(
                            self.cfg.spec,
                            (lo * g) as Ts,
                            (hi * g + g - 1) as Ts,
                        );
                    }
                }
            }
        } else {
            let r: Vec<Tuple> = self
                .panes
                .range(a..b)
                .flat_map(|(_, p)| p.r.iter().copied())
                .collect();
            let s: Vec<Tuple> = self
                .panes
                .range(a..b)
                .flat_map(|(_, p)| p.s.iter().copied())
                .collect();
            if !r.is_empty() && !s.is_empty() {
                matches = run_engine(self.cfg.engine, &self.cfg.run, &r, &s, &self.exec);
                self.engine_runs += 1;
            }
        }
        // Evict panes (and cached pairs) whose last containing window is
        // this one: everything strictly before the next window's start.
        let keep = ((k + 1) * slide) / g;
        self.panes = self.panes.split_off(&keep);
        self.pairs.retain(|&(i, j), _| i.min(j) >= keep);
        // The persistent index evicts to the same horizon as the panes:
        // everything strictly before the next window's start.
        if let Some(ix) = self.idx.as_mut() {
            let horizon = (keep * g).min(Ts::MAX as u64) as Ts;
            if ix.evict(horizon) > 0 {
                self.journal.mark(MARK_INDEX_EVICT, Instant::now());
            }
        }
        self.emit_window(
            Window {
                start: start as Ts,
                len_ms: len as Ts,
            },
            matches,
            inputs_r,
            inputs_s,
            wm,
            t0,
            computed,
            reused,
            on_window,
        );
    }

    fn close_session<FW: FnMut(&ClosedWindow)>(
        &mut self,
        start: u64,
        last: u64,
        wm: u64,
        on_window: &mut FW,
    ) {
        let t0 = Instant::now();
        let take = |v: &mut Vec<Tuple>| -> Vec<Tuple> {
            let (inside, outside) = v
                .drain(..)
                .partition(|t| (t.ts as u64) >= start && (t.ts as u64) <= last);
            *v = outside;
            inside
        };
        let r = take(&mut self.pending_r);
        let s = take(&mut self.pending_s);
        let matches = if r.is_empty() || s.is_empty() {
            0
        } else {
            self.engine_runs += 1;
            run_engine(self.cfg.engine, &self.cfg.run, &r, &s, &self.exec)
        };
        if let Some(acc) = self.via_mult.as_mut() {
            // Sessions are disjoint (`pair_multiplicity_in` over realized
            // session windows is 0/1), so each closed session contributes
            // its matches exactly once.
            *acc += matches;
        }
        self.emit_window(
            Window {
                start: start as Ts,
                len_ms: (last - start + 1) as Ts,
            },
            matches,
            r.len(),
            s.len(),
            wm,
            t0,
            0,
            0,
            on_window,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_window<FW: FnMut(&ClosedWindow)>(
        &mut self,
        window: Window,
        matches: u64,
        inputs_r: usize,
        inputs_s: usize,
        wm: u64,
        t0: Instant,
        computed: usize,
        reused: usize,
        on_window: &mut FW,
    ) {
        let join_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.close_hist.record_ms(join_wall_ms);
        self.journal.mark(MARK_STREAM_CLOSE, Instant::now());
        self.matches += matches;
        let closed = ClosedWindow {
            window,
            matches,
            inputs_r,
            inputs_s,
            watermark_ms: wm,
            join_wall_ms,
            pane_pairs_computed: computed,
            pane_pairs_reused: reused,
        };
        on_window(&closed);
        self.windows.push(closed);
    }

    /// Drive the operator to completion over two ingress queues, invoking
    /// `on_window` at each window close and `on_tick` at each metrics
    /// tick. Returns when both sources have disconnected and all state has
    /// flushed.
    pub fn run<FW, FT>(
        mut self,
        rx_r: StreamReceiver<Tuple>,
        rx_s: StreamReceiver<Tuple>,
        mut on_window: FW,
        mut on_tick: FT,
    ) -> StreamReport
    where
        FW: FnMut(&ClosedWindow),
        FT: FnMut(&StreamTick),
    {
        let started = Instant::now();
        let mut last_tick = started;
        let mut last_tick_ingested = 0u64;
        let mut last_bp = 0u64;
        let mut peak_queue = 0usize;
        let mut ticks: Vec<StreamTick> = Vec::new();
        loop {
            let mut got = 0;
            if !self.done_r {
                got += self.drain_side(&rx_r, Side::R);
            }
            if !self.done_s {
                got += self.drain_side(&rx_s, Side::S);
            }
            if got > 0 {
                self.journal.mark(MARK_STREAM_INGEST, Instant::now());
            }
            // One index:insert mark per poll that indexed anything (a
            // per-tuple mark would swamp the journal).
            if let Some(ix) = self.idx.as_mut() {
                if ix.unmarked_inserts > 0 {
                    ix.unmarked_inserts = 0;
                    self.journal.mark(MARK_INDEX_INSERT, Instant::now());
                }
            }
            peak_queue = peak_queue.max(rx_r.len()).max(rx_s.len());
            let bp = rx_r.blocked_sends() + rx_s.blocked_sends();
            if bp > last_bp {
                self.journal.mark(MARK_STREAM_BACKPRESSURE, Instant::now());
                last_bp = bp;
            }
            self.advance(&mut on_window);
            let finished = self.done_r && self.done_s;
            let tick_due = self.cfg.tick_every_ms > 0.0
                && last_tick.elapsed().as_secs_f64() * 1e3 >= self.cfg.tick_every_ms;
            if tick_due || finished {
                let ingested = self.ingested_r + self.ingested_s;
                let resident = self.resident();
                self.peak_resident = self.peak_resident.max(resident);
                let tick = StreamTick {
                    wall_s: started.elapsed().as_secs_f64(),
                    watermark_ms: self.watermark().unwrap_or(0),
                    ingested,
                    ingested_delta: ingested - last_tick_ingested,
                    matches: self.matches,
                    windows_closed: self.windows.len() as u64,
                    late: self.late,
                    backpressure_waits: last_bp,
                    queue_r: rx_r.len(),
                    queue_s: rx_s.len(),
                    resident_panes: resident,
                };
                on_tick(&tick);
                ticks.push(tick);
                last_tick = Instant::now();
                last_tick_ingested = ingested;
            }
            if finished {
                break;
            }
            if got == 0 {
                // Idle: block briefly on an open side rather than spin.
                let d = Duration::from_micros(200);
                let (rx, side) = if !self.done_r {
                    (&rx_r, Side::R)
                } else {
                    (&rx_s, Side::S)
                };
                match rx.recv_timeout(d) {
                    Ok(t) => self.ingest(t, side),
                    Err(RecvError::Disconnected) => match side {
                        Side::R => self.done_r = true,
                        Side::S => self.done_s = true,
                    },
                    Err(RecvError::Empty) => {}
                }
            }
        }
        StreamReport {
            matches: self.matches,
            matches_via_multiplicity: self.via_mult,
            ingested_r: self.ingested_r,
            ingested_s: self.ingested_s,
            late_dropped: self.late,
            backpressure_waits: last_bp,
            engine_runs: self.engine_runs,
            peak_resident_panes: self.peak_resident,
            peak_queue_depth: peak_queue,
            final_watermark_ms: self.watermark().unwrap_or(0),
            stream_ms: self.max_seen(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            close_hist: self.close_hist,
            ticks,
            windows: self.windows,
            journal: self.journal,
        }
    }
}

/// Pending-session count: how many realized sessions the pending tuples
/// currently span (the session-mode resident-state metric).
fn session_count(r: &[Tuple], s: &[Tuple], gap: u64) -> usize {
    let mut stamps: Vec<u64> = r.iter().chain(s.iter()).map(|t| t.ts as u64).collect();
    if stamps.is_empty() {
        return 0;
    }
    stamps.sort_unstable();
    1 + stamps.windows(2).filter(|w| w[1] - w[0] >= gap).count()
}

/// One engine invocation over tuples at rest (re-based to ts 0, exactly as
/// [`execute_windowed`](crate::windowing::execute_windowed) runs a window),
/// on the operator's persistent worker pool.
fn run_engine(
    engine: Algorithm,
    run: &RunConfig,
    r: &[Tuple],
    s: &[Tuple],
    exec: &Executor,
) -> u64 {
    let rebase = |t: &Tuple| Tuple::new(t.key, 0);
    let ds = Dataset {
        name: "stream-close".to_string(),
        r: r.iter().map(rebase).collect(),
        s: s.iter().map(rebase).collect(),
        window: Window::of_len(0),
        rate_r: Rate::Infinite,
        rate_s: Rate::Infinite,
    };
    execute_on(engine, &ds, run, exec).matches
}

/// Spawn a pump thread feeding `src` into `tx` until the source ends or
/// the consumer hangs up; returns the tuple count it sent.
pub fn spawn_source<S: StreamSource + 'static>(
    mut src: S,
    tx: StreamSender<Tuple>,
) -> JoinHandle<u64> {
    std::thread::Builder::new()
        .name("iawj-source".into())
        .spawn(move || {
            let mut sent = 0;
            while let Some(t) = src.next_tuple() {
                if tx.send(t).is_err() {
                    break;
                }
                sent += 1;
            }
            sent
        })
        .expect("spawn source thread")
}

/// Run a full streaming join over two finite in-memory streams: each side
/// is pushed through a `queue_cap`-bounded ingress queue from its own
/// producer thread. The workhorse of the differential tests.
pub fn run_replay(
    cfg: StreamConfig,
    r: Vec<Tuple>,
    s: Vec<Tuple>,
    queue_cap: usize,
) -> StreamReport {
    let (tx_r, rx_r) = stream_channel(queue_cap);
    let (tx_s, rx_s) = stream_channel(queue_cap);
    let h_r = spawn_source(iawj_datagen::ReplaySource::new(r), tx_r);
    let h_s = spawn_source(iawj_datagen::ReplaySource::new(s), tx_s);
    let report = StreamingJoin::new(cfg).run(rx_r, rx_s, |_| {}, |_| {});
    let _ = h_r.join();
    let _ = h_s.join();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windowing::{execute_windowed, windows_for};
    use iawj_common::Rng;

    fn stream(n: usize, keys: u32, span_ms: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        let mut v: Vec<Tuple> = (0..n)
            .map(|_| Tuple::new(rng.next_u32() % keys, rng.below(span_ms as u64) as u32))
            .collect();
        v.sort_unstable_by_key(|t| t.ts);
        v
    }

    fn cfg(spec: WindowSpec) -> StreamConfig {
        StreamConfig::new(spec, Algorithm::Npj)
            .run_config(RunConfig::with_threads(1))
            .tick_every_ms(0.0)
    }

    fn batch_counts(spec: WindowSpec, r: &[Tuple], s: &[Tuple]) -> Vec<(Window, u64)> {
        execute_windowed(Algorithm::Npj, r, s, spec, &RunConfig::with_threads(1))
            .into_iter()
            .map(|w| (w.window, w.result.matches))
            .collect()
    }

    fn stream_counts(report: &StreamReport) -> Vec<(Window, u64)> {
        report
            .windows
            .iter()
            .map(|w| (w.window, w.matches))
            .collect()
    }

    #[test]
    fn tumbling_stream_equals_batch_oracle() {
        let r = stream(200, 8, 700, 1);
        let s = stream(200, 8, 700, 2);
        let spec = WindowSpec::Tumbling { len_ms: 200 };
        let report = run_replay(cfg(spec), r.clone(), s.clone(), 32);
        assert_eq!(stream_counts(&report), batch_counts(spec, &r, &s));
        assert_eq!(report.late_dropped, 0);
        assert_eq!(report.final_watermark_ms, WM_END);
        assert_eq!(report.count_marks(MARK_STREAM_CLOSE), report.windows.len());
        assert!(report.count_marks(MARK_STREAM_INGEST) >= 1);
    }

    #[test]
    fn sliding_stream_equals_batch_oracle_with_and_without_sharing() {
        let r = stream(250, 8, 800, 3);
        let s = stream(250, 8, 800, 4);
        let spec = WindowSpec::Sliding {
            len_ms: 300,
            slide_ms: 100,
        };
        let expect = batch_counts(spec, &r, &s);
        let shared = run_replay(cfg(spec), r.clone(), s.clone(), 32);
        let naive = run_replay(cfg(spec).share_panes(false), r.clone(), s.clone(), 32);
        assert_eq!(stream_counts(&shared), expect);
        assert_eq!(stream_counts(&naive), expect);
        // Pane sharing recombination: Σ per-window == Σ M(i,j) × mult.
        assert_eq!(shared.matches_via_multiplicity, Some(shared.matches));
        assert_eq!(naive.matches_via_multiplicity, None);
        // Sharing computes each pane pair once and reuses it.
        assert!(shared.windows.iter().any(|w| w.pane_pairs_reused > 0));
        let computed: usize = shared.windows.iter().map(|w| w.pane_pairs_computed).sum();
        assert_eq!(computed as u64, shared.engine_runs);
    }

    #[test]
    fn session_stream_equals_batch_oracle() {
        // Two bursts separated by silence, like the windowing tests.
        let mk = |base: u32, seed: u64| -> Vec<Tuple> {
            let mut v = stream(60, 5, 40, seed);
            v.iter_mut().for_each(|t| t.ts += base);
            v
        };
        let mut r = mk(0, 5);
        r.extend(mk(600, 6));
        let mut s = mk(2, 7);
        s.extend(mk(602, 8));
        let spec = WindowSpec::Session { gap_ms: 200 };
        let report = run_replay(cfg(spec), r.clone(), s.clone(), 16);
        assert_eq!(stream_counts(&report), batch_counts(spec, &r, &s));
        assert_eq!(report.matches_via_multiplicity, Some(report.matches));
    }

    #[test]
    fn bounded_shuffle_within_lateness_drops_nothing() {
        let r = stream(200, 8, 600, 9);
        let s = stream(200, 8, 600, 10);
        let spec = WindowSpec::Sliding {
            len_ms: 200,
            slide_ms: 100,
        };
        let jr = iawj_datagen::jitter_arrival_order(&r, 50, 21);
        let js = iawj_datagen::jitter_arrival_order(&s, 50, 22);
        let report = run_replay(cfg(spec).lateness(50), jr, js, 32);
        assert_eq!(report.late_dropped, 0);
        assert_eq!(stream_counts(&report), batch_counts(spec, &r, &s));
    }

    #[test]
    fn tuples_behind_the_watermark_are_dropped_and_counted() {
        // In-order run with zero lateness, then inject one stale tuple.
        let mut r = stream(100, 4, 400, 11);
        r.push(Tuple::new(1, 0)); // arrives last, 400 ms stale
        let s = stream(100, 4, 400, 12);
        let spec = WindowSpec::Tumbling { len_ms: 100 };
        let report = run_replay(cfg(spec), r, s, 16);
        assert_eq!(report.late_dropped, 1);
        assert_eq!(report.count_marks(MARK_STREAM_LATE), 1);
    }

    #[test]
    fn panes_are_evicted_after_their_last_window() {
        // Resident state is bounded by the watermark lag — inter-source
        // skew plus the panes a window covers — not by stream length. A
        // single pusher interleaving both sides by timestamp bounds the
        // skew to the queue capacities, so over 200 panes of stream the
        // operator must hold only a handful at a time.
        let r = stream(4000, 8, 20_000, 13);
        let s = stream(4000, 8, 20_000, 14);
        let spec = WindowSpec::Sliding {
            len_ms: 300,
            slide_ms: 100,
        };
        let (tx_r, rx_r) = stream_channel(8);
        let (tx_s, rx_s) = stream_channel(8);
        let (rr, ss) = (r, s);
        let pusher = std::thread::spawn(move || {
            let (mut i, mut j) = (0, 0);
            while i < rr.len() || j < ss.len() {
                let take_r = j >= ss.len() || (i < rr.len() && rr[i].ts <= ss[j].ts);
                if take_r {
                    let _ = tx_r.send(rr[i]);
                    i += 1;
                } else {
                    let _ = tx_s.send(ss[j]);
                    j += 1;
                }
            }
        });
        let report = StreamingJoin::new(cfg(spec)).run(rx_r, rx_s, |_| {}, |_| {});
        pusher.join().unwrap();
        assert!(
            report.peak_resident_panes <= 40,
            "resident panes grew with stream length: {} of 200",
            report.peak_resident_panes
        );
        assert_eq!(report.final_watermark_ms, WM_END);
    }

    #[test]
    fn empty_streams_flush_the_zero_window() {
        // `windows_for` realizes one empty window over empty streams for
        // tumbling/sliding and none for sessions; the flush must agree.
        let spec = WindowSpec::Tumbling { len_ms: 100 };
        let report = run_replay(cfg(spec), Vec::new(), Vec::new(), 4);
        assert_eq!(stream_counts(&report), batch_counts(spec, &[], &[]));
        let sess = run_replay(
            cfg(WindowSpec::Session { gap_ms: 50 }),
            Vec::new(),
            Vec::new(),
            4,
        );
        assert!(sess.windows.is_empty());
        assert!(windows_for(WindowSpec::Session { gap_ms: 50 }, &[], &[]).is_empty());
    }

    #[test]
    fn pool_and_spawn_executors_agree_on_stream_results() {
        use iawj_exec::ExecMode;
        let r = stream(250, 8, 800, 17);
        let s = stream(250, 8, 800, 18);
        let spec = WindowSpec::Sliding {
            len_ms: 300,
            slide_ms: 100,
        };
        let mk = |mode: ExecMode| {
            cfg(spec).run_config(RunConfig::with_threads(2).record_all().executor(mode))
        };
        let pool = run_replay(mk(ExecMode::Pool), r.clone(), s.clone(), 32);
        let spawn = run_replay(mk(ExecMode::Spawn), r, s, 32);
        assert_eq!(stream_counts(&pool), stream_counts(&spawn));
        assert_eq!(pool.matches, spawn.matches);
    }

    #[test]
    fn lateness_larger_than_first_timestamps_drops_nothing() {
        // Regression: the watermark is `max_ts - allowed_lateness_ms`
        // computed with saturating_sub. An allowed lateness larger than
        // the earliest timestamps must clamp the watermark to 0 — a
        // wrapping subtraction would put it near u64::MAX and mark every
        // early tuple late.
        let r = stream(100, 6, 300, 19);
        let s = stream(100, 6, 300, 20);
        let spec = WindowSpec::Tumbling { len_ms: 100 };
        let report = run_replay(cfg(spec).lateness(10_000), r.clone(), s.clone(), 16);
        assert_eq!(report.late_dropped, 0);
        assert_eq!(report.count_marks(MARK_STREAM_LATE), 0);
        assert_eq!(stream_counts(&report), batch_counts(spec, &r, &s));
    }

    #[test]
    fn index_engines_maintain_state_across_closes() {
        // The persistent-index path must reproduce the batch oracle over
        // overlapping sliding windows while indexing each tuple once at
        // ingest and evicting with the panes.
        let spec = WindowSpec::Sliding {
            len_ms: 300,
            slide_ms: 100,
        };
        let r = stream(300, 8, 900, 23);
        let s = stream(300, 8, 900, 24);
        let expect = batch_counts(spec, &r, &s);
        for engine in [Algorithm::Ibwj, Algorithm::IbwjPart] {
            let sc = StreamConfig::new(spec, engine)
                .run_config(RunConfig::with_threads(2))
                .tick_every_ms(0.0);
            let report = run_replay(sc, r.clone(), s.clone(), 32);
            assert_eq!(stream_counts(&report), expect, "{engine}");
            assert!(report.count_marks(MARK_INDEX_INSERT) >= 1, "{engine}");
            assert!(report.count_marks(MARK_INDEX_EVICT) >= 1, "{engine}");
            // No pane-pair recombination on this path.
            assert_eq!(report.matches_via_multiplicity, None, "{engine}");
            let probed = report
                .windows
                .iter()
                .filter(|w| w.inputs_r > 0 && w.inputs_s > 0)
                .count() as u64;
            assert_eq!(report.engine_runs, probed, "{engine}");
        }
    }

    #[test]
    fn index_engines_tolerate_bounded_out_of_order_arrival() {
        let r = stream(200, 8, 600, 25);
        let s = stream(200, 8, 600, 26);
        let spec = WindowSpec::Sliding {
            len_ms: 200,
            slide_ms: 100,
        };
        let jr = iawj_datagen::jitter_arrival_order(&r, 50, 31);
        let js = iawj_datagen::jitter_arrival_order(&s, 50, 32);
        for engine in [Algorithm::Ibwj, Algorithm::IbwjPart] {
            let sc = StreamConfig::new(spec, engine)
                .run_config(RunConfig::with_threads(2))
                .tick_every_ms(0.0)
                .lateness(50);
            let report = run_replay(sc, jr.clone(), js.clone(), 32);
            assert_eq!(report.late_dropped, 0, "{engine}");
            assert_eq!(stream_counts(&report), batch_counts(spec, &r, &s), "{engine}");
        }
    }

    #[test]
    fn partitioned_index_rebalances_under_skew() {
        // 90% of the probe side on one key concentrates one sub-index
        // partition; the histogram trigger must fire and re-balance
        // partition ownership without changing the match set.
        let mut rng = Rng::new(27);
        let mut r: Vec<Tuple> = (0..400)
            .map(|i| {
                let key = if i % 10 == 0 { rng.next_u32() % 64 } else { 7 };
                Tuple::new(key, rng.below(600) as u32)
            })
            .collect();
        r.sort_unstable_by_key(|t| t.ts);
        let s = stream(400, 64, 600, 28);
        let spec = WindowSpec::Tumbling { len_ms: 200 };
        let sc = StreamConfig::new(spec, Algorithm::IbwjPart)
            .run_config(RunConfig::with_threads(2))
            .tick_every_ms(0.0);
        let report = run_replay(sc, r.clone(), s.clone(), 32);
        assert_eq!(stream_counts(&report), batch_counts(spec, &r, &s));
        assert!(
            report.count_marks(MARK_INDEX_REPART) >= 1,
            "skewed probe load never triggered a repartition"
        );
    }

    #[test]
    fn final_tick_is_always_emitted() {
        let r = stream(50, 4, 200, 15);
        let s = stream(50, 4, 200, 16);
        let report = run_replay(
            cfg(WindowSpec::Tumbling { len_ms: 100 }).tick_every_ms(1000.0),
            r,
            s,
            16,
        );
        assert!(!report.ticks.is_empty());
        let last = report.ticks.last().unwrap();
        assert_eq!(last.watermark_ms, WM_END);
        assert_eq!(last.ingested, report.ingested_r + report.ingested_s);
    }
}
