//! The three §4.1 performance metrics, computed from a [`RunResult`]'s
//! match samples.

use crate::output::RunResult;

/// Quantile processing latency in stream ms (the paper reports the 95th
/// percentile worst-case latency, after Karimov et al.). Computed over the
/// sampled matches; `None` when no matches were sampled.
///
/// Uses the nearest-rank convention — the value at rank `⌈q·n⌉` (1-based,
/// clamped to `[1, n]`) — matching [`latency_quantile_exact_ms`]'s
/// histogram so the two paths answer the same question and differ only by
/// the histogram's bucket error. An O(n) selection, no full sort.
pub fn latency_quantile_ms(result: &RunResult, q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if result.samples.is_empty() {
        return None;
    }
    let mut lat: Vec<f64> = result.samples.iter().map(|m| m.latency_ms()).collect();
    let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
    let (_, v, _) = lat.select_nth_unstable_by(rank - 1, |a, b| a.total_cmp(b));
    Some(*v)
}

/// Progressiveness curve: cumulative fraction of matches delivered as a
/// function of elapsed stream time (§4.1). Returns `(elapsed_ms, fraction)`
/// points, one per sample. The sink always records the first match, so
/// sample 0 stands for match #1 and sample `i ≥ 1` stands for match number
/// `i × sample_every`, capped at the true total.
pub fn progressiveness(result: &RunResult) -> Vec<(f64, f64)> {
    if result.matches == 0 {
        return Vec::new();
    }
    let total = result.matches as f64;
    result
        .samples
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let cum = if result.sample_every == 1 {
                i as u64 + 1
            } else if i == 0 {
                1
            } else {
                i as u64 * result.sample_every
            };
            (m.emit_ms, cum.min(result.matches) as f64 / total)
        })
        .collect()
}

/// Quantile latency from the full-population histogram: covers *every*
/// match, not just the sampled subset, at ≤ 1/128 relative bucket error.
/// Prefer this over [`latency_quantile_ms`] for tail quantiles (p99, max),
/// where sampling bias is worst. `None` when the run had no matches.
pub fn latency_quantile_exact_ms(result: &RunResult, q: f64) -> Option<f64> {
    result.hist.quantile_ms(q)
}

/// Exact worst-case latency over all matches, from the histogram.
pub fn latency_max_ms(result: &RunResult) -> Option<f64> {
    result.hist.max_ms()
}

/// Stream time at which `fraction` of all matches had been delivered —
/// e.g. the "time to 50% of matches" comparisons of §5.2. `None` when the
/// curve never reaches the fraction (sampling granularity or no matches).
///
/// A fraction ≤ 0 is satisfied before anything is delivered, so it returns
/// `Some(0.0)` rather than the first match's emit time.
///
/// # Panics
/// Panics on a NaN `fraction` — every float comparison against NaN is
/// false, which would silently return the first curve point.
pub fn time_to_fraction_ms(result: &RunResult, fraction: f64) -> Option<f64> {
    assert!(!fraction.is_nan(), "fraction must not be NaN");
    if fraction <= 0.0 {
        return Some(0.0);
    }
    progressiveness(result)
        .into_iter()
        .find(|&(_, f)| f >= fraction)
        .map(|(t, _)| t)
}

/// Down-sample a progressiveness curve to at most `n` evenly spaced points
/// (for printing Figure 6/9c/10c/12b series without flooding the output).
/// For `n ≥ 2` the first and last points are always kept, so the thinned
/// curve starts where the original starts and still ends at the 100% mark.
/// `n == 1` keeps only the final point; `n == 0` returns the curve as-is.
pub fn thin_curve(curve: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if curve.len() <= n || n == 0 {
        return curve.to_vec();
    }
    let last = *curve.last().expect("non-empty");
    if n == 1 {
        return vec![last];
    }
    let step = curve.len() as f64 / n as f64;
    let mut out: Vec<(f64, f64)> = (0..n)
        .map(|i| curve[((i as f64 + 0.5) * step) as usize])
        .collect();
    out[0] = curve[0];
    *out.last_mut().expect("n > 0") = last;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Algorithm;
    use crate::output::WorkerOut;
    use iawj_common::Sink;

    fn run_with(samples: &[(f64, u32)], sample_every: u64, matches: u64) -> RunResult {
        let mut w = WorkerOut::new(1); // record all pushes
        for &(emit, arrival) in samples {
            w.sink.push(1, arrival, arrival, emit);
        }
        let mut r = RunResult::merge(Algorithm::Npj, 100, sample_every, 100.0, vec![w]);
        r.matches = matches; // simulate a counting sink that saw more
        r
    }

    #[test]
    fn latency_quantiles() {
        // Latencies 1..=100.
        let samples: Vec<(f64, u32)> = (1..=100).map(|i| (i as f64, 0u32)).collect();
        let r = run_with(&samples, 1, 100);
        assert!((latency_quantile_ms(&r, 0.95).unwrap() - 95.0).abs() <= 1.0);
        assert!((latency_quantile_ms(&r, 0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((latency_quantile_ms(&r, 1.0).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_none_without_samples() {
        let r = run_with(&[], 1, 0);
        assert!(latency_quantile_ms(&r, 0.95).is_none());
    }

    #[test]
    fn latency_quantile_is_nearest_rank() {
        // 4 samples: nearest rank ⌈q·4⌉ picks an actual sample, never an
        // interpolated or rounded-up index.
        let samples: Vec<(f64, u32)> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&l| (l, 0u32))
            .collect();
        let r = run_with(&samples, 1, 4);
        // q=0.5 → rank 2 → 20.0 (the `.round()` convention gave 30.0 via
        // index round(1.5)=2).
        assert_eq!(latency_quantile_ms(&r, 0.5).unwrap(), 20.0);
        assert_eq!(latency_quantile_ms(&r, 0.25).unwrap(), 10.0);
        assert_eq!(latency_quantile_ms(&r, 0.26).unwrap(), 20.0);
        assert_eq!(latency_quantile_ms(&r, 0.75).unwrap(), 30.0);
        assert_eq!(latency_quantile_ms(&r, 1.0).unwrap(), 40.0);
        assert_eq!(latency_quantile_ms(&r, 0.0).unwrap(), 10.0);
    }

    #[test]
    fn sampled_and_exact_quantiles_agree() {
        // Regression for the convention mismatch: with every match sampled,
        // the sampled path and the histogram path must answer within one
        // histogram bucket width (≤ 1/128 relative) of each other at every
        // quantile.
        let samples: Vec<(f64, u32)> = (1..=500).map(|i| (i as f64, 0u32)).collect();
        let r = run_with(&samples, 1, 500);
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let sampled = latency_quantile_ms(&r, q).unwrap();
            let exact = latency_quantile_exact_ms(&r, q).unwrap();
            let tol = exact / 128.0 + 1e-9;
            assert!(
                (sampled - exact).abs() <= tol,
                "q={q}: sampled={sampled} exact={exact} tol={tol}"
            );
        }
    }

    #[test]
    fn time_to_zero_fraction_is_zero() {
        let samples = [(5.0, 0u32), (6.0, 0), (7.0, 0)];
        let r = run_with(&samples, 1, 3);
        // 0% of the matches are delivered before the first emit at 5.0 ms.
        assert_eq!(time_to_fraction_ms(&r, 0.0), Some(0.0));
        assert_eq!(time_to_fraction_ms(&r, -0.5), Some(0.0));
        // Positive fractions still walk the curve.
        assert_eq!(time_to_fraction_ms(&r, 0.01), Some(5.0));
        assert_eq!(time_to_fraction_ms(&r, 1.0), Some(7.0));
        // Even an empty run has delivered 0% of its matches at t=0.
        let empty = run_with(&[], 1, 0);
        assert_eq!(time_to_fraction_ms(&empty, 0.0), Some(0.0));
        assert_eq!(time_to_fraction_ms(&empty, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "fraction must not be NaN")]
    fn time_to_nan_fraction_panics() {
        let r = run_with(&[(5.0, 0u32)], 1, 1);
        let _ = time_to_fraction_ms(&r, f64::NAN);
    }

    #[test]
    fn progressiveness_reaches_one() {
        let samples: Vec<(f64, u32)> = (1..=10).map(|i| (i as f64 * 10.0, 0u32)).collect();
        let r = run_with(&samples, 1, 10);
        let curve = progressiveness(&r);
        assert_eq!(curve.len(), 10);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!((curve[4].1 - 0.5).abs() < 1e-9);
        assert!((time_to_fraction_ms(&r, 0.5).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn progressiveness_respects_sampling_rate() {
        // The sink records the first match then every 10th: samples stand
        // for matches #1, #10, #20 of 32 total.
        let samples = [(5.0, 0u32), (6.0, 0), (7.0, 0)];
        let r = run_with(&samples, 10, 32);
        let curve = progressiveness(&r);
        assert!((curve[0].1 - 1.0 / 32.0).abs() < 1e-9);
        assert!((curve[1].1 - 10.0 / 32.0).abs() < 1e-9);
        assert!((curve[2].1 - 20.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn exact_quantiles_use_histogram_not_samples() {
        // Push 200 matches with latency = i ms through a rate-100 sink:
        // only matches #1, #100, #200 are sampled, but the histogram sees
        // all of them.
        let mut w = WorkerOut::new(100);
        for i in 0..200 {
            w.sink.push(1, 0, 0, i as f64);
        }
        let r = RunResult::merge(Algorithm::Npj, 100, 100, 250.0, vec![w]);
        assert_eq!(r.samples.len(), 3);
        let p99 = latency_quantile_exact_ms(&r, 0.99).unwrap();
        assert!((p99 - 198.0).abs() <= 198.0 / 128.0 + 0.001, "p99={p99}");
        assert_eq!(latency_max_ms(&r).unwrap(), 199.0);
        // No matches → no quantiles.
        let empty = RunResult::merge(Algorithm::Npj, 0, 1, 1.0, vec![WorkerOut::new(1)]);
        assert!(latency_quantile_exact_ms(&empty, 0.5).is_none());
        assert!(latency_max_ms(&empty).is_none());
    }

    #[test]
    fn thinning_preserves_endpoints() {
        let curve: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, i as f64 / 999.0)).collect();
        let thin = thin_curve(&curve, 20);
        assert_eq!(thin.len(), 20);
        assert_eq!(*thin.first().unwrap(), *curve.first().unwrap());
        assert_eq!(*thin.last().unwrap(), *curve.last().unwrap());
        assert!(thin.windows(2).all(|w| w[0].0 <= w[1].0));
        // Short curves pass through unchanged.
        assert_eq!(thin_curve(&curve[..5], 20).len(), 5);
    }

    #[test]
    fn thinning_tiny_n_regression() {
        let curve: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 / 99.0)).collect();
        // n == 2 keeps exactly the two endpoints.
        assert_eq!(thin_curve(&curve, 2), vec![(0.0, 0.0), (99.0, 1.0)]);
        // n == 1 keeps the 100% anchor (documented behaviour).
        assert_eq!(thin_curve(&curve, 1), vec![(99.0, 1.0)]);
        // n == 0 disables thinning.
        assert_eq!(thin_curve(&curve, 0).len(), 100);
    }
}
