//! The three §4.1 performance metrics, computed from a [`RunResult`]'s
//! match samples.

use crate::output::RunResult;

/// Quantile processing latency in stream ms (the paper reports the 95th
/// percentile worst-case latency, after Karimov et al.). Computed over the
/// sampled matches; `None` when no matches were sampled.
pub fn latency_quantile_ms(result: &RunResult, q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if result.samples.is_empty() {
        return None;
    }
    let mut lat: Vec<f64> = result.samples.iter().map(|m| m.latency_ms()).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let idx = ((lat.len() - 1) as f64 * q).round() as usize;
    Some(lat[idx])
}

/// Progressiveness curve: cumulative fraction of matches delivered as a
/// function of elapsed stream time (§4.1). Returns `(elapsed_ms, fraction)`
/// points, one per sample; sample `i` stands for match number
/// `(i+1) × sample_every`, capped at the true total.
pub fn progressiveness(result: &RunResult) -> Vec<(f64, f64)> {
    if result.matches == 0 {
        return Vec::new();
    }
    let total = result.matches as f64;
    result
        .samples
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let cum = ((i as u64 + 1) * result.sample_every).min(result.matches);
            (m.emit_ms, cum as f64 / total)
        })
        .collect()
}

/// Stream time at which `fraction` of all matches had been delivered —
/// e.g. the "time to 50% of matches" comparisons of §5.2. `None` when the
/// curve never reaches the fraction (sampling granularity or no matches).
pub fn time_to_fraction_ms(result: &RunResult, fraction: f64) -> Option<f64> {
    progressiveness(result)
        .into_iter()
        .find(|&(_, f)| f >= fraction)
        .map(|(t, _)| t)
}

/// Down-sample a progressiveness curve to at most `n` evenly spaced points
/// (for printing Figure 6/9c/10c/12b series without flooding the output).
pub fn thin_curve(curve: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if curve.len() <= n || n == 0 {
        return curve.to_vec();
    }
    let step = curve.len() as f64 / n as f64;
    let mut out: Vec<(f64, f64)> = (0..n)
        .map(|i| curve[((i as f64 + 0.5) * step) as usize])
        .collect();
    // Always keep the final point: it anchors the 100% mark.
    *out.last_mut().expect("n > 0") = *curve.last().expect("non-empty");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Algorithm;
    use crate::output::WorkerOut;
    use iawj_common::Sink;

    fn run_with(samples: &[(f64, u32)], sample_every: u64, matches: u64) -> RunResult {
        let mut w = WorkerOut::new(1); // record all pushes
        for &(emit, arrival) in samples {
            w.sink.push(1, arrival, arrival, emit);
        }
        let mut r = RunResult::merge(Algorithm::Npj, 100, sample_every, 100.0, vec![w]);
        r.matches = matches; // simulate a counting sink that saw more
        r
    }

    #[test]
    fn latency_quantiles() {
        // Latencies 1..=100.
        let samples: Vec<(f64, u32)> = (1..=100).map(|i| (i as f64, 0u32)).collect();
        let r = run_with(&samples, 1, 100);
        assert!((latency_quantile_ms(&r, 0.95).unwrap() - 95.0).abs() <= 1.0);
        assert!((latency_quantile_ms(&r, 0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((latency_quantile_ms(&r, 1.0).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_none_without_samples() {
        let r = run_with(&[], 1, 0);
        assert!(latency_quantile_ms(&r, 0.95).is_none());
    }

    #[test]
    fn progressiveness_reaches_one() {
        let samples: Vec<(f64, u32)> = (1..=10).map(|i| (i as f64 * 10.0, 0u32)).collect();
        let r = run_with(&samples, 1, 10);
        let curve = progressiveness(&r);
        assert_eq!(curve.len(), 10);
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!((curve[4].1 - 0.5).abs() < 1e-9);
        assert!((time_to_fraction_ms(&r, 0.5).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn progressiveness_respects_sampling_rate() {
        // 3 samples at rate 10 standing for 30 matches of 32 total.
        let samples = [(5.0, 0u32), (6.0, 0), (7.0, 0)];
        let r = run_with(&samples, 10, 32);
        let curve = progressiveness(&r);
        assert!((curve[0].1 - 10.0 / 32.0).abs() < 1e-9);
        assert!((curve[2].1 - 30.0 / 32.0).abs() < 1e-9);
    }

    #[test]
    fn thinning_preserves_endpoints() {
        let curve: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64, i as f64 / 999.0)).collect();
        let thin = thin_curve(&curve, 20);
        assert_eq!(thin.len(), 20);
        assert_eq!(*thin.last().unwrap(), *curve.last().unwrap());
        assert!(thin.windows(2).all(|w| w[0].0 <= w[1].0));
        // Short curves pass through unchanged.
        assert_eq!(thin_curve(&curve[..5], 20).len(), 5);
    }
}
