//! The Figure 4 decision tree: given workload characteristics, hardware,
//! and the optimisation objective, recommend an algorithm.
//!
//! The tree (root = arrival rate):
//!
//! - **High arrival rate** → lazy.
//!   - high key duplication → sort-based: MPass with large core counts,
//!     MWay otherwise.
//!   - low key duplication → hash-based: PRJ when key skew is low *and*
//!     the join is large, NPJ otherwise.
//! - **Medium arrival rate**:
//!   - high key duplication → PMJ^JB (best on all three metrics).
//!   - low key duplication → depends on the objective: throughput → lazy
//!     (same sub-tree as the high-rate case); latency/progressiveness →
//!     SHJ^JM.
//! - **Low arrival rate** (at least one stream) → eager, with an
//!   index-aware split (the extension past Figure 4): once the resident
//!   window is large, the index engines' per-arrival maintenance is repaid
//!   by probe savings on every arrival (the IBWJ crossover), so IBWJ wins
//!   — IBWJ_PART under high key skew, where the partitioned variant's
//!   histogram rebalance keeps workers even. Below the crossover, SHJ^JM:
//!   it eagerly uses idle hardware with low overhead.
//!
//! The qualitative bands are relative to the machine; the defaults follow
//! the paper's Micro sweep (§5.4) where 1600 tuples/ms behaves "low" and
//! 25600 "high" on a 12-core Xeon.

use crate::algo::Algorithm;
use iawj_common::rate::RateBand;
use iawj_common::Rate;

/// Optimisation objective of the application (§4.1 metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Maximise overall processing efficiency.
    Throughput,
    /// Minimise quantile processing latency.
    Latency,
    /// Deliver partial results as early as possible.
    Progressiveness,
}

/// Workload + platform description fed to the tree.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Arrival rate of R.
    pub rate_r: Rate,
    /// Arrival rate of S.
    pub rate_s: Rate,
    /// Average duplicates per key (max over the two streams).
    pub dupe: f64,
    /// Key-skew Zipf exponent.
    pub skew_key: f64,
    /// Total tuples to join across both streams.
    pub total_tuples: usize,
    /// Available cores.
    pub cores: usize,
}

/// Tunable thresholds for the qualitative bands of Figure 4.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Below this rate (tuples/ms) a stream reads "low".
    pub rate_low: f64,
    /// At/above this rate a stream reads "high".
    pub rate_high: f64,
    /// Key duplication at/above this reads "high" (Figure 11's crossover
    /// sits around 10).
    pub dupe_high: f64,
    /// Key skew at/above this reads "high" (PRJ degrades past ~1.2,
    /// Figure 13).
    pub skew_high: f64,
    /// Joins with at least this many tuples read "large" (PRJ's
    /// partitioning pays off; below it NPJ's simplicity wins).
    pub tuples_large: usize,
    /// Core counts at/above this read "large" (MPass scales better,
    /// §5.6).
    pub cores_large: usize,
    /// The index crossover: at low arrival rates, windows holding at least
    /// this many tuples favour the IBWJ family over SHJ^JM — rebuilding or
    /// re-probing unindexed state grows with window size while index
    /// maintenance stays per-arrival.
    pub index_window_tuples: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            rate_low: 1600.0,
            rate_high: 25600.0,
            dupe_high: 10.0,
            skew_high: 1.2,
            tuples_large: 1 << 20,
            cores_large: 8,
            index_window_tuples: 1 << 20,
        }
    }
}

/// Walk the Figure 4 tree.
pub fn recommend(w: &Workload, objective: Objective, th: &Thresholds) -> Algorithm {
    let band_r = w.rate_r.band(th.rate_low, th.rate_high);
    let band_s = w.rate_s.band(th.rate_low, th.rate_high);

    // "We recommend SHJ^JM whenever one input stream has low arrival rate"
    // — unless the resident window is large enough that the index engines'
    // probe savings repay their maintenance (the IBWJ crossover); the
    // partitioned variant takes over under high key skew.
    if band_r == RateBand::Low || band_s == RateBand::Low {
        if w.total_tuples >= th.index_window_tuples {
            return if w.skew_key >= th.skew_high {
                Algorithm::IbwjPart
            } else {
                Algorithm::Ibwj
            };
        }
        return Algorithm::ShjJm;
    }

    let high_dupe = w.dupe >= th.dupe_high;
    let lazy_pick = || -> Algorithm {
        if high_dupe {
            // Sort-based side of the tree.
            if w.cores >= th.cores_large {
                Algorithm::MPass
            } else {
                Algorithm::MWay
            }
        } else if w.skew_key < th.skew_high && w.total_tuples >= th.tuples_large {
            Algorithm::Prj
        } else {
            Algorithm::Npj
        }
    };

    let high_rate = band_r == RateBand::High && band_s == RateBand::High;
    if high_rate {
        return lazy_pick();
    }

    // Medium arrival rate.
    if high_dupe {
        return Algorithm::PmjJb;
    }
    match objective {
        Objective::Throughput => lazy_pick(),
        Objective::Latency | Objective::Progressiveness => Algorithm::ShjJm,
    }
}

/// Convenience: recommend with default thresholds.
///
/// ```
/// use iawj_core::decision::{recommend_default, Objective, Workload};
/// use iawj_core::Algorithm;
/// use iawj_common::Rate;
///
/// // A slow sensor pair: the tree always picks the eager SHJ^JM.
/// let w = Workload {
///     rate_r: Rate::PerMs(50.0),
///     rate_s: Rate::PerMs(80.0),
///     dupe: 3.0,
///     skew_key: 0.1,
///     total_tuples: 130_000,
///     cores: 8,
/// };
/// assert_eq!(recommend_default(&w, Objective::Latency), Algorithm::ShjJm);
/// ```
pub fn recommend_default(w: &Workload, objective: Objective) -> Algorithm {
    recommend(w, objective, &Thresholds::default())
}

/// Cores this process can actually run `requested` workers on: the request
/// clamped to the affinity mask. Both [`calibrate`] and the
/// [`Workload`]-construction sites (the adaptive sniffer, `iawj
/// recommend`) route through this, so a taskset-restricted process never
/// scales its bands — or its `cores_large` comparison — by cores it
/// cannot use.
pub fn effective_cores(requested: usize) -> usize {
    requested.min(iawj_exec::affinity_core_count().max(1)).max(1)
}

/// Calibrate the rate bands to this host (the paper's "the quantitative
/// value depends on actual hardware" caveat under Figure 4): a short
/// symmetric-hash-join probe measures single-thread processing capacity,
/// and the bands scale from there. A stream is "high rate" when the
/// aggregate input approaches what the cores can absorb eagerly, "low"
/// when it is a small fraction of it — the same 16:1 spread the paper's
/// Micro sweep uses (1600 vs 25600 tuples/ms on its machine). `threads`
/// is clamped to the affinity mask ([`effective_cores`]): capacity the
/// scheduler will never grant must not inflate the bands.
pub fn calibrate(threads: usize) -> Thresholds {
    use iawj_exec::LocalTable;
    use std::time::Instant;

    const PROBE_TUPLES: usize = 200_000;
    let mut r_table = LocalTable::with_capacity(PROBE_TUPLES);
    let mut s_table = LocalTable::with_capacity(PROBE_TUPLES);
    let start = Instant::now();
    let mut sink = 0u64;
    for i in 0..PROBE_TUPLES as u32 {
        let key = i.wrapping_mul(0x9E37_79B9); // decorrelate from bucket bits
        if i % 2 == 0 {
            r_table.insert(key, i);
            s_table.probe(key, |_| sink += 1);
        } else {
            s_table.insert(key, i);
            r_table.probe(key, |_| sink += 1);
        }
    }
    std::hint::black_box(sink);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let per_thread = PROBE_TUPLES as f64 / elapsed_ms.max(1e-6);
    // An eager join saturates somewhat below raw table speed (dispatch,
    // two streams); take 50% of aggregate capacity as the "high" band edge.
    let rate_high = per_thread * effective_cores(threads) as f64 * 0.5;
    Thresholds {
        rate_high,
        rate_low: rate_high / 16.0,
        ..Thresholds::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(rate: f64, dupe: f64) -> Workload {
        Workload {
            rate_r: Rate::PerMs(rate),
            rate_s: Rate::PerMs(rate),
            dupe,
            skew_key: 0.0,
            total_tuples: 10 << 20,
            cores: 8,
        }
    }

    #[test]
    fn low_rate_small_window_is_shj_jm() {
        let mut w = workload(100.0, 1000.0);
        w.total_tuples = 100_000; // below the index crossover
        for obj in [
            Objective::Throughput,
            Objective::Latency,
            Objective::Progressiveness,
        ] {
            assert_eq!(recommend_default(&w, obj), Algorithm::ShjJm);
        }
    }

    #[test]
    fn low_rate_large_window_picks_index_engines() {
        // workload() holds 10 << 20 tuples — past the crossover.
        let w = workload(100.0, 1000.0);
        for obj in [
            Objective::Throughput,
            Objective::Latency,
            Objective::Progressiveness,
        ] {
            assert_eq!(recommend_default(&w, obj), Algorithm::Ibwj, "{obj:?}");
        }
        // One low stream suffices (e.g. Stock).
        let mut w = workload(30000.0, 1.0);
        w.rate_s = Rate::PerMs(100.0);
        assert_eq!(recommend_default(&w, Objective::Throughput), Algorithm::Ibwj);
        // High key skew routes to the partitioned adaptive variant.
        w.skew_key = 1.4;
        assert_eq!(
            recommend_default(&w, Objective::Throughput),
            Algorithm::IbwjPart
        );
        // Raising the crossover knob restores the paper's SHJ^JM answer.
        let th = Thresholds {
            index_window_tuples: usize::MAX,
            ..Thresholds::default()
        };
        assert_eq!(recommend(&w, Objective::Throughput, &th), Algorithm::ShjJm);
    }

    #[test]
    fn effective_cores_clamps_to_affinity_mask() {
        let avail = iawj_exec::affinity_core_count().max(1);
        assert_eq!(effective_cores(usize::MAX), avail);
        assert_eq!(effective_cores(avail + 7), avail, "narrowed mask wins");
        assert_eq!(effective_cores(1), 1);
        assert_eq!(effective_cores(0), 1, "never zero");
    }

    #[test]
    fn high_rate_high_dupe_sorts() {
        let mut w = workload(30000.0, 100.0);
        assert_eq!(
            recommend_default(&w, Objective::Throughput),
            Algorithm::MPass
        );
        w.cores = 4;
        assert_eq!(
            recommend_default(&w, Objective::Throughput),
            Algorithm::MWay
        );
    }

    #[test]
    fn high_rate_low_dupe_hashes() {
        let mut w = workload(30000.0, 1.0);
        assert_eq!(recommend_default(&w, Objective::Throughput), Algorithm::Prj);
        // Small join or skewed keys favour NPJ over PRJ.
        w.total_tuples = 1000;
        assert_eq!(recommend_default(&w, Objective::Throughput), Algorithm::Npj);
        w.total_tuples = 10 << 20;
        w.skew_key = 1.6;
        assert_eq!(recommend_default(&w, Objective::Throughput), Algorithm::Npj);
    }

    #[test]
    fn medium_rate_high_dupe_is_pmj_jb() {
        let w = workload(6400.0, 100.0);
        for obj in [
            Objective::Throughput,
            Objective::Latency,
            Objective::Progressiveness,
        ] {
            assert_eq!(recommend_default(&w, obj), Algorithm::PmjJb, "{obj:?}");
        }
    }

    #[test]
    fn medium_rate_low_dupe_follows_objective() {
        let w = workload(6400.0, 1.0);
        assert_eq!(recommend_default(&w, Objective::Latency), Algorithm::ShjJm);
        assert_eq!(
            recommend_default(&w, Objective::Progressiveness),
            Algorithm::ShjJm
        );
        // Throughput objective falls back to the lazy pick.
        assert_eq!(recommend_default(&w, Objective::Throughput), Algorithm::Prj);
    }

    #[test]
    fn infinite_rate_is_high() {
        let w = Workload {
            rate_r: Rate::Infinite,
            rate_s: Rate::Infinite,
            dupe: 500.0,
            skew_key: 0.01,
            total_tuples: 1 << 21,
            cores: 8,
        };
        // DEBS-like: static, huge duplication -> MPass.
        assert_eq!(
            recommend_default(&w, Objective::Throughput),
            Algorithm::MPass
        );
    }

    #[test]
    fn calibration_produces_ordered_positive_bands() {
        let th = calibrate(4);
        assert!(th.rate_low > 0.0);
        assert!(th.rate_high > th.rate_low);
        assert!((th.rate_high / th.rate_low - 16.0).abs() < 1e-6);
        // More cores -> higher bands.
        let th8 = calibrate(8);
        assert!(th8.rate_high > th.rate_low, "8-core band must not collapse");
        // Calibrated thresholds feed straight into the tree.
        let w = workload(th.rate_high * 2.0, 1.0);
        assert!(recommend(&w, Objective::Throughput, &th).is_lazy());
        // A thread request far past the affinity mask must not inflate the
        // bands to mask-independent values: the clamped calibration stays
        // finite and ordered like any in-mask one.
        let clamped = calibrate(usize::MAX);
        assert!(clamped.rate_high.is_finite() && clamped.rate_high > 0.0);
        assert!((clamped.rate_high / clamped.rate_low - 16.0).abs() < 1e-6);
    }

    #[test]
    fn tree_is_total() {
        // Every combination of bands yields some recommendation.
        for rate in [100.0, 6400.0, 50000.0] {
            for dupe in [1.0, 100.0] {
                for skew in [0.0, 2.0] {
                    for tuples in [1000usize, 10 << 20] {
                        for cores in [2usize, 16] {
                            let w = Workload {
                                rate_r: Rate::PerMs(rate),
                                rate_s: Rate::PerMs(rate),
                                dupe,
                                skew_key: skew,
                                total_tuples: tuples,
                                cores,
                            };
                            for obj in [
                                Objective::Throughput,
                                Objective::Latency,
                                Objective::Progressiveness,
                            ] {
                                let _ = recommend_default(&w, obj);
                            }
                        }
                    }
                }
            }
        }
    }
}
