//! Engines 9+ — the index-based window join family the paper excludes.
//!
//! [`IbwjEngine`] (IBWJ) maintains an evictable hash index
//! ([`iawj_exec::WindowIndex`]) over resident window content per worker and
//! probes it per arrival, reusing the batched bucket-derivation +
//! software-prefetch probe pipeline of the lazy engines. Work is split by
//! *key ownership*: every worker observes the full streams (JM-style
//! pointer passing) and processes only the keys whose hash it owns, so of
//! any matching pair both tuples are handled by one worker, sequentially —
//! the SHJ insert-then-probe argument then gives exactly-once emission.
//!
//! [`run_part_on`] (IBWJ_PART) is the PanJoin-style partitioned adaptive
//! variant: window content is sharded into `P` partitions (each a pair of
//! sub-indexes), stream time is sliced into epochs, and partition→worker
//! ownership is recomputed between epochs from the *observed* cumulative
//! per-partition histogram — a cheap greedy LPT rebalance that fires only
//! when the heaviest worker's share exceeds the ideal share by
//! `IndexConfig::repart_factor`. The histogram and therefore every
//! assignment is a pure function of tuple timestamps, so the match set is
//! deterministic across schedulers, executors, and thread interleavings.
//!
//! Memory ordering: sub-indexes live in `Mutex`es and epochs are separated
//! by a [`std::sync::Barrier`], so an epoch's inserts happen-before the
//! next epoch's probes even when ownership migrates between workers; the
//! single-worker IBWJ needs no synchronisation at all because each index
//! is worker-private (see `window_index`'s module docs for the
//! single-writer/multi-reader contract the streaming service uses).

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::eager::Engine;
use crate::lazy::EmitClock;
use crate::output::WorkerOut;
use iawj_common::hash::hash_key;
use iawj_common::kernel::tuple_buckets_into;
use iawj_common::{KernelBackend, Phase, Sink, Tuple, Ts};
use iawj_exec::morsel::MARK_CLAIM;
use iawj_exec::{Executor, PhaseTimer, WindowIndex};
use iawj_obs::{MARK_INDEX_EVICT, MARK_INDEX_INSERT, MARK_INDEX_REPART};
use std::sync::{Barrier, Mutex};

/// Ownership hash: taken from the high half of the key hash so it stays
/// independent of the bucket index (`bucket_of` masks the low bits — using
/// the same bits for both would cluster a partition's keys into every
/// P-th bucket of its sub-index).
#[inline]
fn owner_hash(key: u32) -> usize {
    (hash_key(key) >> 32) as usize
}

/// Per-worker IBWJ state: one evictable index per side plus the batched
/// pipeline's scratch buffers.
pub struct IbwjEngine {
    r_index: WindowIndex,
    s_index: WindowIndex,
    tid: usize,
    workers: usize,
    kernel: KernelBackend,
    prefetch_dist: usize,
    evict_horizon: Option<u32>,
    max_ts: Ts,
    evicted_below: Ts,
    owned: Vec<Tuple>,
    buckets: Vec<usize>,
}

impl IbwjEngine {
    /// Engine for worker `tid` of `workers`, with per-side indexes sized
    /// for this worker's expected share of the streams.
    pub fn new(expected_r: usize, expected_s: usize, tid: usize, workers: usize) -> Self {
        IbwjEngine {
            r_index: WindowIndex::with_capacity(expected_r.max(16)),
            s_index: WindowIndex::with_capacity(expected_s.max(16)),
            tid,
            workers: workers.max(1),
            kernel: KernelBackend::default(),
            prefetch_dist: iawj_common::DEFAULT_PREFETCH_DIST,
            evict_horizon: None,
            max_ts: 0,
            evicted_below: 0,
            owned: Vec::new(),
            buckets: Vec::new(),
        }
    }

    /// Builder: adopt the run's kernel knobs (backend + prefetch distance).
    pub fn kernel(mut self, backend: KernelBackend, prefetch_dist: usize) -> Self {
        self.kernel = backend;
        self.prefetch_dist = prefetch_dist.max(1);
        self
    }

    /// Builder: evict entries older than `horizon_ms` behind the newest
    /// arrival (streaming use; `None` keeps the whole window resident).
    pub fn evict_horizon(mut self, horizon_ms: Option<u32>) -> Self {
        self.evict_horizon = horizon_ms;
        self
    }

    /// Keep only the tuples this worker owns, tracking the newest ts.
    fn filter_owned(&mut self, batch: &[Tuple]) {
        self.owned.clear();
        for t in batch {
            if owner_hash(t.key) % self.workers == self.tid {
                self.owned.push(*t);
                self.max_ts = self.max_ts.max(t.ts);
            }
        }
    }

    /// Batched insert of `self.owned` into one side's index.
    fn insert_owned(index: &mut WindowIndex, owned: &[Tuple], buckets: &mut Vec<usize>, kernel: KernelBackend, dist: usize) {
        tuple_buckets_into(kernel, owned, index.mask(), buckets);
        for (i, t) in owned.iter().enumerate() {
            if let Some(&ahead) = buckets.get(i + dist) {
                index.prefetch_bucket(ahead);
            }
            index.insert_at(buckets[i], t.key, t.ts);
        }
    }

    /// Evict both indexes once the newest arrival has moved far enough
    /// past the last horizon (quarter-horizon granularity keeps the sweep
    /// at window-close cadence rather than per batch).
    fn maybe_evict(&mut self, timer: &mut PhaseTimer) {
        let Some(h) = self.evict_horizon else { return };
        let target = self.max_ts.saturating_sub(h);
        let step = (h / 4).max(1);
        if target >= self.evicted_below.saturating_add(step) {
            let n = self.r_index.evict_before(target) + self.s_index.evict_before(target);
            self.evicted_below = target;
            if n > 0 {
                timer.instant(MARK_INDEX_EVICT);
            }
        }
    }
}

impl Engine for IbwjEngine {
    fn on_r(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        self.filter_owned(batch);
        if self.owned.is_empty() {
            return;
        }
        // Expired entries must leave before this batch probes: the horizon
        // stands in for the window bound.
        self.maybe_evict(timer);
        timer.switch_to(Phase::BuildSort);
        Self::insert_owned(
            &mut self.r_index,
            &self.owned,
            &mut self.buckets,
            self.kernel,
            self.prefetch_dist,
        );
        timer.instant(MARK_INDEX_INSERT);
        timer.switch_to(Phase::Probe);
        tuple_buckets_into(self.kernel, &self.owned, self.s_index.mask(), &mut self.buckets);
        for (i, t) in self.owned.iter().enumerate() {
            if let Some(&ahead) = self.buckets.get(i + self.prefetch_dist) {
                self.s_index.prefetch_bucket(ahead);
            }
            let now = emit.now();
            self.s_index
                .probe_at(self.buckets[i], t.key, |s_ts| out.sink.push(t.key, t.ts, s_ts, now));
        }
    }

    fn on_s(
        &mut self,
        batch: &[Tuple],
        timer: &mut PhaseTimer,
        emit: &mut EmitClock<'_>,
        out: &mut WorkerOut,
    ) {
        self.filter_owned(batch);
        if self.owned.is_empty() {
            return;
        }
        self.maybe_evict(timer);
        timer.switch_to(Phase::BuildSort);
        Self::insert_owned(
            &mut self.s_index,
            &self.owned,
            &mut self.buckets,
            self.kernel,
            self.prefetch_dist,
        );
        timer.instant(MARK_INDEX_INSERT);
        timer.switch_to(Phase::Probe);
        tuple_buckets_into(self.kernel, &self.owned, self.r_index.mask(), &mut self.buckets);
        for (i, t) in self.owned.iter().enumerate() {
            if let Some(&ahead) = self.buckets.get(i + self.prefetch_dist) {
                self.r_index.prefetch_bucket(ahead);
            }
            let now = emit.now();
            self.r_index
                .probe_at(self.buckets[i], t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
        }
    }

    fn finish(&mut self, _timer: &mut PhaseTimer, _emit: &mut EmitClock<'_>, _out: &mut WorkerOut) {
        // Fully incremental: nothing is deferred.
    }

    fn state_bytes(&self) -> usize {
        self.r_index.bytes()
            + self.s_index.bytes()
            + self.owned.capacity() * std::mem::size_of::<Tuple>()
            + self.buckets.capacity() * std::mem::size_of::<usize>()
    }
}

/// One partition of the IBWJ_PART state: a pair of evictable sub-indexes.
struct PartState {
    r: WindowIndex,
    s: WindowIndex,
}

/// The per-epoch schedule of IBWJ_PART: all of it derived deterministically
/// from tuple timestamps before any worker starts.
struct EpochPlan {
    /// Newest stream-ts this epoch may contain; workers gate on it.
    wait_ts: Ts,
    /// partition → worker ownership for this epoch.
    assignment: Vec<usize>,
    /// The histogram trigger fired and ownership was recomputed.
    repart: bool,
}

#[inline]
pub(crate) fn part_of(key: u32, partitions: usize) -> usize {
    owner_hash(key) % partitions
}

#[inline]
fn epoch_of(ts: Ts, span: u64, epochs: usize) -> usize {
    ((ts as u64 * epochs as u64 / span) as usize).min(epochs - 1)
}

/// Build the deterministic epoch schedule: per-epoch per-partition
/// histograms from the full streams, then greedy LPT ownership recomputed
/// wherever the observed (cumulative, strictly-past) load of the heaviest
/// worker exceeds the ideal share by `repart_factor`.
fn build_plan(
    r: &[Tuple],
    s: &[Tuple],
    span: u64,
    epochs: usize,
    partitions: usize,
    workers: usize,
    repart_factor: f64,
) -> Vec<EpochPlan> {
    let mut counts = vec![vec![0u64; partitions]; epochs];
    for t in r.iter().chain(s.iter()) {
        counts[epoch_of(t.ts, span, epochs)][part_of(t.key, partitions)] += 1;
    }

    let mut plans: Vec<EpochPlan> = Vec::with_capacity(epochs);
    let mut cumulative = vec![0u64; partitions];
    for k in 0..epochs {
        let wait_ts = if k == epochs - 1 {
            (span - 1) as Ts
        } else {
            (((k as u64 + 1) * span).div_ceil(epochs as u64) - 1) as Ts
        };
        let (assignment, repart) = if k == 0 {
            // Nothing observed yet: round-robin.
            ((0..partitions).map(|p| p % workers).collect::<Vec<_>>(), false)
        } else {
            let prev = &plans[k - 1].assignment;
            let mut load = vec![0u64; workers];
            for p in 0..partitions {
                load[prev[p]] += cumulative[p];
            }
            let total: u64 = load.iter().sum();
            let ideal = total as f64 / workers as f64;
            let max = *load.iter().max().unwrap_or(&0);
            if total > 0 && max as f64 > ideal * repart_factor {
                // Greedy LPT over the observed cumulative histogram:
                // heaviest partition first, to the least-loaded worker.
                let mut order: Vec<usize> = (0..partitions).collect();
                order.sort_by_key(|&p| (std::cmp::Reverse(cumulative[p]), p));
                let mut new_load = vec![0u64; workers];
                let mut next = prev.clone();
                for p in order {
                    let w = (0..workers).min_by_key(|&w| (new_load[w], w)).unwrap();
                    next[p] = w;
                    new_load[w] += cumulative[p];
                }
                let changed = next != *prev;
                (next, changed)
            } else {
                (prev.clone(), false)
            }
        };
        for p in 0..partitions {
            cumulative[p] += counts[k][p];
        }
        plans.push(EpochPlan {
            wait_ts,
            assignment,
            repart,
        });
    }
    plans
}

/// Join one epoch's arrivals of one partition against its sub-indexes:
/// insert the R batch then probe S with it, insert the S batch then probe
/// R with it — the SHJ order that makes each cross-epoch and intra-epoch
/// pair match exactly once.
#[allow(clippy::too_many_arguments)]
fn join_partition(
    st: &mut PartState,
    r_batch: &[Tuple],
    s_batch: &[Tuple],
    timer: &mut PhaseTimer,
    emit: &mut EmitClock<'_>,
    out: &mut WorkerOut,
    morsel: Option<usize>,
) {
    let chunked = |batch: &[Tuple], timer: &mut PhaseTimer, f: &mut dyn FnMut(&[Tuple], &mut PhaseTimer)| {
        match morsel {
            Some(m) => {
                for chunk in batch.chunks(m) {
                    timer.instant(MARK_CLAIM);
                    f(chunk, timer);
                }
            }
            None => f(batch, timer),
        }
    };
    if !r_batch.is_empty() {
        chunked(r_batch, timer, &mut |chunk, timer| {
            timer.switch_to(Phase::BuildSort);
            for t in chunk {
                st.r.insert(t.key, t.ts);
            }
            timer.instant(MARK_INDEX_INSERT);
            timer.switch_to(Phase::Probe);
            for t in chunk {
                let now = emit.now();
                st.s.probe(t.key, |s_ts| out.sink.push(t.key, t.ts, s_ts, now));
            }
        });
    }
    if !s_batch.is_empty() {
        chunked(s_batch, timer, &mut |chunk, timer| {
            timer.switch_to(Phase::BuildSort);
            for t in chunk {
                st.s.insert(t.key, t.ts);
            }
            timer.instant(MARK_INDEX_INSERT);
            timer.switch_to(Phase::Probe);
            for t in chunk {
                let now = emit.now();
                st.r.probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
            }
        });
    }
}

/// Run the partitioned adaptive index engine (IBWJ_PART) over the full
/// streams. See the module docs for the epoch/barrier design and the
/// determinism and exactly-once arguments.
pub fn run_part_on(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
    exec: &Executor,
) -> Vec<WorkerOut> {
    let workers = cfg.threads;
    let partitions = cfg.index_partitions();
    let epochs = cfg.index.epochs.max(1);
    let span = arrive_by as u64 + 1;
    let plan = build_plan(r, s, span, epochs, partitions, workers, cfg.index.repart_factor);

    let expected = (r.len() + s.len()) / partitions + 1;
    let parts: Vec<Mutex<PartState>> = (0..partitions)
        .map(|_| {
            Mutex::new(PartState {
                r: WindowIndex::with_capacity(expected),
                s: WindowIndex::with_capacity(expected),
            })
        })
        .collect();
    let barrier = Barrier::new(workers);
    let morsel = cfg.sched.stealing().then(|| cfg.sched.morsel_size.max(1));

    exec.run(workers, |w| {
        let mut out = WorkerOut::new(cfg.sample_every);
        let mut timer = cfg.timer_for(Phase::Other, clock.epoch());
        let mut emit = EmitClock::new(clock);
        let mut owned_r: Vec<Vec<Tuple>> = vec![Vec::new(); partitions];
        let mut owned_s: Vec<Vec<Tuple>> = vec![Vec::new(); partitions];
        for (k, ep) in plan.iter().enumerate() {
            timer.switch_to(Phase::Wait);
            clock.wait_until(ep.wait_ts);
            emit.refresh();
            if w == 0 && ep.repart {
                timer.instant(MARK_INDEX_REPART);
            }
            timer.switch_to(Phase::Partition);
            for v in owned_r.iter_mut().chain(owned_s.iter_mut()) {
                v.clear();
            }
            for t in r {
                if epoch_of(t.ts, span, epochs) == k {
                    let p = part_of(t.key, partitions);
                    if ep.assignment[p] == w {
                        owned_r[p].push(*t);
                    }
                }
            }
            for t in s {
                if epoch_of(t.ts, span, epochs) == k {
                    let p = part_of(t.key, partitions);
                    if ep.assignment[p] == w {
                        owned_s[p].push(*t);
                    }
                }
            }
            let mut state_bytes = 0usize;
            for p in 0..partitions {
                if ep.assignment[p] != w {
                    continue;
                }
                if owned_r[p].is_empty() && owned_s[p].is_empty() && cfg.index.evict_horizon_ms.is_none() {
                    continue;
                }
                let mut st = parts[p].lock().unwrap();
                join_partition(
                    &mut st, &owned_r[p], &owned_s[p], &mut timer, &mut emit, &mut out, morsel,
                );
                if let Some(h) = cfg.index.evict_horizon_ms {
                    let horizon = ep.wait_ts.saturating_sub(h);
                    timer.switch_to(Phase::Other);
                    if st.r.evict_before(horizon) + st.s.evict_before(horizon) > 0 {
                        timer.instant(MARK_INDEX_EVICT);
                    }
                }
                state_bytes += st.r.bytes() + st.s.bytes();
            }
            if cfg.mem_sample_every > 0 {
                out.mem_samples.push((clock.now_ms(), state_bytes));
            }
            // An epoch's inserts must happen-before the next epoch's
            // probes, across any ownership migration.
            timer.switch_to(Phase::Wait);
            barrier.wait();
        }
        timer.instant("flush");
        out.set_timing(timer.finish_parts());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::View;
    use crate::eager::drive_worker;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, max_ts: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| Tuple::new(rng.next_u32() % keys, rng.next_u32() % max_ts))
            .collect()
    }

    fn canonical(out: &WorkerOut) -> Vec<(u32, u32, u32)> {
        let mut v: Vec<_> = out
            .sink
            .samples
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_worker_ibwj_matches_reference() {
        let r = random_stream(400, 32, 64, 1);
        let s = random_stream(500, 32, 64, 2);
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(1).record_all();
        let out = drive_worker(
            IbwjEngine::new(r.len(), s.len(), 0, 1),
            View::strided(&r, 0, 1),
            View::strided(&s, 0, 1),
            &cfg,
            &clock,
        );
        assert_eq!(canonical(&out), nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn ownership_filter_partitions_matches_without_loss() {
        // Two workers over the full streams must union to the reference,
        // with no pair seen twice.
        let r = random_stream(300, 16, 64, 3);
        let s = random_stream(300, 16, 64, 4);
        let clock = EventClock::ungated();
        let cfg = RunConfig::with_threads(2).record_all();
        let mut got = Vec::new();
        for tid in 0..2 {
            let out = drive_worker(
                IbwjEngine::new(r.len(), s.len(), tid, 2),
                View::strided(&r, 0, 1),
                View::strided(&s, 0, 1),
                &cfg,
                &clock,
            );
            got.extend(canonical(&out));
        }
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn eviction_drops_out_of_horizon_pairs_only() {
        let clock = EventClock::ungated();
        let mut e = IbwjEngine::new(16, 16, 0, 1).evict_horizon(Some(10));
        let mut emit = EmitClock::new(&clock);
        let mut timer = PhaseTimer::start(Phase::Other);
        let mut out = WorkerOut::new(1);
        e.on_r(&[Tuple::new(7, 0)], &mut timer, &mut emit, &mut out);
        // Advance far past the horizon: the ts-0 entry is evicted.
        e.on_s(&[Tuple::new(7, 100)], &mut timer, &mut emit, &mut out);
        e.on_s(&[Tuple::new(7, 101)], &mut timer, &mut emit, &mut out);
        assert_eq!(out.sink.count(), 0, "r@0 left the horizon before s@100");
        e.on_r(&[Tuple::new(7, 102)], &mut timer, &mut emit, &mut out);
        assert_eq!(out.sink.count(), 2, "in-horizon s@100/s@101 both match");
        assert!(e.state_bytes() > 0);
    }

    #[test]
    fn part_plan_is_deterministic_and_repartitions_under_skew() {
        // All load on one partition: the trigger must fire by epoch 2.
        let r: Vec<Tuple> = (0..800).map(|i| Tuple::new(5, i % 64)).collect();
        let s: Vec<Tuple> = (0..800).map(|i| Tuple::new(5, i % 64)).collect();
        let plan = build_plan(&r, &s, 64, 8, 8, 4, 1.5);
        assert_eq!(plan.len(), 8);
        assert!(!plan[0].repart, "nothing observed before epoch 0");
        assert!(
            plan.iter().any(|e| e.repart),
            "a single hot partition must trip the histogram trigger"
        );
        let again = build_plan(&r, &s, 64, 8, 8, 4, 1.5);
        for (a, b) in plan.iter().zip(again.iter()) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.wait_ts, b.wait_ts);
        }
    }

    #[test]
    fn part_plan_keeps_balanced_assignment_stable() {
        let r = random_stream(2000, 512, 64, 9);
        let s = random_stream(2000, 512, 64, 10);
        // Uniform keys at factor 4: the trigger should never fire.
        let plan = build_plan(&r, &s, 64, 8, 16, 4, 4.0);
        assert!(plan.iter().all(|e| !e.repart));
        for e in &plan[1..] {
            assert_eq!(e.assignment, plan[0].assignment);
        }
    }

    #[test]
    fn epochs_cover_every_ts_exactly_once() {
        let span = 64u64;
        for epochs in [1usize, 3, 8] {
            for ts in 0..64u32 {
                let k = epoch_of(ts, span, epochs);
                assert!(k < epochs, "ts={ts} epochs={epochs}");
            }
            // Epoch wait gates cover their members: every ts in epoch k is
            // <= the plan's wait_ts for k.
            let plan = build_plan(&[], &[], span, epochs, 4, 2, 1.5);
            for ts in 0..64u32 {
                let k = epoch_of(ts, span, epochs);
                assert!(ts <= plan[k].wait_ts, "ts={ts} epochs={epochs} k={k}");
            }
            assert_eq!(plan[epochs - 1].wait_ts, 63);
        }
    }

    #[test]
    fn run_part_on_matches_reference_across_threads_and_skew() {
        for (seed, keys) in [(21u64, 64u32), (22, 4)] {
            let r = random_stream(600, keys, 64, seed);
            let s = random_stream(600, keys, 64, seed + 100);
            let expect = nested_loop_join(&r, &s, Window::of_len(64));
            for threads in [1usize, 3, 4] {
                let cfg = RunConfig::with_threads(threads).record_all();
                let exec = cfg.make_executor();
                let clock = EventClock::ungated();
                let outs = run_part_on(&r, &s, &cfg, &clock, 63, &exec);
                let mut got: Vec<_> = outs.iter().flat_map(|o| canonical(o)).collect();
                got.sort_unstable();
                assert_eq!(got, expect, "seed={seed} threads={threads}");
            }
        }
    }
}
