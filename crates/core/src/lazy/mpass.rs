//! Multi-Pass Sort-Merge Join (MPass), after Balkesen et al.
//!
//! Identical to MWay up to the per-thread sorted runs; the difference is the
//! shuffle: instead of one multi-way merge, runs are merged by *successive
//! two-way merging* — log₂(runs) parallel passes of pairwise merges (the
//! AVX build uses bitonic merge networks; our stand-in is the branchless
//! two-way merge). The final join phase is the same range-partitioned
//! single-pass merge join.

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::lazy::mway::{key_aligned_splitters, segment, STEAL_OVERSPLIT};
use crate::lazy::{EmitClock, Slots};
use crate::output::WorkerOut;
use iawj_common::{Phase, Sink, Ts, Tuple};
use iawj_exec::merge::{
    choose_splitters, merge_two_into, merge_two_into_branchless, splitter_bounds,
};
use iawj_exec::morsel::{for_each_morsel, MARK_CLAIM, MARK_STEAL};
use iawj_exec::pool::{barrier, chunk_range};
use iawj_exec::sort::{pack_tuples, sort_packed_kernel, SortBackend};
use iawj_exec::{Executor, Latch};

/// Run MPass. Convenience wrapper over [`run_on`] that builds the executor
/// [`RunConfig`] asks for.
pub fn run(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
) -> Vec<WorkerOut> {
    run_on(r, s, cfg, clock, arrive_by, &cfg.make_executor())
}

/// Run MPass on an existing executor (reused across runs / window closes).
pub fn run_on(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
    exec: &Executor,
) -> Vec<WorkerOut> {
    let threads = cfg.threads;
    let stealing = cfg.sched.stealing();
    let parts = if stealing {
        threads * STEAL_OVERSPLIT
    } else {
        threads
    };
    let range_q = cfg.sched.item_queue(parts, threads);
    // Mutable run storage for the merge passes: slot i holds the run that
    // started as thread i's sorted chunk and absorbs its merge partners.
    let r_store: Vec<Latch<Option<Vec<u64>>>> = (0..threads).map(|_| Latch::new(None)).collect();
    let s_store: Vec<Latch<Option<Vec<u64>>>> = (0..threads).map(|_| Latch::new(None)).collect();
    let merged: Slots<(Vec<u64>, Vec<u64>)> = Slots::new(1);
    let splitters: Slots<Vec<u64>> = Slots::new(1);
    let sorted = barrier(threads);
    let pass_done = barrier(threads);
    let publish_done = barrier(threads);
    let split_done = barrier(threads);

    exec.run(threads, |tid| {
        let mut out = WorkerOut::new(cfg.sample_every);
        let mut timer = cfg.timer_for(Phase::Wait, clock.epoch());
        clock.wait_until(arrive_by);

        // Sort local runs.
        timer.switch_to(Phase::BuildSort);
        let mut r_run = pack_tuples(&r[chunk_range(r.len(), threads, tid)]);
        sort_packed_kernel(&mut r_run, cfg.sort, cfg.kernel.backend);
        *r_store[tid].lock() = Some(r_run);
        let mut s_run = pack_tuples(&s[chunk_range(s.len(), threads, tid)]);
        sort_packed_kernel(&mut s_run, cfg.sort, cfg.kernel.backend);
        *s_store[tid].lock() = Some(s_run);
        timer.switch_to(Phase::Other);
        sorted.wait();
        timer.instant("barrier:runs_sorted");

        // Successive two-way merge passes. In pass of width w, run i merges
        // run i+w for every i divisible by 2w; pair p is handled by worker
        // p mod threads.
        timer.switch_to(Phase::Merge);
        let mut width = 1usize;
        while width < threads {
            let mut pair_idx = 0usize;
            let mut i = 0usize;
            while i + width < threads {
                if pair_idx % threads == tid {
                    for store in [&r_store, &s_store] {
                        let a = store[i].lock().take().expect("left run present");
                        let b = store[i + width].lock().take().expect("right run present");
                        let mut m = Vec::new();
                        match cfg.sort {
                            SortBackend::Vectorized => merge_two_into_branchless(&a, &b, &mut m),
                            SortBackend::Scalar => merge_two_into(&a, &b, &mut m),
                        }
                        *store[i].lock() = Some(m);
                    }
                }
                pair_idx += 1;
                i += 2 * width;
            }
            timer.switch_to(Phase::Other);
            pass_done.wait();
            timer.instant("merge:pass_done");
            timer.switch_to(Phase::Merge);
            width *= 2;
        }
        if tid == 0 {
            let r_all = r_store[0].lock().take().expect("merged R");
            let s_all = s_store[0].lock().take().expect("merged S");
            merged.set(0, (r_all, s_all));
        }
        timer.switch_to(Phase::Other);
        publish_done.wait();
        let (r_all, s_all) = merged.get(0);

        if tid == 0 && cfg.mem_sample_every > 0 {
            out.mem_samples.push((
                clock.now_ms(),
                2 * (r.len() + s.len()) * std::mem::size_of::<u64>(),
            ));
        }

        // Range-partitioned merge join over the globally sorted inputs.
        timer.switch_to(Phase::Partition);
        if tid == 0 {
            splitters.set(
                0,
                key_aligned_splitters(choose_splitters(
                    &[r_all.as_slice(), s_all.as_slice()],
                    parts,
                )),
            );
        }
        timer.switch_to(Phase::Other);
        split_done.wait();
        timer.instant("barrier:splitters_done");
        let bounds = splitter_bounds(splitters.get(0));
        let mut emit = EmitClock::new(clock);
        if stealing {
            for_each_morsel(&range_q, tid, |claimed, stolen| {
                timer.instant(if stolen { MARK_STEAL } else { MARK_CLAIM });
                for i in claimed {
                    if i >= bounds.len() {
                        continue; // key alignment merged this range away
                    }
                    timer.switch_to(Phase::Probe);
                    iawj_exec::mergejoin::merge_join(
                        segment(r_all, &bounds, i),
                        segment(s_all, &bounds, i),
                        |k, rts, sts| out.sink.push(k, rts, sts, emit.now()),
                    );
                }
            });
        } else if tid < bounds.len() {
            timer.switch_to(Phase::Probe);
            iawj_exec::mergejoin::merge_join(
                segment(r_all, &bounds, tid),
                segment(s_all, &bounds, tid),
                |k, rts, sts| out.sink.push(k, rts, sts, emit.now()),
            );
        }
        out.set_timing(timer.finish_parts());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    fn canonical(outs: &[WorkerOut]) -> Vec<(u32, u32, u32)> {
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn matches_reference_pow2_threads() {
        let r = random_stream(900, 200, 1);
        let s = random_stream(1100, 200, 2);
        for threads in [1usize, 2, 4, 8] {
            let cfg = RunConfig::with_threads(threads).record_all();
            let clock = EventClock::ungated();
            let outs = run(&r, &s, &cfg, &clock, 0);
            assert_eq!(
                canonical(&outs),
                nested_loop_join(&r, &s, Window::of_len(64)),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scalar_backend_matches_too() {
        let r = random_stream(500, 64, 3);
        let s = random_stream(500, 64, 4);
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .sort(SortBackend::Scalar);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn non_pow2_threads_still_correct() {
        // The runner enforces the paper's power-of-two rule, but the merge
        // loop itself must not corrupt data for odd counts.
        let r = random_stream(600, 50, 5);
        let s = random_stream(600, 50, 6);
        let cfg = RunConfig::with_threads(3).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn steal_scheduler_matches_reference() {
        use iawj_exec::Scheduler;
        let r = random_stream(1200, 150, 9);
        let s = random_stream(1000, 150, 10);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for threads in [1usize, 2, 4] {
            let cfg = RunConfig::with_threads(threads)
                .record_all()
                .scheduler(Scheduler::Steal);
            let clock = EventClock::ungated();
            let outs = run(&r, &s, &cfg, &clock, 0);
            assert_eq!(canonical(&outs), expect, "threads={threads}");
        }
    }

    #[test]
    fn high_duplication_correct() {
        let r = random_stream(1500, 4, 7);
        let s = random_stream(1500, 4, 8);
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let total: u64 = outs.iter().map(|w| w.sink.count()).sum();
        assert_eq!(
            total,
            nested_loop_join(&r, &s, Window::of_len(64)).len() as u64
        );
    }
}
