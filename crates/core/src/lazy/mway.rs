//! Multi-Way Sort-Merge Join (MWay), after Chhugani et al. / Balkesen et al.
//!
//! Each thread sorts an equisized chunk of R and of S (the AVX-sort stand-in
//! of `iawj_exec::sort`), then the sorted runs are *multi-way merged*: global
//! key-range splitters are sampled, and every thread merges its own output
//! range from all runs at once, ending with a single-pass merge join of its
//! R and S ranges.

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::lazy::{EmitClock, Slots};
use crate::output::WorkerOut;
use iawj_common::{Phase, Sink, Ts, Tuple};
use iawj_exec::merge::{choose_splitters, kway_merge_loser, splitter_bounds};
use iawj_exec::morsel::{for_each_morsel, MARK_CLAIM, MARK_STEAL};
use iawj_exec::pool::{barrier, chunk_range};
use iawj_exec::sort::{pack_tuples, sort_packed_kernel};
use iawj_exec::{Executor, PhaseTimer};

/// How many splitter ranges steal mode requests per worker: over-splitting
/// the key space is what gives thieves something to take when one range
/// carries a hot Zipf key group.
pub(crate) const STEAL_OVERSPLIT: usize = 4;

/// Mask keeping only the key half of a packed tuple: splitters are snapped
/// to key boundaries so an equal-key group never straddles two ranges.
pub(crate) const KEY_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// Snap sampled splitters to key boundaries and deduplicate.
pub(crate) fn key_aligned_splitters(raw: Vec<u64>) -> Vec<u64> {
    let mut s: Vec<u64> = raw.into_iter().map(|v| v & KEY_MASK).collect();
    s.dedup();
    s.retain(|&v| v != 0); // a zero splitter makes an empty first range
    s
}

/// The segment of `run` belonging to range `i` of `bounds`; the final range
/// extends to the run's end so no element is ever dropped.
pub(crate) fn segment<'a>(run: &'a [u64], bounds: &[(u64, u64)], i: usize) -> &'a [u64] {
    let (lo, hi) = bounds[i];
    let start = run.partition_point(|&v| v < lo);
    if i + 1 == bounds.len() {
        &run[start..]
    } else {
        let end = run.partition_point(|&v| v < hi);
        &run[start..end]
    }
}

/// Run MWay. Convenience wrapper over [`run_on`] that builds the executor
/// [`RunConfig`] asks for.
pub fn run(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
) -> Vec<WorkerOut> {
    run_on(r, s, cfg, clock, arrive_by, &cfg.make_executor())
}

/// Run MWay on an existing executor (reused across runs / window closes).
pub fn run_on(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
    exec: &Executor,
) -> Vec<WorkerOut> {
    let threads = cfg.threads;
    let stealing = cfg.sched.stealing();
    let parts = if stealing {
        threads * STEAL_OVERSPLIT
    } else {
        threads
    };
    let range_q = cfg.sched.item_queue(parts, threads);
    let r_runs: Slots<Vec<u64>> = Slots::new(threads);
    let s_runs: Slots<Vec<u64>> = Slots::new(threads);
    let splitters: Slots<Vec<u64>> = Slots::new(1);
    let sorted = barrier(threads);
    let split_done = barrier(threads);

    exec.run(threads, |tid| {
        let mut out = WorkerOut::new(cfg.sample_every);
        let mut timer = cfg.timer_for(Phase::Wait, clock.epoch());
        clock.wait_until(arrive_by);

        // Sort local runs.
        timer.switch_to(Phase::BuildSort);
        let mut r_run = pack_tuples(&r[chunk_range(r.len(), threads, tid)]);
        sort_packed_kernel(&mut r_run, cfg.sort, cfg.kernel.backend);
        r_runs.set(tid, r_run);
        let mut s_run = pack_tuples(&s[chunk_range(s.len(), threads, tid)]);
        sort_packed_kernel(&mut s_run, cfg.sort, cfg.kernel.backend);
        s_runs.set(tid, s_run);
        timer.switch_to(Phase::Other);
        sorted.wait();
        timer.instant("barrier:runs_sorted");

        // Range splitters from a sample of all runs.
        timer.switch_to(Phase::Partition);
        if tid == 0 {
            let all: Vec<&[u64]> = (0..threads)
                .flat_map(|i| [r_runs.get(i).as_slice(), s_runs.get(i).as_slice()])
                .collect();
            splitters.set(0, key_aligned_splitters(choose_splitters(&all, parts)));
        }
        timer.switch_to(Phase::Other);
        split_done.wait();
        timer.instant("barrier:splitters_done");
        let bounds = splitter_bounds(splitters.get(0));

        if tid == 0 && cfg.mem_sample_every > 0 {
            // Sorted copies of both inputs (runs + merged output).
            out.mem_samples.push((
                clock.now_ms(),
                2 * (r.len() + s.len()) * std::mem::size_of::<u64>(),
            ));
        }

        // Multi-way merge output ranges from all runs: one fixed range per
        // worker in static mode, dynamically claimed (and over-split)
        // ranges in steal mode.
        let mut emit = EmitClock::new(clock);
        let merge_range =
            |range_i: usize, timer: &mut PhaseTimer, emit: &mut EmitClock, out: &mut WorkerOut| {
                timer.switch_to(Phase::Merge);
                let r_segs: Vec<&[u64]> = (0..threads)
                    .map(|i| segment(r_runs.get(i), &bounds, range_i))
                    .collect();
                let s_segs: Vec<&[u64]> = (0..threads)
                    .map(|i| segment(s_runs.get(i), &bounds, range_i))
                    .collect();
                let r_sorted = kway_merge_loser(&r_segs);
                let s_sorted = kway_merge_loser(&s_segs);

                timer.switch_to(Phase::Probe);
                iawj_exec::mergejoin::merge_join(&r_sorted, &s_sorted, |k, rts, sts| {
                    out.sink.push(k, rts, sts, emit.now());
                });
            };
        if stealing {
            for_each_morsel(&range_q, tid, |claimed, stolen| {
                timer.instant(if stolen { MARK_STEAL } else { MARK_CLAIM });
                for i in claimed {
                    // Key alignment may merge ranges away; skip the excess.
                    if i < bounds.len() {
                        merge_range(i, &mut timer, &mut emit, &mut out);
                    }
                }
            });
        } else if tid < bounds.len() {
            merge_range(tid, &mut timer, &mut emit, &mut out);
        }
        out.set_timing(timer.finish_parts());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    fn canonical(outs: &[WorkerOut]) -> Vec<(u32, u32, u32)> {
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn matches_reference() {
        let r = random_stream(1000, 300, 1);
        let s = random_stream(1200, 300, 2);
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn duplicate_heavy_groups_do_not_straddle_ranges() {
        // 8 hot keys across 4 workers: splitters must snap to key bounds.
        let r = random_stream(2000, 8, 3);
        let s = random_stream(2000, 8, 4);
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn single_thread() {
        let r = random_stream(500, 100, 5);
        let s = random_stream(400, 100, 6);
        let cfg = RunConfig::with_threads(1).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn steal_scheduler_matches_reference() {
        use iawj_exec::Scheduler;
        let r = random_stream(1500, 250, 9);
        let s = random_stream(1500, 250, 10);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for threads in [1usize, 2, 4] {
            let cfg = RunConfig::with_threads(threads)
                .record_all()
                .scheduler(Scheduler::Steal);
            let clock = EventClock::ungated();
            let outs = run(&r, &s, &cfg, &clock, 0);
            assert_eq!(canonical(&outs), expect, "threads={threads}");
        }
    }

    #[test]
    fn merge_phase_is_timed() {
        let r = random_stream(4000, 4000, 7);
        let s = random_stream(4000, 4000, 8);
        let cfg = RunConfig::with_threads(2);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let merge: u64 = outs.iter().map(|w| w.breakdown[Phase::Merge]).sum();
        let sort: u64 = outs.iter().map(|w| w.breakdown[Phase::BuildSort]).sum();
        assert!(merge > 0);
        assert!(sort > 0);
    }

    #[test]
    fn splitter_alignment_drops_zero_and_dups() {
        let s = key_aligned_splitters(vec![(1u64 << 32) | 5, (1u64 << 32) | 9, 2u64 << 32, 7]);
        assert_eq!(s, vec![1u64 << 32, 2u64 << 32]);
    }
}
