//! No-Partitioning hash Join (NPJ), after Blanas et al.
//!
//! All threads cooperatively build one shared hash table over R (equisized
//! input chunks, per-bucket latches — or CAS-chained bucket heads in the
//! lock-free table mode), synchronise on a barrier, then concurrently probe
//! it with their chunks of S. The shared table is the point: no
//! partitioning cost, but bucket contention and a table that can exceed
//! the last-level cache (§5.3.2, §5.6). Contention is journaled per event:
//! `latch:wait` spin episodes in latch mode, `cas:retry` failed publishes
//! in lock-free mode.

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::lazy::{steal_scan, EmitClock};
use crate::output::WorkerOut;
use iawj_common::kernel::tuple_buckets_into;
use iawj_common::{KernelBackend, Phase, Sink, Ts, Tuple};
use iawj_exec::pool::{barrier, chunk_range};
use iawj_exec::{Executor, LockFreeTable, NpjTable, SharedTable, StripedTable};
use iawj_obs::{MARK_CAS_RETRY, MARK_LATCH_WAIT};

/// The shared table behind NPJ, with the scheme chosen by
/// [`crate::config::NpjConfig`]: per-bucket latches (the default, matching
/// the paper's bucket-chain table), striped latches (the latch-granularity
/// ablation), or the lock-free CAS-chained table (the latched-vs-lock-free
/// A/B behind Fig. 8).
enum Table {
    PerBucket(SharedTable),
    Striped(StripedTable),
    LockFree(LockFreeTable),
}

impl Table {
    /// Build the shared table. With `first_touch` the lock-free table is
    /// allocated untouched (zeroed, lazily mapped pages) so the workers can
    /// fault its memory onto their own NUMA nodes before the build; the
    /// latched tables have non-zero headers and always initialise eagerly.
    fn build(expected: usize, cfg: &RunConfig, first_touch: bool) -> Self {
        match (cfg.npj.table, cfg.npj.striped_latches) {
            (NpjTable::LockFree, _) if first_touch => {
                Table::LockFree(LockFreeTable::with_capacity_untouched(expected))
            }
            (NpjTable::LockFree, _) => Table::LockFree(LockFreeTable::with_capacity(expected)),
            (NpjTable::Latch, Some(stripes)) => {
                Table::Striped(StripedTable::with_capacity(expected, stripes))
            }
            (NpjTable::Latch, None) => Table::PerBucket(SharedTable::with_capacity(expected)),
        }
    }

    /// The journal mark this table emits per contention event: a spin-wait
    /// episode on a latch, or a failed bucket-head CAS.
    fn contention_mark(&self) -> &'static str {
        match self {
            Table::PerBucket(_) | Table::Striped(_) => MARK_LATCH_WAIT,
            Table::LockFree(_) => MARK_CAS_RETRY,
        }
    }

    /// Insert, returning the number of contention events it cost.
    #[inline]
    fn insert(&self, key: u32, ts: u32) -> u32 {
        match self {
            Table::PerBucket(t) => t.insert_counting(key, ts),
            Table::Striped(t) => t.insert_counting(key, ts),
            Table::LockFree(t) => t.insert(key, ts),
        }
    }

    /// Probe, returning the number of contention events it cost (always 0
    /// for the lock-free table: its probe path takes no latch and never
    /// CASes).
    #[inline]
    fn probe(&self, key: u32, f: impl FnMut(u32)) -> u32 {
        match self {
            Table::PerBucket(t) => t.probe_counting(key, f),
            Table::Striped(t) => t.probe_counting(key, f),
            Table::LockFree(t) => {
                t.probe(key, f);
                0
            }
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Table::PerBucket(t) => t.bytes(),
            Table::Striped(t) => t.bytes(),
            Table::LockFree(t) => t.bytes(),
        }
    }

    /// Bucket mask shared by all table modes (same capacity → same mask).
    #[inline]
    fn mask(&self) -> u64 {
        match self {
            Table::PerBucket(t) => t.mask(),
            Table::Striped(t) => t.mask(),
            Table::LockFree(t) => t.mask(),
        }
    }

    /// Prefetch the head of bucket `b` (a hint; out-of-range is a no-op).
    #[inline]
    fn prefetch_bucket(&self, b: usize) {
        match self {
            Table::PerBucket(t) => t.prefetch_bucket(b),
            Table::Striped(t) => t.prefetch_bucket(b),
            Table::LockFree(t) => t.prefetch_bucket(b),
        }
    }

    /// [`Table::insert`] with the bucket index already derived.
    #[inline]
    fn insert_at(&self, b: usize, key: u32, ts: u32) -> u32 {
        match self {
            Table::PerBucket(t) => t.insert_at_counting(b, key, ts),
            Table::Striped(t) => t.insert_at_counting(b, key, ts),
            Table::LockFree(t) => t.insert_at(b, key, ts),
        }
    }

    /// [`Table::probe`] with the bucket index already derived.
    #[inline]
    fn probe_at(&self, b: usize, key: u32, f: impl FnMut(u32)) -> u32 {
        match self {
            Table::PerBucket(t) => t.probe_at_counting(b, key, f),
            Table::Striped(t) => t.probe_at_counting(b, key, f),
            Table::LockFree(t) => {
                t.probe_at(b, key, f);
                0
            }
        }
    }
}

/// Tuples per batched-pipeline block: large enough to amortise the 8-wide
/// hash kernel, small enough that the derived bucket indices stay in L1.
const PIPELINE_BLOCK: usize = 1024;

/// Batched build over one contiguous range (`--kernel simd` path): per
/// block, derive every bucket index up front with the 8-wide hash kernel,
/// then walk the block issuing a bucket-head prefetch `dist` tuples ahead
/// of each insert so chain heads are (likely) cache-resident by the time
/// they are claimed.
#[inline]
fn build_batched(
    table: &Table,
    tuples: &[Tuple],
    kernel: KernelBackend,
    dist: usize,
    buckets: &mut Vec<usize>,
) -> u32 {
    let mut events = 0u32;
    for block in tuples.chunks(PIPELINE_BLOCK) {
        tuple_buckets_into(kernel, block, table.mask(), buckets);
        for (i, t) in block.iter().enumerate() {
            if let Some(&ahead) = buckets.get(i + dist) {
                table.prefetch_bucket(ahead);
            }
            events += table.insert_at(buckets[i], t.key, t.ts);
        }
    }
    events
}

/// Batched probe over one contiguous range, same pipeline shape as
/// [`build_batched`]. `emit.now()` is still taken per tuple, so match
/// timestamps keep the exact per-tuple semantics of the scalar path.
#[inline]
fn probe_batched(
    table: &Table,
    tuples: &[Tuple],
    kernel: KernelBackend,
    dist: usize,
    buckets: &mut Vec<usize>,
    emit: &mut EmitClock,
    out: &mut WorkerOut,
) -> u32 {
    let mut events = 0u32;
    for block in tuples.chunks(PIPELINE_BLOCK) {
        tuple_buckets_into(kernel, block, table.mask(), buckets);
        for (i, t) in block.iter().enumerate() {
            if let Some(&ahead) = buckets.get(i + dist) {
                table.prefetch_bucket(ahead);
            }
            let now = emit.now();
            events += table.probe_at(buckets[i], t.key, |r_ts| {
                out.sink.push(t.key, r_ts, t.ts, now)
            });
        }
    }
    events
}

/// Run NPJ. `arrive_by` is the arrival timestamp of the window's last
/// tuple; the lazy approach waits for it before starting. Convenience
/// wrapper over [`run_on`] that builds the executor [`RunConfig`] asks for.
pub fn run(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
) -> Vec<WorkerOut> {
    run_on(r, s, cfg, clock, arrive_by, &cfg.make_executor())
}

/// Run NPJ on an existing executor (reused across runs / window closes).
pub fn run_on(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
    exec: &Executor,
) -> Vec<WorkerOut> {
    let threads = cfg.threads;
    // With pinned workers the lock-free table defers page placement: it is
    // allocated zeroed (lazily mapped) and each worker faults + initialises
    // its own share below, so table memory lands on the workers' NUMA
    // nodes instead of wherever the coordinating thread happens to run.
    let first_touch = exec.pinned() && cfg.npj.table == NpjTable::LockFree;
    let table = Table::build(r.len(), cfg, first_touch);
    let touch_done = barrier(threads);
    let build_done = barrier(threads);
    let stealing = cfg.sched.stealing();
    let build_q = cfg.sched.queue(r.len(), threads);
    let probe_q = cfg.sched.queue(s.len(), threads);
    exec.run(threads, |tid| {
        let mut out = WorkerOut::new(cfg.sample_every);
        let mut timer = cfg.timer_for(Phase::Wait, clock.epoch());
        clock.wait_until(arrive_by);

        let mark = table.contention_mark();
        let kernel = cfg.kernel.backend;
        let dist = cfg.kernel.prefetch_dist.max(1);
        // Per-worker scratch for the batched pipelines, reused across
        // morsel ranges so the Simd path allocates once per worker.
        let mut buckets: Vec<usize> = Vec::new();
        timer.switch_to(Phase::BuildSort);
        if first_touch {
            if let Table::LockFree(t) = &table {
                // SAFETY: every tid initialises its disjoint share, and the
                // barrier orders all touches before the first insert.
                unsafe { t.first_touch(tid, threads) };
            }
            touch_done.wait();
            timer.instant("barrier:first_touch_done");
        }
        if stealing {
            // The scan owns the timer, so contention events accumulate in a
            // counter and flush to the journal when the phase ends (their
            // count is exact; only their timestamps cluster).
            let mut events = 0u32;
            steal_scan(&build_q, tid, &mut timer, |range| {
                if kernel.is_simd() {
                    events += build_batched(&table, &r[range], kernel, dist, &mut buckets);
                } else {
                    for t in &r[range] {
                        events += table.insert(t.key, t.ts);
                    }
                }
            });
            for _ in 0..events {
                timer.instant(mark);
            }
        } else if kernel.is_simd() {
            let chunk = &r[chunk_range(r.len(), threads, tid)];
            for _ in 0..build_batched(&table, chunk, kernel, dist, &mut buckets) {
                timer.instant(mark);
            }
        } else {
            for t in &r[chunk_range(r.len(), threads, tid)] {
                for _ in 0..table.insert(t.key, t.ts) {
                    timer.instant(mark);
                }
            }
        }
        timer.switch_to(Phase::Other);
        build_done.wait();
        timer.instant("barrier:build_done");
        if tid == 0 && cfg.mem_sample_every > 0 {
            out.mem_samples.push((clock.now_ms(), table.bytes()));
        }

        timer.switch_to(Phase::Probe);
        let mut emit = EmitClock::new(clock);
        if stealing {
            let mut events = 0u32;
            steal_scan(&probe_q, tid, &mut timer, |range| {
                if kernel.is_simd() {
                    events += probe_batched(
                        &table,
                        &s[range],
                        kernel,
                        dist,
                        &mut buckets,
                        &mut emit,
                        &mut out,
                    );
                } else {
                    for t in &s[range] {
                        let now = emit.now();
                        events += table.probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
                    }
                }
            });
            for _ in 0..events {
                timer.instant(mark);
            }
        } else if kernel.is_simd() {
            let chunk = &s[chunk_range(s.len(), threads, tid)];
            let events = probe_batched(
                &table,
                chunk,
                kernel,
                dist,
                &mut buckets,
                &mut emit,
                &mut out,
            );
            for _ in 0..events {
                timer.instant(mark);
            }
        } else {
            for t in &s[chunk_range(s.len(), threads, tid)] {
                let now = emit.now();
                let waits = table.probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
                for _ in 0..waits {
                    timer.instant(mark);
                }
            }
        }
        out.set_timing(timer.finish_parts());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    #[test]
    fn matches_reference() {
        let r = random_stream(500, 64, 1);
        let s = random_stream(700, 64, 2);
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn single_thread_works() {
        let r = random_stream(100, 8, 3);
        let s = random_stream(100, 8, 4);
        let cfg = RunConfig::with_threads(1).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let total: u64 = outs.iter().map(|w| w.sink.count()).sum();
        assert_eq!(
            total,
            nested_loop_join(&r, &s, Window::of_len(64)).len() as u64
        );
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let cfg = RunConfig::with_threads(2).record_all();
        let clock = EventClock::ungated();
        let outs = run(&[], &[], &cfg, &clock, 0);
        assert_eq!(outs.iter().map(|w| w.sink.count()).sum::<u64>(), 0);
    }

    #[test]
    fn striped_latch_ablation_is_correct() {
        let r = random_stream(800, 32, 7);
        let s = random_stream(800, 32, 8);
        let mut cfg = RunConfig::with_threads(4).record_all();
        cfg.npj.striped_latches = Some(64);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn steal_scheduler_matches_static() {
        use iawj_exec::morsel::MARK_CLAIM;
        use iawj_exec::Scheduler;
        let r = random_stream(900, 16, 11);
        let s = random_stream(1100, 16, 12);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(64)
            .with_journal();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        let marks = |name: &str| -> usize {
            outs.iter()
                .filter_map(|w| w.journal.as_ref())
                .map(|j| j.count_marks(name))
                .sum()
        };
        // Morsels align per deque: 4 deques of 225 (build) and 275 (probe)
        // tuples at morsel 64 yield 4*ceil(225/64) + 4*ceil(275/64) marks,
        // each claimed exactly once whether owned or stolen.
        use iawj_exec::morsel::MARK_STEAL;
        assert_eq!(marks(MARK_CLAIM) + marks(MARK_STEAL), 16 + 20);
    }

    #[test]
    fn lockfree_table_matches_reference() {
        let r = random_stream(800, 32, 21);
        let s = random_stream(900, 32, 22);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for scheduler in [iawj_exec::Scheduler::Static, iawj_exec::Scheduler::Steal] {
            let cfg = RunConfig::with_threads(4)
                .record_all()
                .npj_table(NpjTable::LockFree)
                .scheduler(scheduler)
                .morsel_size(64);
            let clock = EventClock::ungated();
            let outs = run(&r, &s, &cfg, &clock, 0);
            let mut got: Vec<_> = outs
                .iter()
                .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
                .collect();
            got.sort_unstable();
            assert_eq!(got, expect, "scheduler {scheduler:?}");
        }
    }

    #[test]
    fn kernel_backends_agree_bitwise() {
        use iawj_exec::Scheduler;
        let r = random_stream(900, 32, 61);
        let s = random_stream(1000, 32, 62);
        for table in [NpjTable::Latch, NpjTable::LockFree] {
            for scheduler in [Scheduler::Static, Scheduler::Steal] {
                let collect = |backend: KernelBackend| {
                    let cfg = RunConfig::with_threads(4)
                        .record_all()
                        .npj_table(table)
                        .scheduler(scheduler)
                        .morsel_size(64)
                        .kernel(backend)
                        .prefetch_dist(4);
                    let clock = EventClock::ungated();
                    let outs = run(&r, &s, &cfg, &clock, 0);
                    let mut got: Vec<_> = outs
                        .iter()
                        .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
                        .collect();
                    got.sort_unstable();
                    got
                };
                assert_eq!(
                    collect(KernelBackend::Scalar),
                    collect(KernelBackend::Simd),
                    "table {table:?} scheduler {scheduler:?}"
                );
            }
        }
    }

    #[test]
    fn lockfree_mode_never_journals_latch_waits() {
        let r = random_stream(2000, 4, 31);
        let s = random_stream(2000, 4, 32);
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .npj_table(NpjTable::LockFree)
            .with_journal();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let count = |name: &str| -> usize {
            outs.iter()
                .filter_map(|w| w.journal.as_ref())
                .map(|j| j.count_marks(name))
                .sum()
        };
        assert_eq!(count(MARK_LATCH_WAIT), 0);
        // cas:retry is scheduling-dependent; just assert it is the only
        // contention mark this mode can emit (no panic, count readable).
        let _ = count(MARK_CAS_RETRY);
    }

    #[test]
    fn latch_mode_never_journals_cas_retries() {
        let r = random_stream(2000, 4, 41);
        let s = random_stream(2000, 4, 42);
        let cfg = RunConfig::with_threads(4).record_all().with_journal();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let retries: usize = outs
            .iter()
            .filter_map(|w| w.journal.as_ref())
            .map(|j| j.count_marks(MARK_CAS_RETRY))
            .sum();
        assert_eq!(retries, 0);
    }

    #[test]
    fn breakdown_has_probe_time() {
        let r = random_stream(2000, 16, 5);
        let s = random_stream(2000, 16, 6);
        let cfg = RunConfig::with_threads(2);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let total: u64 = outs.iter().map(|w| w.breakdown[Phase::Probe]).sum();
        assert!(total > 0, "probe phase must be timed");
        let merge: u64 = outs.iter().map(|w| w.breakdown[Phase::Merge]).sum();
        assert_eq!(merge, 0, "hash join has no merge phase");
    }
}
