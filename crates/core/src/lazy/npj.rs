//! No-Partitioning hash Join (NPJ), after Blanas et al.
//!
//! All threads cooperatively build one shared hash table over R (equisized
//! input chunks, per-bucket latches), synchronise on a barrier, then
//! concurrently probe it with their chunks of S. The shared table is the
//! point: no partitioning cost, but bucket contention and a table that can
//! exceed the last-level cache (§5.3.2, §5.6).

use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::lazy::{steal_scan, EmitClock};
use crate::output::WorkerOut;
use iawj_common::{Phase, Sink, Ts, Tuple};
use iawj_exec::pool::{barrier, chunk_range};
use iawj_exec::{run_workers, PhaseTimer, SharedTable, StripedTable};

/// The shared table behind NPJ, with the latching scheme chosen by
/// [`crate::config::NpjConfig`]: per-bucket latches (the default, matching
/// the paper's bucket-chain table) or striped latches (the ablation).
enum Table {
    PerBucket(SharedTable),
    Striped(StripedTable),
}

impl Table {
    fn build(expected: usize, cfg: &RunConfig) -> Self {
        match cfg.npj.striped_latches {
            Some(stripes) => Table::Striped(StripedTable::with_capacity(expected, stripes)),
            None => Table::PerBucket(SharedTable::with_capacity(expected)),
        }
    }

    #[inline]
    fn insert(&self, key: u32, ts: u32) {
        match self {
            Table::PerBucket(t) => t.insert(key, ts),
            Table::Striped(t) => t.insert(key, ts),
        }
    }

    #[inline]
    fn probe(&self, key: u32, f: impl FnMut(u32)) {
        match self {
            Table::PerBucket(t) => t.probe(key, f),
            Table::Striped(t) => t.probe(key, f),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            Table::PerBucket(t) => t.bytes(),
            Table::Striped(t) => t.bytes(),
        }
    }
}

/// Run NPJ. `arrive_by` is the arrival timestamp of the window's last
/// tuple; the lazy approach waits for it before starting.
pub fn run(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
) -> Vec<WorkerOut> {
    let threads = cfg.threads;
    let table = Table::build(r.len(), cfg);
    let build_done = barrier(threads);
    let stealing = cfg.sched.stealing();
    let build_q = cfg.sched.queue(r.len(), threads);
    let probe_q = cfg.sched.queue(s.len(), threads);
    run_workers(threads, |tid| {
        let mut out = WorkerOut::new(cfg.sample_every);
        let mut timer = PhaseTimer::with_journal(Phase::Wait, cfg.journal_for(clock.epoch()));
        clock.wait_until(arrive_by);

        timer.switch_to(Phase::BuildSort);
        if stealing {
            steal_scan(&build_q, tid, &mut timer, |range| {
                for t in &r[range] {
                    table.insert(t.key, t.ts);
                }
            });
        } else {
            for t in &r[chunk_range(r.len(), threads, tid)] {
                table.insert(t.key, t.ts);
            }
        }
        timer.switch_to(Phase::Other);
        build_done.wait();
        timer.instant("barrier:build_done");
        if tid == 0 && cfg.mem_sample_every > 0 {
            out.mem_samples.push((clock.now_ms(), table.bytes()));
        }

        timer.switch_to(Phase::Probe);
        let mut emit = EmitClock::new(clock);
        if stealing {
            steal_scan(&probe_q, tid, &mut timer, |range| {
                for t in &s[range] {
                    let now = emit.now();
                    table.probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
                }
            });
        } else {
            for t in &s[chunk_range(s.len(), threads, tid)] {
                let now = emit.now();
                table.probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
            }
        }
        out.set_timing(timer.finish_parts());
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::nested_loop_join;
    use iawj_common::{Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    #[test]
    fn matches_reference() {
        let r = random_stream(500, 64, 1);
        let s = random_stream(700, 64, 2);
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn single_thread_works() {
        let r = random_stream(100, 8, 3);
        let s = random_stream(100, 8, 4);
        let cfg = RunConfig::with_threads(1).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let total: u64 = outs.iter().map(|w| w.sink.count()).sum();
        assert_eq!(
            total,
            nested_loop_join(&r, &s, Window::of_len(64)).len() as u64
        );
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let cfg = RunConfig::with_threads(2).record_all();
        let clock = EventClock::ungated();
        let outs = run(&[], &[], &cfg, &clock, 0);
        assert_eq!(outs.iter().map(|w| w.sink.count()).sum::<u64>(), 0);
    }

    #[test]
    fn striped_latch_ablation_is_correct() {
        let r = random_stream(800, 32, 7);
        let s = random_stream(800, 32, 8);
        let mut cfg = RunConfig::with_threads(4).record_all();
        cfg.npj.striped_latches = Some(64);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, nested_loop_join(&r, &s, Window::of_len(64)));
    }

    #[test]
    fn steal_scheduler_matches_static() {
        use iawj_exec::morsel::MARK_CLAIM;
        use iawj_exec::Scheduler;
        let r = random_stream(900, 16, 11);
        let s = random_stream(1100, 16, 12);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(64)
            .with_journal();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expect);
        let marks = |name: &str| -> usize {
            outs.iter()
                .filter_map(|w| w.journal.as_ref())
                .map(|j| j.count_marks(name))
                .sum()
        };
        // Morsels align per deque: 4 deques of 225 (build) and 275 (probe)
        // tuples at morsel 64 yield 4*ceil(225/64) + 4*ceil(275/64) marks,
        // each claimed exactly once whether owned or stolen.
        use iawj_exec::morsel::MARK_STEAL;
        assert_eq!(marks(MARK_CLAIM) + marks(MARK_STEAL), 16 + 20);
    }

    #[test]
    fn breakdown_has_probe_time() {
        let r = random_stream(2000, 16, 5);
        let s = random_stream(2000, 16, 6);
        let cfg = RunConfig::with_threads(2);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let total: u64 = outs.iter().map(|w| w.breakdown[Phase::Probe]).sum();
        assert!(total > 0, "probe phase must be timed");
        let merge: u64 = outs.iter().map(|w| w.breakdown[Phase::Merge]).sum();
        assert_eq!(merge, 0, "hash join has no merge phase");
    }
}
