//! Parallel Radix Join (PRJ), after Kim et al. / Balkesen et al.
//!
//! Both inputs are radix-partitioned on the low `#r` key bits so each
//! R-partition fits in cache; partitions then get joined independently with
//! a cache-resident build+probe, pulled from a shared work queue. The first
//! pass is a cooperative parallel partition (per-thread histograms → prefix
//! sums → contention-free scatter); when `#r` exceeds the per-pass budget a
//! second, thread-local refinement pass runs inside the work queue, exactly
//! like the original's two-pass scheme.

use crate::clock::EventClock;
use crate::config::{KernelConfig, RunConfig};
use crate::lazy::{steal_scan, EmitClock, Slots};
use crate::output::WorkerOut;
use iawj_common::kernel::tuple_buckets_into;
use iawj_common::{Phase, Sink, Ts, Tuple};
use iawj_exec::morsel::{for_each_morsel, MorselQueue, MARK_CLAIM, MARK_STEAL};
use iawj_exec::pool::{barrier, chunk_range};
use iawj_exec::radix::{histogram_kernel, partition_seq_kernel, ScatterPlan, SharedOut};
use iawj_exec::swwc::{ScatterMode, SwwcBuffers, MARK_FLUSH};
use iawj_exec::{Executor, LocalTable, PhaseTimer};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Fixed morsel grid used by the steal-mode partition pass: cell `g` of an
/// input of `len` tuples is `g*m..(g+1)*m`. The grid is deterministic so a
/// cell's histogram and its scatter use the same slice no matter which
/// worker claims it — the contract `ScatterPlan::scatter_chunk` relies on.
#[inline]
fn grid_chunk(len: usize, m: usize, g: usize) -> std::ops::Range<usize> {
    (g * m)..((g + 1) * m).min(len)
}

/// Number of grid cells for `len` tuples at morsel size `m` (at least one,
/// so empty inputs still yield a valid all-zero scatter plan).
#[inline]
fn grid_cells(len: usize, m: usize) -> usize {
    len.div_ceil(m).max(1)
}

/// Run PRJ. Convenience wrapper over [`run_on`] that builds the executor
/// [`RunConfig`] asks for.
pub fn run(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
) -> Vec<WorkerOut> {
    run_on(r, s, cfg, clock, arrive_by, &cfg.make_executor())
}

/// Run PRJ on an existing executor (reused across runs / window closes).
pub fn run_on(
    r: &[Tuple],
    s: &[Tuple],
    cfg: &RunConfig,
    clock: &EventClock,
    arrive_by: Ts,
    exec: &Executor,
) -> Vec<WorkerOut> {
    let threads = cfg.threads;
    let bits_total = cfg.prj.radix_bits.max(1);
    let bits1 = bits_total.min(cfg.prj.max_bits_per_pass).max(1);
    let bits2 = bits_total - bits1;

    let stealing = cfg.sched.stealing();
    let morsel = cfg.sched.morsel_size.max(1);
    // Steal mode partitions over a fixed morsel grid instead of one chunk
    // per thread: each grid cell is a scatter-plan slot, so any worker can
    // claim any cell's histogram or scatter without violating the
    // histogram-matches-chunk contract.
    let (r_cells, s_cells) = if stealing {
        (grid_cells(r.len(), morsel), grid_cells(s.len(), morsel))
    } else {
        (0, 0)
    };
    let r_ghists: Slots<Vec<u32>> = Slots::new(r_cells);
    let s_ghists: Slots<Vec<u32>> = Slots::new(s_cells);
    let r_hist_q = MorselQueue::new(r_cells, threads, 1);
    let s_hist_q = MorselQueue::new(s_cells, threads, 1);
    let r_scatter_q = MorselQueue::new(r_cells, threads, 1);
    let s_scatter_q = MorselQueue::new(s_cells, threads, 1);

    let r_hists: Slots<Vec<u32>> = Slots::new(threads);
    let s_hists: Slots<Vec<u32>> = Slots::new(threads);
    let plans: Slots<(ScatterPlan, SharedOut, ScatterPlan, SharedOut)> = Slots::new(1);
    let hist_done = barrier(threads);
    let plan_done = barrier(threads);
    let scatter_done = barrier(threads);
    let next_partition = AtomicUsize::new(0);
    let fanout1 = 1usize << bits1;
    let join_q = cfg.sched.item_queue(fanout1, threads);

    // With pinned workers the partition arenas use first-touch allocation:
    // zeroed, lazily mapped pages that each scattering worker faults onto
    // its own NUMA node by pre-touching exactly the slot it scatters.
    let first_touch = exec.pinned();
    exec.run(threads, |tid| {
        let mut out = WorkerOut::new(cfg.sample_every);
        let mut timer = cfg.timer_for(Phase::Wait, clock.epoch());
        clock.wait_until(arrive_by);

        // --- Pass 1: cooperative parallel partition of R and S ---
        let kernel = cfg.kernel.backend;
        timer.switch_to(Phase::Partition);
        if stealing {
            steal_scan(&r_hist_q, tid, &mut timer, |cells| {
                for g in cells {
                    r_ghists.set(
                        g,
                        histogram_kernel(&r[grid_chunk(r.len(), morsel, g)], 0, bits1, kernel),
                    );
                }
            });
            steal_scan(&s_hist_q, tid, &mut timer, |cells| {
                for g in cells {
                    s_ghists.set(
                        g,
                        histogram_kernel(&s[grid_chunk(s.len(), morsel, g)], 0, bits1, kernel),
                    );
                }
            });
        } else {
            r_hists.set(
                tid,
                histogram_kernel(&r[chunk_range(r.len(), threads, tid)], 0, bits1, kernel),
            );
            s_hists.set(
                tid,
                histogram_kernel(&s[chunk_range(s.len(), threads, tid)], 0, bits1, kernel),
            );
        }
        hist_done.wait();
        timer.instant("barrier:histograms_done");
        if tid == 0 {
            let (rh, sh): (Vec<Vec<u32>>, Vec<Vec<u32>>) = if stealing {
                (
                    (0..r_cells).map(|g| r_ghists.get(g).clone()).collect(),
                    (0..s_cells).map(|g| s_ghists.get(g).clone()).collect(),
                )
            } else {
                (
                    (0..threads).map(|i| r_hists.get(i).clone()).collect(),
                    (0..threads).map(|i| s_hists.get(i).clone()).collect(),
                )
            };
            let rp = ScatterPlan::from_histograms(&rh, 0, bits1);
            let sp = ScatterPlan::from_histograms(&sh, 0, bits1);
            let (ro, so) = if first_touch {
                (
                    SharedOut::new_first_touch(r.len()),
                    SharedOut::new_first_touch(s.len()),
                )
            } else {
                (SharedOut::new(r.len()), SharedOut::new(s.len()))
            };
            plans.set(0, (rp, ro, sp, so));
        }
        plan_done.wait();
        let (r_plan, r_out, s_plan, s_out) = plans.get(0);
        // SWWC mode: one write-combining buffer set per worker per side,
        // reused across every chunk/cell this worker scatters (the scatter
        // call drains it at each slot boundary, so reuse is residue-free).
        let swwc = cfg.prj.scatter == ScatterMode::Swwc;
        let mut wc = if swwc {
            Some((SwwcBuffers::for_bits(bits1), SwwcBuffers::for_bits(bits1)))
        } else {
            None
        };
        if stealing {
            steal_scan(&r_scatter_q, tid, &mut timer, |cells| {
                for g in cells {
                    let c = &r[grid_chunk(r.len(), morsel, g)];
                    if first_touch {
                        // SAFETY: cell `g` is exactly the region this worker
                        // scatters next — toucher and writer are one thread.
                        unsafe { r_plan.touch_chunk(g, r_out) };
                    }
                    match &mut wc {
                        Some((rb, _)) => r_plan.scatter_chunk_swwc_kernel(c, g, r_out, rb, kernel),
                        None => r_plan.scatter_chunk_kernel(c, g, r_out, kernel),
                    }
                }
            });
            steal_scan(&s_scatter_q, tid, &mut timer, |cells| {
                for g in cells {
                    let c = &s[grid_chunk(s.len(), morsel, g)];
                    if first_touch {
                        // SAFETY: as above — same thread touches then writes.
                        unsafe { s_plan.touch_chunk(g, s_out) };
                    }
                    match &mut wc {
                        Some((_, sb)) => s_plan.scatter_chunk_swwc_kernel(c, g, s_out, sb, kernel),
                        None => s_plan.scatter_chunk_kernel(c, g, s_out, kernel),
                    }
                }
            });
        } else {
            if first_touch {
                // SAFETY: slot `tid` is exactly the region this worker is
                // about to scatter — toucher and writer are the same thread.
                unsafe {
                    r_plan.touch_chunk(tid, r_out);
                    s_plan.touch_chunk(tid, s_out);
                }
            }
            match &mut wc {
                Some((rb, sb)) => {
                    r_plan.scatter_chunk_swwc_kernel(
                        &r[chunk_range(r.len(), threads, tid)],
                        tid,
                        r_out,
                        rb,
                        kernel,
                    );
                    s_plan.scatter_chunk_swwc_kernel(
                        &s[chunk_range(s.len(), threads, tid)],
                        tid,
                        s_out,
                        sb,
                        kernel,
                    );
                }
                None => {
                    r_plan.scatter_chunk_kernel(
                        &r[chunk_range(r.len(), threads, tid)],
                        tid,
                        r_out,
                        kernel,
                    );
                    s_plan.scatter_chunk_kernel(
                        &s[chunk_range(s.len(), threads, tid)],
                        tid,
                        s_out,
                        kernel,
                    );
                }
            }
        }
        if let Some((rb, sb)) = &wc {
            // One journal mark per end-of-slot buffer drain (chunk in
            // static mode, grid cell in steal mode), emitted after the
            // scatter so the hot loop stays mark-free. Across workers the
            // drain marks therefore count the scatter slots exactly.
            for _ in 0..(rb.drains() + sb.drains()) {
                timer.instant(MARK_FLUSH);
            }
        }
        timer.switch_to(Phase::Other);
        scatter_done.wait();
        timer.instant("barrier:scatter_done");
        // SAFETY: the barrier orders all scatter writes before these reads.
        let r_part: &[Tuple] = unsafe { r_out.as_slice() };
        let s_part: &[Tuple] = unsafe { s_out.as_slice() };

        if tid == 0 && cfg.mem_sample_every > 0 {
            // Partitioned copies of both inputs are PRJ's footprint.
            out.mem_samples.push((
                clock.now_ms(),
                (r.len() + s.len()) * std::mem::size_of::<Tuple>(),
            ));
        }

        // --- Per-partition cache-resident joins from a shared queue ---
        let mut emit = EmitClock::new(clock);
        let kcfg = cfg.kernel;
        // Per-worker scratch for the batched bucket pipeline, reused across
        // every partition this worker joins.
        let mut buckets: Vec<usize> = Vec::new();
        let mut do_partition =
            |p: usize, timer: &mut PhaseTimer, emit: &mut EmitClock, out: &mut WorkerOut| {
                let rp = &r_part[r_plan.bounds[p]..r_plan.bounds[p + 1]];
                let sp = &s_part[s_plan.bounds[p]..s_plan.bounds[p + 1]];
                if rp.is_empty() || sp.is_empty() {
                    return;
                }
                if bits2 > 0 {
                    // --- Pass 2: thread-local refinement ---
                    timer.switch_to(Phase::Partition);
                    let rr = partition_seq_kernel(rp, bits1, bits2, kernel);
                    let ss = partition_seq_kernel(sp, bits1, bits2, kernel);
                    for q in 0..rr.fanout() {
                        join_partition(
                            rr.partition(q),
                            ss.partition(q),
                            &kcfg,
                            &mut buckets,
                            timer,
                            emit,
                            out,
                        );
                    }
                } else {
                    join_partition(rp, sp, &kcfg, &mut buckets, timer, emit, out);
                }
            };
        if stealing {
            // Per-worker deques of partition ids with steal-half: a worker
            // stuck on a heavy Zipf partition sheds the rest of its deque.
            for_each_morsel(&join_q, tid, |range, stolen| {
                timer.instant(if stolen { MARK_STEAL } else { MARK_CLAIM });
                for p in range {
                    do_partition(p, &mut timer, &mut emit, &mut out);
                }
            });
        } else {
            loop {
                let p = next_partition.fetch_add(1, Ordering::Relaxed);
                if p >= fanout1 {
                    break;
                }
                do_partition(p, &mut timer, &mut emit, &mut out);
            }
        }
        out.set_timing(timer.finish_parts());
        out
    })
}

/// Cache-resident hash join of one partition pair: build a private table
/// over the R side, probe with the S side.
///
/// Under [`KernelBackend::Simd`] both loops run as batched pipelines:
/// bucket indices come from the 8-wide hash kernel and each access
/// prefetches the bucket head `dist` tuples ahead. The partition is mostly
/// cache-resident already, so the win here is smaller than NPJ's — but the
/// pipeline keeps the A/B symmetric across algorithms. `Scalar` keeps the
/// original per-tuple loops byte-for-byte.
fn join_partition(
    rp: &[Tuple],
    sp: &[Tuple],
    kcfg: &KernelConfig,
    buckets: &mut Vec<usize>,
    timer: &mut PhaseTimer,
    emit: &mut EmitClock<'_>,
    out: &mut WorkerOut,
) {
    if rp.is_empty() || sp.is_empty() {
        return;
    }
    let (kernel, dist) = (kcfg.backend, kcfg.prefetch_dist.max(1));
    timer.switch_to(Phase::BuildSort);
    let mut table = LocalTable::with_capacity(rp.len());
    if kernel.is_simd() {
        tuple_buckets_into(kernel, rp, table.mask(), buckets);
        for (i, t) in rp.iter().enumerate() {
            if let Some(&ahead) = buckets.get(i + dist) {
                table.prefetch_bucket(ahead);
            }
            table.insert_at(buckets[i], t.key, t.ts);
        }
        timer.switch_to(Phase::Probe);
        tuple_buckets_into(kernel, sp, table.mask(), buckets);
        for (i, t) in sp.iter().enumerate() {
            if let Some(&ahead) = buckets.get(i + dist) {
                table.prefetch_bucket(ahead);
            }
            let now = emit.now();
            table.probe_at(buckets[i], t.key, |r_ts| {
                out.sink.push(t.key, r_ts, t.ts, now)
            });
        }
    } else {
        for t in rp {
            table.insert(t.key, t.ts);
        }
        timer.switch_to(Phase::Probe);
        for t in sp {
            let now = emit.now();
            table.probe(t.key, |r_ts| out.sink.push(t.key, r_ts, t.ts, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::nested_loop_join;
    use iawj_common::{KernelBackend, Rng, Window};

    fn random_stream(n: usize, keys: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % keys, (i % 64) as u32))
            .collect()
    }

    fn canonical(outs: &[WorkerOut]) -> Vec<(u32, u32, u32)> {
        let mut got: Vec<_> = outs
            .iter()
            .flat_map(|w| w.sink.samples.iter().map(|m| (m.key, m.r_ts, m.s_ts)))
            .collect();
        got.sort_unstable();
        got
    }

    #[test]
    fn matches_reference_single_pass() {
        let r = random_stream(800, 256, 1);
        let s = random_stream(600, 256, 2);
        let mut cfg = RunConfig::with_threads(4).record_all();
        cfg.prj.radix_bits = 6; // single pass
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn matches_reference_two_pass() {
        let r = random_stream(3000, 1 << 12, 3);
        let s = random_stream(3000, 1 << 12, 4);
        let mut cfg = RunConfig::with_threads(3).record_all();
        cfg.prj.radix_bits = 10;
        cfg.prj.max_bits_per_pass = 6; // force a refinement pass
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    #[test]
    fn skewed_keys_still_correct() {
        // Everything in one partition: exercises the empty-partition skips.
        let r: Vec<Tuple> = (0..200).map(|i| Tuple::new(1024, i % 64)).collect();
        let s: Vec<Tuple> = (0..100).map(|i| Tuple::new(1024, i % 64)).collect();
        let cfg = RunConfig::with_threads(4).record_all();
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let total: u64 = outs.iter().map(|w| w.sink.count()).sum();
        assert_eq!(total, 200 * 100);
    }

    #[test]
    fn swwc_scatter_ablation_is_correct() {
        let r = random_stream(2000, 1 << 10, 9);
        let s = random_stream(2000, 1 << 10, 10);
        let cfg = RunConfig::with_threads(4)
            .record_all()
            .scatter(ScatterMode::Swwc);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            canonical(&outs),
            nested_loop_join(&r, &s, Window::of_len(64))
        );
    }

    /// The scatter knob is an implementation ablation: both modes must
    /// produce the identical match set under both schedulers and both pass
    /// shapes.
    #[test]
    fn scatter_modes_agree_across_schedulers() {
        use iawj_exec::Scheduler;
        let r = random_stream(2500, 1 << 10, 31);
        let s = random_stream(2500, 1 << 10, 32);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for sched in Scheduler::ALL {
            for mode in ScatterMode::ALL {
                for (bits, per_pass) in [(6u32, 8u32), (10, 6)] {
                    let mut cfg = RunConfig::with_threads(4)
                        .record_all()
                        .scheduler(sched)
                        .morsel_size(128)
                        .scatter(mode);
                    cfg.prj.radix_bits = bits;
                    cfg.prj.max_bits_per_pass = per_pass;
                    let clock = EventClock::ungated();
                    let outs = run(&r, &s, &cfg, &clock, 0);
                    assert_eq!(
                        canonical(&outs),
                        expect,
                        "scheduler={sched} scatter={mode} bits={bits}"
                    );
                }
            }
        }
    }

    /// SWWC drains are journaled: one `swwc:flush` mark per scatter slot —
    /// a chunk per worker per side in static mode, a grid cell per side in
    /// steal mode.
    #[test]
    fn swwc_drains_are_journaled() {
        use iawj_exec::Scheduler;
        let r = random_stream(1000, 128, 23);
        let s = random_stream(1000, 128, 24);
        let count_flush_marks = |outs: &[WorkerOut]| -> usize {
            outs.iter()
                .filter_map(|w| w.journal.as_ref())
                .map(|j| j.count_marks(MARK_FLUSH))
                .sum()
        };
        let mut cfg = RunConfig::with_threads(4)
            .record_all()
            .scatter(ScatterMode::Swwc)
            .with_journal();
        cfg.prj.radix_bits = 6;
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        assert_eq!(
            count_flush_marks(&outs),
            4 * 2,
            "one drain per worker per side"
        );

        let mut cfg = RunConfig::with_threads(4)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(100)
            .scatter(ScatterMode::Swwc)
            .with_journal();
        cfg.prj.radix_bits = 6;
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        // 10 grid cells per side, each drained exactly once.
        assert_eq!(count_flush_marks(&outs), 10 + 10);
    }

    #[test]
    fn kernel_backends_agree_bitwise() {
        use iawj_exec::Scheduler;
        let r = random_stream(2500, 1 << 10, 71);
        let s = random_stream(2500, 1 << 10, 72);
        for scheduler in [Scheduler::Static, Scheduler::Steal] {
            for (bits, per_pass) in [(6u32, 8u32), (10, 6)] {
                let collect = |backend: KernelBackend| {
                    let mut cfg = RunConfig::with_threads(4)
                        .record_all()
                        .scheduler(scheduler)
                        .morsel_size(128)
                        .kernel(backend)
                        .prefetch_dist(4);
                    cfg.prj.radix_bits = bits;
                    cfg.prj.max_bits_per_pass = per_pass;
                    let clock = EventClock::ungated();
                    canonical(&run(&r, &s, &cfg, &clock, 0))
                };
                assert_eq!(
                    collect(KernelBackend::Scalar),
                    collect(KernelBackend::Simd),
                    "scheduler {scheduler:?} bits={bits}"
                );
            }
        }
    }

    #[test]
    fn steal_scheduler_matches_reference_both_pass_shapes() {
        use iawj_exec::Scheduler;
        let r = random_stream(2500, 1 << 10, 21);
        let s = random_stream(2500, 1 << 10, 22);
        let expect = nested_loop_join(&r, &s, Window::of_len(64));
        for (bits, per_pass) in [(6, 8), (10, 6)] {
            let mut cfg = RunConfig::with_threads(4)
                .record_all()
                .scheduler(Scheduler::Steal)
                .morsel_size(128);
            cfg.prj.radix_bits = bits;
            cfg.prj.max_bits_per_pass = per_pass;
            let clock = EventClock::ungated();
            let outs = run(&r, &s, &cfg, &clock, 0);
            assert_eq!(canonical(&outs), expect, "bits={bits}");
        }
    }

    #[test]
    fn steal_scheduler_journals_grid_claims() {
        use iawj_exec::morsel::{MARK_CLAIM, MARK_STEAL};
        use iawj_exec::Scheduler;
        let r = random_stream(1000, 128, 23);
        let s = random_stream(1000, 128, 24);
        let mut cfg = RunConfig::with_threads(4)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(100)
            .with_journal();
        cfg.prj.radix_bits = 6;
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let marks: usize = outs
            .iter()
            .filter_map(|w| w.journal.as_ref())
            .map(|j| j.count_marks(MARK_CLAIM) + j.count_marks(MARK_STEAL))
            .sum();
        // 10 histogram cells + 10 scatter cells per side, plus 64 join
        // partitions: every unit of claimable work shows up in the journal.
        assert_eq!(marks, 10 + 10 + 10 + 10 + 64);
    }

    #[test]
    fn partition_phase_is_timed() {
        let r = random_stream(5000, 512, 5);
        let s = random_stream(5000, 512, 6);
        let cfg = RunConfig::with_threads(2);
        let clock = EventClock::ungated();
        let outs = run(&r, &s, &cfg, &clock, 0);
        let part: u64 = outs.iter().map(|w| w.breakdown[Phase::Partition]).sum();
        assert!(part > 0);
    }
}
