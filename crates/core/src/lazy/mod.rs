//! The lazy (relational) join algorithms (§3.1).
//!
//! All four buffer the window's full input — i.e. wait until the last tuple
//! of the window has arrived — and then run a parallel relational join over
//! the complete tuple sets.
//!
//! Shared scaffolding lives here: `Slots` for barrier-separated data
//! exchange between workers, [`EmitClock`] for cheap per-match emission
//! timestamps, and `steal_scan`, the journal-instrumented morsel driver the
//! lazy engines use in steal mode.

pub mod mpass;
pub mod mway;
pub mod npj;
pub mod prj;

use crate::clock::EventClock;
use iawj_exec::morsel::{for_each_morsel, MorselQueue, MorselStats, MARK_CLAIM, MARK_STEAL};
use iawj_exec::PhaseTimer;
use std::sync::OnceLock;

/// Drive worker `tid` over a [`MorselQueue`], emitting a `morsel:claim`
/// journal mark per owned morsel and a `morsel:steal` mark per stolen one,
/// then applying `f` to the claimed index range. The marks are what make
/// Fig. 10-style scheduler comparisons inspectable in the exported trace.
pub(crate) fn steal_scan(
    q: &MorselQueue,
    tid: usize,
    timer: &mut PhaseTimer,
    mut f: impl FnMut(std::ops::Range<usize>),
) -> MorselStats {
    for_each_morsel(q, tid, |range, stolen| {
        timer.instant(if stolen { MARK_STEAL } else { MARK_CLAIM });
        f(range);
    })
}

/// One-shot exchange slots between workers: each slot is written exactly
/// once (by one worker) and read by others strictly after a barrier.
pub(crate) struct Slots<T>(Vec<OnceLock<T>>);

impl<T> Slots<T> {
    pub(crate) fn new(n: usize) -> Self {
        Slots((0..n).map(|_| OnceLock::new()).collect())
    }

    /// Publish slot `i`. Panics if published twice — that would be an
    /// algorithm bug.
    pub(crate) fn set(&self, i: usize, value: T) {
        if self.0[i].set(value).is_err() {
            panic!("slot {i} published twice");
        }
    }

    /// Read slot `i`; must only be called after the publishing barrier.
    pub(crate) fn get(&self, i: usize) -> &T {
        self.0[i]
            .get()
            .expect("slot read before the publishing barrier")
    }

    /// Number of slots.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.0.len()
    }
}

/// Caches the stream clock and refreshes it every few reads: a per-match
/// `Instant::now()` would cost as much as the probe itself, and sub-batch
/// emission-time granularity is far below a millisecond anyway. Public
/// because custom [`crate::eager::Engine`] implementations receive one.
pub struct EmitClock<'a> {
    clock: &'a EventClock,
    cached: f64,
    countdown: u32,
}

const EMIT_REFRESH: u32 = 32;

impl<'a> EmitClock<'a> {
    /// A fresh emit clock reading `clock`.
    pub fn new(clock: &'a EventClock) -> Self {
        EmitClock {
            clock,
            cached: clock.now_ms(),
            countdown: EMIT_REFRESH,
        }
    }

    /// Current stream time, refreshed every `EMIT_REFRESH` calls.
    #[inline]
    pub fn now(&mut self) -> f64 {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = EMIT_REFRESH;
            self.cached = self.clock.now_ms();
        }
        self.cached
    }

    /// Force a refresh (phase boundaries).
    #[inline]
    pub fn refresh(&mut self) -> f64 {
        self.cached = self.clock.now_ms();
        self.countdown = EMIT_REFRESH;
        self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_exec::run_workers;

    #[test]
    fn slots_cross_thread_exchange() {
        let slots = Slots::new(4);
        let bar = std::sync::Barrier::new(4);
        let sums = run_workers(4, |tid| {
            slots.set(tid, tid * 100);
            bar.wait();
            (0..slots.len()).map(|i| *slots.get(i)).sum::<usize>()
        });
        assert_eq!(sums, vec![600; 4]);
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let slots = Slots::new(1);
        slots.set(0, 1);
        slots.set(0, 2);
    }

    #[test]
    fn emit_clock_advances() {
        let clock = EventClock::ungated();
        let mut ec = EmitClock::new(&clock);
        let first = ec.now();
        std::thread::sleep(std::time::Duration::from_millis(3));
        // After enough reads the cache refreshes and time moves forward.
        let mut last = first;
        for _ in 0..100 {
            last = ec.now();
        }
        assert!(last > first);
        assert!(ec.refresh() >= last);
    }
}
