//! Cache-simulated execution profiles — the substitute for the paper's
//! Intel PCM / perf hardware counters (Figure 8, Table 5, Figure 19a,
//! Table 6's bandwidth column).
//!
//! Real hardware counters are not portable, so this module *replays the
//! memory-access pattern* of each algorithm against the [`iawj_cachesim`]
//! hierarchy: the same data, the same data-structure layouts (bucket-chain
//! tables, radix partitions, sorted runs), the same per-worker stream
//! interleavings (obtained from the real distribution views) — with every
//! load/store mirrored into a simulated Xeon Gold 6126 cache instead of
//! executed for speed. Thread interleaving is serialised (cores are
//! simulated one at a time over a shared L3), which preserves per-core
//! locality and shared-level footprints but not cycle-level contention.
//!
//! What the paper reads off its counters is *which algorithm/phase misses
//! more, at which level, by what rough factor* — those are properties of
//! the trace and the cache geometry, which this module models exactly.
//! SHJ's interleaved insert/probe accesses are attributed to the Probe
//! phase as one unit (they are inseparable per tuple), matching how
//! Figure 8 reports probe-phase misses.

use crate::algo::Algorithm;
use crate::clock::EventClock;
use crate::config::RunConfig;
use crate::distribute::{jb, jm, Take};
use iawj_cachesim::{CoreCaches, CostModel, Counters, CycleEstimate, Hierarchy};
use iawj_common::hash::{bucket_of, next_pow2_at_least};
use iawj_common::{Phase, Tuple};
use iawj_datagen::Dataset;
use iawj_exec::pool::chunk_range;
use iawj_exec::radix::partition_of;

/// Per-tuple out-of-order-engine overhead charged to eager algorithms'
/// "core bound" bucket: the frequent function calls of pulling tuples from
/// both input streams (§5.6). Lazy algorithms process dense arrays and get
/// a small fraction of it.
const EAGER_DISPATCH_CYCLES: f64 = 22.0;
const LAZY_DISPATCH_CYCLES: f64 = 2.0;
/// Extra per-tuple shuffle cost of the JB scheme's status maintenance
/// (§5.6: "the JB scheme leads to a higher Core Bound than JM").
const JB_SHUFFLE_CYCLES: f64 = 9.0;

/// The simulated profile of one run.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// Which algorithm was profiled.
    pub algorithm: Algorithm,
    /// Counter deltas per phase, in execution order.
    pub per_phase: Vec<(Phase, Counters)>,
    /// Per-tuple core-bound dispatch overhead model, in cycles.
    pub dispatch_cycles_per_tuple: f64,
    /// Total input tuples the profile covers.
    pub tuples: usize,
}

impl TraceProfile {
    /// Summed counters over all phases.
    pub fn total(&self) -> Counters {
        self.per_phase
            .iter()
            .fold(Counters::default(), |acc, (_, c)| acc.merged(c))
    }

    /// Counters for one phase (zero if the phase never ran).
    pub fn phase(&self, phase: Phase) -> Counters {
        self.per_phase
            .iter()
            .filter(|(p, _)| *p == phase)
            .fold(Counters::default(), |acc, (_, c)| acc.merged(c))
    }

    /// Top-down-style cycle estimate (Figure 19a).
    pub fn estimate(&self, model: &CostModel) -> CycleEstimate {
        model.estimate(
            &self.total(),
            self.dispatch_cycles_per_tuple * self.tuples as f64,
        )
    }

    /// A Table 5-style row: misses per input tuple.
    pub fn per_tuple(&self) -> PerTupleCounters {
        let t = self.tuples.max(1) as f64;
        let c = self.total();
        PerTupleCounters {
            dtlb: c.dtlb_misses as f64 / t,
            l1d: c.l1d_misses as f64 / t,
            l2: c.l2_misses as f64 / t,
            l3: c.l3_misses as f64 / t,
        }
    }
}

/// Misses per input tuple (the Table 5 units).
#[derive(Clone, Copy, Debug)]
pub struct PerTupleCounters {
    /// dTLB misses / tuple.
    pub dtlb: f64,
    /// L1D misses / tuple.
    pub l1d: f64,
    /// L2 misses / tuple.
    pub l2: f64,
    /// L3 misses / tuple.
    pub l3: f64,
}

// ---------------------------------------------------------------------------
// Virtual memory layout & structure models
// ---------------------------------------------------------------------------

/// Bump allocator for non-overlapping virtual regions, page-aligned with a
/// guard page so distinct structures never share a line.
struct Layout {
    next: u64,
}

impl Layout {
    fn new() -> Self {
        Layout { next: 1 << 32 }
    }

    fn region(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        self.next += (bytes + 4095) & !4095;
        self.next += 4096; // guard page
        base
    }
}

const TUPLE_BYTES: u64 = 8;
const BUCKET_HDR_BYTES: u64 = 16;
const ENTRY_BYTES: u64 = 12;

/// Model of a bucket-chain hash table: tracks which simulated entry indices
/// live in each bucket so probes touch exactly the lines a real probe would.
struct SimTable {
    bucket_base: u64,
    entry_base: u64,
    mask: u64,
    buckets: Vec<Vec<u32>>,
    entries: u32,
}

impl SimTable {
    fn new(expected: usize, layout: &mut Layout) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        SimTable {
            bucket_base: layout.region(n as u64 * BUCKET_HDR_BYTES),
            entry_base: layout.region((expected.max(16) as u64 + 1) * ENTRY_BYTES * 2),
            mask: n as u64 - 1,
            buckets: vec![Vec::new(); n],
            entries: 0,
        }
    }

    fn insert(&mut self, key: u32, core: &mut CoreCaches) {
        let b = bucket_of(key, self.mask);
        core.access_line(self.bucket_base + b as u64 * BUCKET_HDR_BYTES);
        let e = self.entries;
        self.entries += 1;
        core.access_range(self.entry_base + e as u64 * ENTRY_BYTES, ENTRY_BYTES);
        self.buckets[b].push(e);
    }

    fn probe(&self, key: u32, core: &mut CoreCaches) {
        let b = bucket_of(key, self.mask);
        core.access_line(self.bucket_base + b as u64 * BUCKET_HDR_BYTES);
        for &e in &self.buckets[b] {
            core.access_range(self.entry_base + e as u64 * ENTRY_BYTES, ENTRY_BYTES);
        }
    }
}

/// Model a bottom-up mergesort over `n` tuples at `base` with scratch at
/// `scratch`: one block pass plus ⌈log2(n/8)⌉ merge passes, each streaming
/// the array once in and once out.
fn sim_sort(core: &mut CoreCaches, base: u64, scratch: u64, n: usize) {
    if n == 0 {
        return;
    }
    for i in 0..n {
        core.access_range(base + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
    }
    let mut width = 8usize;
    let mut src = base;
    let mut dst = scratch;
    while width < n {
        for i in 0..n {
            core.access_range(src + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
            core.access_range(dst + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
}

/// Records the counter delta of one phase.
struct PhaseRecorder {
    acc: Vec<(Phase, Counters)>,
}

impl PhaseRecorder {
    fn new() -> Self {
        PhaseRecorder { acc: Vec::new() }
    }

    fn record<F: FnOnce(&mut Hierarchy)>(&mut self, hw: &mut Hierarchy, phase: Phase, f: F) {
        let before = hw.total();
        f(hw);
        let delta = hw.total().since(&before);
        self.acc.push((phase, delta));
    }
}

// ---------------------------------------------------------------------------
// Per-algorithm replays
// ---------------------------------------------------------------------------

/// Replay an algorithm's memory behaviour over a dataset on `cfg.threads`
/// simulated cores sharing one L3. Use a *scaled-down* dataset: the replay
/// walks every access of the dominant structures.
pub fn profile(algorithm: Algorithm, ds: &Dataset, cfg: &RunConfig) -> TraceProfile {
    profile_with(algorithm, ds, cfg, false)
}

/// [`profile`] with an optional next-line stream prefetcher on every
/// simulated core — the hardware-masking ablation (real Xeons prefetch;
/// the default simulation does not, which is part of why absolute miss
/// counts exceed the paper's).
pub fn profile_with(
    algorithm: Algorithm,
    ds: &Dataset,
    cfg: &RunConfig,
    prefetch: bool,
) -> TraceProfile {
    let threads = cfg.threads;
    let mut hw = Hierarchy::new(threads);
    if prefetch {
        for core in &mut hw.cores {
            core.enable_prefetch();
        }
    }
    let mut layout = Layout::new();
    let r_base = layout.region(ds.r.len() as u64 * TUPLE_BYTES);
    let s_base = layout.region(ds.s.len() as u64 * TUPLE_BYTES);
    let mut rec = PhaseRecorder::new();
    let tuples = ds.total_inputs();

    let dispatch = match algorithm {
        a if a.is_lazy() => LAZY_DISPATCH_CYCLES,
        Algorithm::ShjJb | Algorithm::PmjJb => EAGER_DISPATCH_CYCLES + JB_SHUFFLE_CYCLES,
        _ => EAGER_DISPATCH_CYCLES,
    };

    match algorithm {
        Algorithm::Npj => {
            let mut table = SimTable::new(ds.r.len(), &mut layout);
            rec.record(&mut hw, Phase::BuildSort, |hw| {
                for tid in 0..threads {
                    let range = chunk_range(ds.r.len(), threads, tid);
                    for (i, t) in ds.r[range.clone()].iter().enumerate() {
                        let core = &mut hw.cores[tid];
                        core.access_range(
                            r_base + (range.start + i) as u64 * TUPLE_BYTES,
                            TUPLE_BYTES,
                        );
                        table.insert(t.key, core);
                    }
                }
            });
            rec.record(&mut hw, Phase::Probe, |hw| {
                for tid in 0..threads {
                    let range = chunk_range(ds.s.len(), threads, tid);
                    for (i, t) in ds.s[range.clone()].iter().enumerate() {
                        let core = &mut hw.cores[tid];
                        core.access_range(
                            s_base + (range.start + i) as u64 * TUPLE_BYTES,
                            TUPLE_BYTES,
                        );
                        table.probe(t.key, core);
                    }
                }
            });
        }
        Algorithm::Prj => {
            let bits = cfg.prj.radix_bits.min(cfg.prj.max_bits_per_pass).max(1);
            let fanout = 1usize << bits;
            let r_out =
                layout.region(ds.r.len() as u64 * TUPLE_BYTES + fanout as u64 * TUPLE_BYTES);
            let s_out =
                layout.region(ds.s.len() as u64 * TUPLE_BYTES + fanout as u64 * TUPLE_BYTES);
            rec.record(&mut hw, Phase::Partition, |hw| {
                for (input, base, out) in [(&ds.r, r_base, r_out), (&ds.s, s_base, s_out)] {
                    let mut cursors = vec![0u64; fanout];
                    let region = input.len() as u64 * TUPLE_BYTES / fanout as u64 + TUPLE_BYTES;
                    for tid in 0..threads {
                        let range = chunk_range(input.len(), threads, tid);
                        for (i, t) in input[range.clone()].iter().enumerate() {
                            let core = &mut hw.cores[tid];
                            core.access_range(
                                base + (range.start + i) as u64 * TUPLE_BYTES,
                                TUPLE_BYTES,
                            );
                            let p = partition_of(t.key, 0, bits);
                            core.access_range(out + p as u64 * region + cursors[p], TUPLE_BYTES);
                            cursors[p] += TUPLE_BYTES;
                        }
                    }
                }
            });
            // Join partitions: cache-resident build + probe per partition,
            // claimed round-robin by cores.
            let mut r_parts: Vec<Vec<Tuple>> = vec![Vec::new(); fanout];
            let mut s_parts: Vec<Vec<Tuple>> = vec![Vec::new(); fanout];
            for t in &ds.r {
                r_parts[partition_of(t.key, 0, bits)].push(*t);
            }
            for t in &ds.s {
                s_parts[partition_of(t.key, 0, bits)].push(*t);
            }
            let layout_ref = &mut layout;
            let mut tables: Vec<SimTable> = Vec::with_capacity(fanout);
            rec.record(&mut hw, Phase::BuildSort, |hw| {
                for (p, rp) in r_parts.iter().enumerate() {
                    let core = &mut hw.cores[p % threads];
                    let mut table = SimTable::new(rp.len().max(1), layout_ref);
                    for t in rp {
                        table.insert(t.key, core);
                    }
                    tables.push(table);
                }
            });
            rec.record(&mut hw, Phase::Probe, |hw| {
                for (p, sp) in s_parts.iter().enumerate() {
                    let core = &mut hw.cores[p % threads];
                    for t in sp {
                        tables[p].probe(t.key, core);
                    }
                }
            });
        }
        Algorithm::MWay | Algorithm::MPass => {
            let r_scratch = layout.region(ds.r.len() as u64 * TUPLE_BYTES);
            let s_scratch = layout.region(ds.s.len() as u64 * TUPLE_BYTES);
            rec.record(&mut hw, Phase::BuildSort, |hw| {
                for tid in 0..threads {
                    let rr = chunk_range(ds.r.len(), threads, tid);
                    sim_sort(
                        &mut hw.cores[tid],
                        r_base + rr.start as u64 * TUPLE_BYTES,
                        r_scratch + rr.start as u64 * TUPLE_BYTES,
                        rr.len(),
                    );
                    let sr = chunk_range(ds.s.len(), threads, tid);
                    sim_sort(
                        &mut hw.cores[tid],
                        s_base + sr.start as u64 * TUPLE_BYTES,
                        s_scratch + sr.start as u64 * TUPLE_BYTES,
                        sr.len(),
                    );
                }
            });
            // Merge: MWay streams all runs once (k-way); MPass repeats a
            // full pass log2(threads) times (successive two-way merging).
            let r_merged = layout.region(ds.r.len() as u64 * TUPLE_BYTES);
            let s_merged = layout.region(ds.s.len() as u64 * TUPLE_BYTES);
            let passes = if algorithm == Algorithm::MWay {
                1
            } else {
                ((threads as f64).log2().ceil() as usize).max(1)
            };
            rec.record(&mut hw, Phase::Merge, |hw| {
                for _pass in 0..passes {
                    for tid in 0..threads {
                        let core = &mut hw.cores[tid];
                        for i in chunk_range(ds.r.len(), threads, tid) {
                            core.access_range(r_base + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                            core.access_range(r_merged + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        }
                        for i in chunk_range(ds.s.len(), threads, tid) {
                            core.access_range(s_base + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                            core.access_range(s_merged + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        }
                    }
                }
            });
            // Match: sequential co-scan of the merged arrays; duplicate
            // groups re-read lines that stay cached — the sort-based
            // advantage on high-duplication inputs emerges here.
            rec.record(&mut hw, Phase::Probe, |hw| {
                for tid in 0..threads {
                    let core = &mut hw.cores[tid];
                    for i in chunk_range(ds.r.len(), threads, tid) {
                        core.access_range(r_merged + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                    }
                    for i in chunk_range(ds.s.len(), threads, tid) {
                        core.access_range(s_merged + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                    }
                }
            });
        }
        Algorithm::ShjJm
        | Algorithm::ShjJb
        | Algorithm::PmjJm
        | Algorithm::PmjJb
        | Algorithm::HybridShj
        | Algorithm::Ibwj
        | Algorithm::IbwjPart => {
            // The hybrid extension's eager half shares SHJ^JM's access
            // pattern; its bulk tail is a minority of the trace. The index
            // engines are symmetric insert-then-probe too — their eviction
            // sweeps are amortised to window-close cadence and below the
            // trace's resolution.
            profile_eager(
                algorithm,
                ds,
                cfg,
                &mut hw,
                &mut layout,
                &mut rec,
                r_base,
                s_base,
            );
        }
        Algorithm::Handshake => {
            let layout_ref = &mut layout;
            let mut stores: Vec<(SimTable, SimTable)> = (0..threads)
                .map(|_| {
                    (
                        SimTable::new(ds.r.len() / threads + 1, layout_ref),
                        SimTable::new(ds.s.len() / threads + 1, layout_ref),
                    )
                })
                .collect();
            rec.record(&mut hw, Phase::Probe, |hw| {
                for (seq, t) in ds.r.iter().chain(ds.s.iter()).enumerate() {
                    let is_r = seq < ds.r.len();
                    for (core_id, (rs, ss)) in stores.iter_mut().enumerate() {
                        let core = &mut hw.cores[core_id];
                        if is_r {
                            ss.probe(t.key, core);
                        } else {
                            rs.probe(t.key, core);
                        }
                        if seq % threads == core_id {
                            if is_r {
                                rs.insert(t.key, core);
                            } else {
                                ss.insert(t.key, core);
                            }
                        }
                    }
                }
            });
        }
    }

    TraceProfile {
        algorithm,
        per_phase: rec.acc,
        dispatch_cycles_per_tuple: dispatch,
        tuples,
    }
}

/// Eager replays: per worker, pull the tuple sequences through the *real*
/// distribution views (ungated), then mirror the SHJ/PMJ structure
/// accesses.
#[allow(clippy::too_many_arguments)]
fn profile_eager(
    algorithm: Algorithm,
    ds: &Dataset,
    cfg: &RunConfig,
    hw: &mut Hierarchy,
    layout: &mut Layout,
    rec: &mut PhaseRecorder,
    r_base: u64,
    s_base: u64,
) {
    let threads = cfg.threads;
    let clock = EventClock::ungated();
    let is_jb = matches!(algorithm, Algorithm::ShjJb | Algorithm::PmjJb);
    let is_pmj = matches!(algorithm, Algorithm::PmjJm | Algorithm::PmjJb);
    let (rows, cols) = cfg.jm_shape();
    let g = cfg.jb_group_size();

    // Dispatch phase: the views themselves model routing. JB scans every
    // class tuple (and logs dispatch status); JM touches only its stripe.
    let mut worker_seqs: Vec<(Vec<Tuple>, Vec<Tuple>)> = Vec::with_capacity(threads);
    {
        let layout_ref = &mut *layout;
        rec.record(hw, Phase::Partition, |hw| {
            for w in 0..threads {
                let (mut rv, mut sv) = if is_jb {
                    jb::worker_views(&ds.r, &ds.s, threads, g, w)
                } else {
                    jm::worker_views(&ds.r, &ds.s, rows, cols, w)
                };
                let core = &mut hw.cores[w];
                let scan_r = if is_jb {
                    ds.r.len()
                } else {
                    ds.r.len() / rows + 1
                };
                let scan_s = if is_jb {
                    ds.s.len()
                } else {
                    ds.s.len() / cols + 1
                };
                for i in 0..scan_r {
                    core.access_range(r_base + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                }
                for i in 0..scan_s {
                    core.access_range(s_base + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                }
                let mut r_seq = Vec::new();
                let mut s_seq = Vec::new();
                while !matches!(rv.take_batch(&clock, 512, &mut r_seq), Take::Exhausted) {}
                while !matches!(sv.take_batch(&clock, 512, &mut s_seq), Take::Exhausted) {}
                if is_jb {
                    let log_base = layout_ref.region(r_seq.len() as u64 * 4 + 64);
                    for i in 0..r_seq.len() {
                        core.access_range(log_base + i as u64 * 4, 4);
                    }
                }
                worker_seqs.push((r_seq, s_seq));
            }
        });
    }

    if !is_pmj {
        // SHJ: interleaved insert+probe over two per-worker tables. The
        // insert and probe of a tuple are inseparable, so the whole
        // interleaved loop is attributed to Probe (see module docs).
        let layout_ref = &mut *layout;
        let mut tables: Vec<(SimTable, SimTable)> = worker_seqs
            .iter()
            .map(|(r, s)| {
                (
                    SimTable::new(r.len().max(1), layout_ref),
                    SimTable::new(s.len().max(1), layout_ref),
                )
            })
            .collect();
        rec.record(hw, Phase::Probe, |hw| {
            for (w, (r_seq, s_seq)) in worker_seqs.iter().enumerate() {
                let core = &mut hw.cores[w];
                let (rt, st) = &mut tables[w];
                let (mut i, mut j) = (0usize, 0usize);
                while i < r_seq.len() || j < s_seq.len() {
                    let take_r =
                        j >= s_seq.len() || (i < r_seq.len() && r_seq[i].ts <= s_seq[j].ts);
                    if take_r {
                        rt.insert(r_seq[i].key, core);
                        st.probe(r_seq[i].key, core);
                        i += 1;
                    } else {
                        st.insert(s_seq[j].key, core);
                        rt.probe(s_seq[j].key, core);
                        j += 1;
                    }
                }
            }
        });
    } else {
        // PMJ: δ-sized run sorts + pair scans, then a global merge and a
        // cross scan. Pre-allocate per-worker run/merge regions.
        let regions: Vec<[u64; 4]> = worker_seqs
            .iter()
            .map(|(r, s)| {
                [
                    layout.region(r.len().max(1) as u64 * TUPLE_BYTES),
                    layout.region(s.len().max(1) as u64 * TUPLE_BYTES),
                    layout.region(r.len().max(1) as u64 * TUPLE_BYTES),
                    layout.region(s.len().max(1) as u64 * TUPLE_BYTES),
                ]
            })
            .collect();
        rec.record(hw, Phase::BuildSort, |hw| {
            for (w, (r_seq, s_seq)) in worker_seqs.iter().enumerate() {
                let core = &mut hw.cores[w];
                let expected = r_seq.len().max(s_seq.len()).max(1);
                let run = ((expected as f64 * cfg.pmj.delta).ceil() as usize).max(16);
                for (seq, base, scratch) in [
                    (r_seq, r_base, regions[w][0]),
                    (s_seq, s_base, regions[w][1]),
                ] {
                    let mut off = 0usize;
                    while off < seq.len() {
                        let n = run.min(seq.len() - off);
                        sim_sort(
                            core,
                            base + off as u64 * TUPLE_BYTES,
                            scratch + off as u64 * TUPLE_BYTES,
                            n,
                        );
                        off += n;
                    }
                }
            }
        });
        rec.record(hw, Phase::Merge, |hw| {
            for (w, (r_seq, s_seq)) in worker_seqs.iter().enumerate() {
                let core = &mut hw.cores[w];
                for (seq, runs, merged) in [
                    (r_seq, regions[w][0], regions[w][2]),
                    (s_seq, regions[w][1], regions[w][3]),
                ] {
                    for i in 0..seq.len() {
                        core.access_range(runs + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                        core.access_range(merged + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                    }
                }
            }
        });
        rec.record(hw, Phase::Probe, |hw| {
            for (w, (r_seq, s_seq)) in worker_seqs.iter().enumerate() {
                let core = &mut hw.cores[w];
                for (seq, merged) in [(r_seq, regions[w][2]), (s_seq, regions[w][3])] {
                    for i in 0..seq.len() {
                        core.access_range(merged + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_datagen::MicroSpec;

    fn tiny_ds(dupe: usize) -> Dataset {
        MicroSpec::static_counts(4000, 4000)
            .dupe(dupe)
            .seed(7)
            .generate()
    }

    fn cfg() -> RunConfig {
        RunConfig::with_threads(4)
    }

    #[test]
    fn all_algorithms_produce_profiles() {
        let ds = tiny_ds(4);
        for algo in Algorithm::STUDIED {
            let p = profile(algo, &ds, &cfg());
            let t = p.total();
            assert!(t.accesses > 0, "{algo} produced no accesses");
            assert!(!p.per_phase.is_empty());
            assert_eq!(p.tuples, 8000);
        }
        let hs = profile(Algorithm::Handshake, &ds, &cfg());
        assert!(hs.total().accesses > 0);
    }

    #[test]
    fn eager_hash_misses_exceed_lazy_sort() {
        // The §5.3.1 headline: eager hash algorithms take far more cache
        // misses than the sort-based lazy ones on duplicate-heavy inputs.
        let ds = MicroSpec::static_counts(50_000, 50_000)
            .dupe(50)
            .seed(3)
            .generate();
        let shj = profile(Algorithm::ShjJm, &ds, &cfg()).per_tuple();
        let mway = profile(Algorithm::MWay, &ds, &cfg()).per_tuple();
        assert!(
            shj.l1d > mway.l1d,
            "SHJ L1D/tuple {} must exceed MWay {}",
            shj.l1d,
            mway.l1d
        );
    }

    #[test]
    fn prj_partitions_reduce_probe_misses_vs_npj() {
        let ds = MicroSpec::static_counts(60_000, 60_000)
            .dupe(2)
            .seed(9)
            .generate();
        let npj = profile(Algorithm::Npj, &ds, &cfg());
        let prj = profile(Algorithm::Prj, &ds, &cfg());
        assert!(
            prj.phase(Phase::Probe).l2_misses < npj.phase(Phase::Probe).l2_misses,
            "PRJ probe L2 misses {} must be below NPJ {}",
            prj.phase(Phase::Probe).l2_misses,
            npj.phase(Phase::Probe).l2_misses
        );
    }

    #[test]
    fn jb_has_partition_overhead_vs_jm() {
        let ds = tiny_ds(8);
        let jm = profile(Algorithm::ShjJm, &ds, &cfg());
        let jb = profile(Algorithm::ShjJb, &ds, &cfg());
        assert!(
            jb.phase(Phase::Partition).accesses > jm.phase(Phase::Partition).accesses,
            "JB status maintenance must show up as partition accesses"
        );
        assert!(jb.dispatch_cycles_per_tuple > jm.dispatch_cycles_per_tuple);
    }

    #[test]
    fn estimates_are_positive_and_sum_to_100pct() {
        let ds = tiny_ds(4);
        let p = profile(Algorithm::PmjJb, &ds, &cfg());
        let e = p.estimate(&CostModel::default());
        let (r, c, m) = e.percentages();
        assert!((r + c + m - 100.0).abs() < 1e-6);
        assert!(c > 0.0, "eager algorithms must show core-bound share");
    }

    #[test]
    fn prefetch_reduces_sort_join_misses() {
        // MWay's sequential passes are exactly what a streamer masks.
        let ds = MicroSpec::static_counts(60_000, 60_000)
            .dupe(4)
            .seed(4)
            .generate();
        let plain = profile_with(Algorithm::MWay, &ds, &cfg(), false);
        let pf = profile_with(Algorithm::MWay, &ds, &cfg(), true);
        assert!(
            pf.total().l2_misses < plain.total().l2_misses,
            "prefetch {} !< plain {}",
            pf.total().l2_misses,
            plain.total().l2_misses
        );
    }

    #[test]
    fn per_tuple_row_is_finite() {
        let ds = tiny_ds(2);
        let row = profile(Algorithm::Npj, &ds, &cfg()).per_tuple();
        for v in [row.dtlb, row.l1d, row.l2, row.l3] {
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
