//! Algorithm identities — the eight studied algorithms of Table 2 plus the
//! handshake-join strawman of §6.

use std::fmt;

/// One of the studied IaWJ algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// No-Partitioning hash Join (lazy, hash, shared table).
    Npj,
    /// Parallel Radix Join (lazy, hash, cache-aware replication).
    Prj,
    /// Multi-Way Sort-Merge Join (lazy, sort, range partitioning).
    MWay,
    /// Multi-Pass Sort-Merge Join (lazy, sort, range partitioning).
    MPass,
    /// Symmetric Hash Join under the Join-Matrix scheme (eager, hash).
    ShjJm,
    /// Symmetric Hash Join under the Join-Biclique scheme (eager, hash).
    ShjJb,
    /// Progressive Merge Join under the Join-Matrix scheme (eager, sort).
    PmjJm,
    /// Progressive Merge Join under the Join-Biclique scheme (eager, sort).
    PmjJb,
    /// Handshake join (§6 validation strawman; not part of the eight).
    Handshake,
    /// Hybrid eager/lazy SHJ under the join-matrix scheme — this repo's
    /// realisation of the paper's §5.2/§7 orchestration direction (an
    /// extension, not part of the eight).
    HybridShj,
    /// Index-Based Window Join — maintains an evictable hash index over
    /// resident window content and probes it per arrival (engines 9+;
    /// the family the paper deliberately excludes).
    Ibwj,
    /// PanJoin-style partitioned adaptive IBWJ: per-partition sub-indexes
    /// with histogram-triggered repartitioning under skew.
    IbwjPart,
}

impl Algorithm {
    /// The eight studied algorithms, in the paper's presentation order.
    pub const STUDIED: [Algorithm; 8] = [
        Algorithm::Npj,
        Algorithm::Prj,
        Algorithm::MWay,
        Algorithm::MPass,
        Algorithm::ShjJm,
        Algorithm::ShjJb,
        Algorithm::PmjJm,
        Algorithm::PmjJb,
    ];

    /// The lazy (relational) algorithms.
    pub const LAZY: [Algorithm; 4] = [
        Algorithm::Npj,
        Algorithm::Prj,
        Algorithm::MWay,
        Algorithm::MPass,
    ];

    /// The eager (stream) algorithms.
    pub const EAGER: [Algorithm; 4] = [
        Algorithm::ShjJm,
        Algorithm::ShjJb,
        Algorithm::PmjJm,
        Algorithm::PmjJb,
    ];

    /// The index-accelerated engines (extensions, not part of the eight).
    pub const INDEX: [Algorithm; 2] = [Algorithm::Ibwj, Algorithm::IbwjPart];

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Npj => "NPJ",
            Algorithm::Prj => "PRJ",
            Algorithm::MWay => "MWAY",
            Algorithm::MPass => "MPASS",
            Algorithm::ShjJm => "SHJ_JM",
            Algorithm::ShjJb => "SHJ_JB",
            Algorithm::PmjJm => "PMJ_JM",
            Algorithm::PmjJb => "PMJ_JB",
            Algorithm::Handshake => "HANDSHAKE",
            Algorithm::HybridShj => "HYBRID_SHJ",
            Algorithm::Ibwj => "IBWJ",
            Algorithm::IbwjPart => "IBWJ_PART",
        }
    }

    /// Index-accelerated engine (maintains a resident window index)?
    pub fn is_index_based(self) -> bool {
        matches!(self, Algorithm::Ibwj | Algorithm::IbwjPart)
    }

    /// Lazy execution approach?
    pub fn is_lazy(self) -> bool {
        matches!(
            self,
            Algorithm::Npj | Algorithm::Prj | Algorithm::MWay | Algorithm::MPass
        )
    }

    /// Eager execution approach (includes the handshake strawman)?
    pub fn is_eager(self) -> bool {
        !self.is_lazy()
    }

    /// Sort-based join method?
    pub fn is_sort_based(self) -> bool {
        matches!(
            self,
            Algorithm::MWay | Algorithm::MPass | Algorithm::PmjJm | Algorithm::PmjJb
        )
    }

    /// Requires a power-of-two thread count (the §5 constraint on
    /// MWay/MPass)?
    pub fn needs_pow2_threads(self) -> bool {
        matches!(self, Algorithm::MWay | Algorithm::MPass)
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table2() {
        assert_eq!(Algorithm::STUDIED.len(), 8);
        for a in Algorithm::LAZY {
            assert!(a.is_lazy());
            assert!(!a.is_eager());
        }
        for a in Algorithm::EAGER {
            assert!(a.is_eager());
        }
        assert!(Algorithm::Handshake.is_eager());
    }

    #[test]
    fn sort_based_split() {
        assert!(!Algorithm::Npj.is_sort_based());
        assert!(!Algorithm::Prj.is_sort_based());
        assert!(Algorithm::MWay.is_sort_based());
        assert!(Algorithm::PmjJb.is_sort_based());
        assert!(!Algorithm::ShjJm.is_sort_based());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Algorithm::STUDIED.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(Algorithm::ShjJm.to_string(), "SHJ_JM");
    }

    #[test]
    fn extensions_classified_as_eager() {
        assert!(Algorithm::HybridShj.is_eager());
        assert!(!Algorithm::HybridShj.is_sort_based());
        assert!(!Algorithm::STUDIED.contains(&Algorithm::HybridShj));
    }

    #[test]
    fn index_engines_classified() {
        for a in Algorithm::INDEX {
            assert!(a.is_index_based());
            assert!(a.is_eager(), "{a} processes per arrival");
            assert!(!a.is_sort_based());
            assert!(!a.needs_pow2_threads());
            assert!(!Algorithm::STUDIED.contains(&a));
        }
        assert!(!Algorithm::ShjJm.is_index_based());
        assert_eq!(Algorithm::Ibwj.to_string(), "IBWJ");
        assert_eq!(Algorithm::IbwjPart.to_string(), "IBWJ_PART");
    }

    #[test]
    fn pow2_constraint() {
        assert!(Algorithm::MWay.needs_pow2_threads());
        assert!(Algorithm::MPass.needs_pow2_threads());
        assert!(!Algorithm::Npj.needs_pow2_threads());
    }
}
