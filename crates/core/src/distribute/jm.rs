//! Join-Matrix worker assignment (Figure 2a).

use super::View;
use iawj_common::Tuple;

/// The views of worker `w` in an `rows × cols` join matrix: R-partition
/// `w / cols` against S-partition `w % cols`.
pub fn worker_views<'a>(
    r: &'a [Tuple],
    s: &'a [Tuple],
    rows: usize,
    cols: usize,
    w: usize,
) -> (View<'a>, View<'a>) {
    assert!(w < rows * cols);
    let i = w / cols;
    let j = w % cols;
    (View::strided(r, i, rows), View::strided(s, j, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::EventClock;
    use crate::distribute::Take;

    #[test]
    fn every_pair_meets_exactly_once() {
        let r: Vec<Tuple> = (0..30).map(|k| Tuple::new(k, 0)).collect();
        let s: Vec<Tuple> = (0..40).map(|k| Tuple::new(k + 100, 0)).collect();
        let clock = EventClock::ungated();
        let (rows, cols) = (2usize, 3usize);
        let mut pair_counts = std::collections::HashMap::new();
        for w in 0..rows * cols {
            let (mut rv, mut sv) = worker_views(&r, &s, rows, cols, w);
            let mut rt = Vec::new();
            let mut st = Vec::new();
            while !matches!(rv.take_batch(&clock, 64, &mut rt), Take::Exhausted) {}
            while !matches!(sv.take_batch(&clock, 64, &mut st), Take::Exhausted) {}
            for a in &rt {
                for b in &st {
                    *pair_counts.entry((a.key, b.key)).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(pair_counts.len(), 30 * 40);
        assert!(pair_counts.values().all(|&c| c == 1));
    }
}
