//! Stream distribution schemes (§3.2.2): how the two input streams are
//! spread over eager workers.
//!
//! Both schemes reduce to a per-worker pair of [`View`]s — gated cursors
//! over the shared input arrays that yield exactly the tuples this worker
//! must process:
//!
//! - **Join-Matrix (JM)**, content-insensitive: workers form an `r × c`
//!   matrix; worker `(i, j)` processes R-partition `i` (round-robin row
//!   striping) against S-partition `j`. Every `(r, s)` pair meets at exactly
//!   one worker; R is effectively replicated `c` times and S `r` times.
//! - **Join-Biclique (JB)**, content-sensitive: workers form `T / g` core
//!   groups of size `g`; a hash router assigns each key class to one group.
//!   Within a group, R tuples are *stored at one member* (round-robin — the
//!   dispatch status the router must maintain, §5.3.3) while S tuples are
//!   replicated to every member. Each member therefore sees a partition of
//!   the class's R and all of its S.

pub mod jb;
pub mod jm;

use crate::clock::EventClock;
use iawj_common::{hash_key, Tuple};

/// Result of pulling a batch from a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Take {
    /// At least one tuple was produced.
    Got(usize),
    /// Nothing available yet — the next tuple has not arrived.
    NotYet,
    /// The stream is fully consumed for this worker.
    Exhausted,
}

/// A gated cursor over one input stream, yielding this worker's tuples in
/// arrival order.
pub struct View<'a> {
    data: &'a [Tuple],
    next: usize,
    kind: ViewKind,
    /// Dispatch-status log (JB): global indices of owned tuples. The paper
    /// measures this bookkeeping as JB's partition overhead.
    pub log: Vec<u32>,
}

enum ViewKind {
    /// Round-robin striding: process indices ≡ `offset` (mod `stride`).
    Strided { offset: usize, stride: usize },
    /// Hash-class filtering with optional round-robin ownership within the
    /// group: process tuples whose class is `group`; when `own_only`, only
    /// those whose within-class sequence number ≡ `member` (mod `g`).
    Class {
        groups: usize,
        group: usize,
        g: usize,
        member: usize,
        own_only: bool,
        seq: usize,
    },
}

impl<'a> View<'a> {
    /// JM-style strided view.
    pub fn strided(data: &'a [Tuple], offset: usize, stride: usize) -> Self {
        assert!(stride > 0 && offset < stride);
        View {
            data,
            next: 0,
            kind: ViewKind::Strided { offset, stride },
            log: Vec::new(),
        }
    }

    /// JB-style class view. `own_only` selects the round-robin-owned subset
    /// (used for R); otherwise every class tuple is yielded (used for S).
    pub fn class(
        data: &'a [Tuple],
        groups: usize,
        group: usize,
        g: usize,
        member: usize,
        own_only: bool,
    ) -> Self {
        assert!(groups > 0 && group < groups && g > 0 && member < g);
        View {
            data,
            next: 0,
            kind: ViewKind::Class {
                groups,
                group,
                g,
                member,
                own_only,
                seq: 0,
            },
            log: Vec::new(),
        }
    }

    /// Has every tuple of the underlying stream been passed?
    pub fn exhausted(&self) -> bool {
        self.next >= self.data.len()
    }

    /// Pull up to `max` available tuples into `out` (appended). Stops at
    /// the first not-yet-arrived tuple: a worker never inspects a tuple the
    /// router has not dispatched yet.
    pub fn take_batch(&mut self, clock: &EventClock, max: usize, out: &mut Vec<Tuple>) -> Take {
        if self.exhausted() {
            return Take::Exhausted;
        }
        let before = out.len();
        match self.kind {
            ViewKind::Strided { offset, stride } => {
                // Jump the cursor to the first index of our stripe.
                if self.next % stride != offset {
                    let base = self.next - self.next % stride;
                    self.next = if base + offset >= self.next {
                        base + offset
                    } else {
                        base + stride + offset
                    };
                }
                while out.len() - before < max && self.next < self.data.len() {
                    let t = self.data[self.next];
                    if !clock.available(t.ts) {
                        break;
                    }
                    out.push(t);
                    self.next += stride;
                }
            }
            ViewKind::Class {
                groups,
                group,
                g,
                member,
                own_only,
                ref mut seq,
            } => {
                while out.len() - before < max && self.next < self.data.len() {
                    let t = self.data[self.next];
                    if !clock.available(t.ts) {
                        break;
                    }
                    if class_of(t.key, groups) == group {
                        if own_only {
                            let owned = *seq % g == member;
                            *seq += 1;
                            if owned {
                                self.log.push(self.next as u32);
                                out.push(t);
                            }
                        } else {
                            out.push(t);
                        }
                    }
                    self.next += 1;
                }
            }
        }
        if out.len() > before {
            Take::Got(out.len() - before)
        } else if self.exhausted() {
            Take::Exhausted
        } else {
            Take::NotYet
        }
    }

    /// Bytes held by the dispatch-status log.
    pub fn log_bytes(&self) -> usize {
        self.log.capacity() * std::mem::size_of::<u32>()
    }
}

/// Hash class of a key for a `groups`-way router.
#[inline]
pub fn class_of(key: u32, groups: usize) -> usize {
    (hash_key(key) % groups as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(n: usize) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(i as u32, 0)).collect()
    }

    fn drain(view: &mut View<'_>, clock: &EventClock) -> Vec<Tuple> {
        let mut out = Vec::new();
        loop {
            match view.take_batch(clock, 8, &mut out) {
                Take::Exhausted => break,
                Take::NotYet => panic!("ungated clock must never stall"),
                Take::Got(_) => {}
            }
        }
        out
    }

    #[test]
    fn strided_views_tile_the_stream() {
        let data = tuples(103);
        let clock = EventClock::ungated();
        let mut all = Vec::new();
        for off in 0..4 {
            let mut v = View::strided(&data, off, 4);
            all.extend(drain(&mut v, &clock));
        }
        assert_eq!(all.len(), 103);
        let mut keys: Vec<u32> = all.iter().map(|t| t.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn class_views_partition_r_within_group() {
        let data = tuples(500);
        let clock = EventClock::ungated();
        let groups = 3;
        let g = 2;
        let mut all = Vec::new();
        for group in 0..groups {
            for member in 0..g {
                let mut v = View::class(&data, groups, group, g, member, true);
                let got = drain(&mut v, &clock);
                // Owned tuples of the right class only.
                assert!(got.iter().all(|t| class_of(t.key, groups) == group));
                assert_eq!(v.log.len(), got.len());
                all.extend(got);
            }
        }
        // Union over all (group, member) covers the stream exactly once.
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn class_view_replicates_s_within_group() {
        let data = tuples(100);
        let clock = EventClock::ungated();
        let groups = 4;
        for group in 0..groups {
            let expect: Vec<u32> = data
                .iter()
                .filter(|t| class_of(t.key, groups) == group)
                .map(|t| t.key)
                .collect();
            for member in 0..2 {
                let mut v = View::class(&data, groups, group, 2, member, false);
                let got: Vec<u32> = drain(&mut v, &clock).iter().map(|t| t.key).collect();
                assert_eq!(got, expect, "every member sees all class tuples");
                assert!(v.log.is_empty(), "replicated side keeps no status log");
            }
        }
    }

    #[test]
    fn gating_stops_at_unavailable() {
        let data: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, i * 1000)).collect();
        let clock = EventClock::start(1.0, true);
        let mut v = View::strided(&data, 0, 1);
        let mut out = Vec::new();
        // Only the ts=0 tuple has arrived.
        match v.take_batch(&clock, 100, &mut out) {
            Take::Got(n) => assert_eq!(n, 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(v.take_batch(&clock, 100, &mut out), Take::NotYet);
        assert!(!v.exhausted());
    }

    #[test]
    fn batch_size_respected() {
        let data = tuples(100);
        let clock = EventClock::ungated();
        let mut v = View::strided(&data, 0, 1);
        let mut out = Vec::new();
        assert_eq!(v.take_batch(&clock, 7, &mut out), Take::Got(7));
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn empty_stream_is_exhausted() {
        let data: Vec<Tuple> = Vec::new();
        let clock = EventClock::ungated();
        let mut v = View::strided(&data, 0, 2);
        let mut out = Vec::new();
        assert_eq!(v.take_batch(&clock, 8, &mut out), Take::Exhausted);
    }
}
