//! Join-Biclique worker assignment (Figure 2b).

use super::View;
use iawj_common::Tuple;

/// The views of worker `w` under JB with group size `g` over `threads`
/// workers: worker `w` is member `w % g` of core group `w / g`. Its R view
/// is the round-robin-owned slice of the group's key class (with dispatch
/// logging); its S view replicates the whole class.
pub fn worker_views<'a>(
    r: &'a [Tuple],
    s: &'a [Tuple],
    threads: usize,
    g: usize,
    w: usize,
) -> (View<'a>, View<'a>) {
    assert!(g > 0 && threads.is_multiple_of(g) && w < threads);
    let groups = threads / g;
    let group = w / g;
    let member = w % g;
    (
        View::class(r, groups, group, g, member, true),
        View::class(s, groups, group, g, member, false),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::EventClock;
    use crate::distribute::Take;

    fn drain(v: &mut View<'_>, clock: &EventClock) -> Vec<Tuple> {
        let mut out = Vec::new();
        while !matches!(v.take_batch(clock, 64, &mut out), Take::Exhausted) {}
        out
    }

    #[test]
    fn every_pair_meets_exactly_once() {
        let r: Vec<Tuple> = (0..50).map(|k| Tuple::new(k % 20, 0)).collect();
        let s: Vec<Tuple> = (0..60).map(|k| Tuple::new(k % 20, 0)).collect();
        let clock = EventClock::ungated();
        let (threads, g) = (6usize, 2usize);
        let mut pair_counts = std::collections::HashMap::new();
        for w in 0..threads {
            let (mut rv, mut sv) = worker_views(&r, &s, threads, g, w);
            let rt = drain(&mut rv, &clock);
            let st = drain(&mut sv, &clock);
            for a in &rt {
                for b in &st {
                    if a.key == b.key {
                        // Identify pairs by position via the dispatch log
                        // and s ordering; keys suffice here because ts=0.
                        *pair_counts.entry((a.key, b.key)).or_insert(0usize) += 1;
                    }
                }
            }
        }
        // Reference: per-key count product.
        let mut expect = std::collections::HashMap::new();
        for a in &r {
            for b in &s {
                if a.key == b.key {
                    *expect.entry((a.key, b.key)).or_insert(0usize) += 1;
                }
            }
        }
        assert_eq!(pair_counts, expect);
    }

    #[test]
    fn g_equal_threads_is_single_group() {
        let r: Vec<Tuple> = (0..40).map(|k| Tuple::new(k, 0)).collect();
        let s: Vec<Tuple> = (0..40).map(|k| Tuple::new(k, 0)).collect();
        let clock = EventClock::ungated();
        let threads = 4;
        // g = threads: R partitioned over all workers, S fully replicated —
        // the JM-degenerate configuration of §5.5.
        let mut r_total = 0;
        for w in 0..threads {
            let (mut rv, mut sv) = worker_views(&r, &s, threads, threads, w);
            let rt = drain(&mut rv, &clock);
            let st = drain(&mut sv, &clock);
            r_total += rt.len();
            assert_eq!(st.len(), 40, "S replicated to every worker");
        }
        assert_eq!(r_total, 40, "R partitioned exactly once");
    }

    #[test]
    fn g_one_is_pure_hash_partitioning() {
        let r: Vec<Tuple> = (0..100).map(|k| Tuple::new(k, 0)).collect();
        let clock = EventClock::ungated();
        let threads = 4;
        let mut total = 0;
        for w in 0..threads {
            let (mut rv, mut sv) = worker_views(&r, &r, threads, 1, w);
            let rt = drain(&mut rv, &clock);
            let st = drain(&mut sv, &clock);
            // With g=1 both sides of a worker see the same class subset.
            assert_eq!(rt.len(), st.len());
            total += rt.len();
        }
        assert_eq!(total, 100);
    }
}
