//! Per-worker and per-run outputs.

use crate::algo::Algorithm;
use iawj_common::{CountingSink, MatchRecord, PhaseBreakdown, PhaseCounters, Sink};
use iawj_exec::TimerParts;
use iawj_obs::perf::CounterSource;
use iawj_obs::{chrome_trace_with_cores, LogHistogram, SpanJournal};

/// Everything one worker thread produces.
#[derive(Debug)]
pub struct WorkerOut {
    /// The worker's match sink (counts + samples + latency histogram).
    pub sink: CountingSink,
    /// Time spent per phase on this worker.
    pub breakdown: PhaseBreakdown,
    /// Hardware-counter deltas per phase (all-zero without perf access).
    pub counters: PhaseCounters,
    /// Whether this worker's counters came from real hardware counters.
    pub counter_source: CounterSource,
    /// `(stream_ms, bytes_held)` samples of this worker's state size.
    pub mem_samples: Vec<(f64, usize)>,
    /// This worker's span journal (disabled and empty unless the run
    /// config enabled journaling).
    pub journal: Option<SpanJournal>,
    /// CPU the worker was last observed on (`None` when the platform
    /// exposes no `getcpu`, or in spawn mode where threads are unplaced).
    pub core_id: Option<usize>,
}

impl WorkerOut {
    /// Fresh worker output with the given match-sampling rate.
    pub fn new(sample_every: u64) -> Self {
        WorkerOut {
            sink: CountingSink::new(sample_every),
            breakdown: PhaseBreakdown::zero(),
            counters: PhaseCounters::zero(),
            counter_source: CounterSource::Unavailable,
            mem_samples: Vec::new(),
            journal: None,
            core_id: None,
        }
    }

    /// Attach a finished timer's measurements: breakdown, per-phase
    /// counters, and the journal if it recorded anything.
    pub fn set_timing(&mut self, parts: TimerParts) {
        self.breakdown = parts.breakdown;
        self.counters = parts.counters;
        self.counter_source = parts.counter_source;
        if parts.journal.enabled() {
            self.journal = Some(parts.journal);
        }
    }
}

/// The merged result of one run — the input to every §4.1 metric.
#[derive(Debug)]
pub struct RunResult {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Worker threads used.
    pub threads: usize,
    /// Total input tuples (|R| + |S|).
    pub total_inputs: usize,
    /// Total matches produced.
    pub matches: u64,
    /// One in `sample_every` matches, merged across workers, sorted by
    /// emission time.
    pub samples: Vec<MatchRecord>,
    /// Sampling rate the samples were taken at.
    pub sample_every: u64,
    /// Stream time of the last match.
    pub last_emit_ms: f64,
    /// Stream time when the last worker finished.
    pub elapsed_ms: f64,
    /// Phase breakdown summed over workers (total CPU-side cost).
    pub breakdown: PhaseBreakdown,
    /// Hardware-counter deltas per phase, summed over workers (all-zero
    /// when no worker had perf access).
    pub counters: PhaseCounters,
    /// `Perf` when at least one worker read real hardware counters.
    pub counter_source: CounterSource,
    /// Per-worker breakdowns (for utilisation studies).
    pub per_thread: Vec<PhaseBreakdown>,
    /// Exact latency histogram over every match, merged across workers.
    pub hist: LogHistogram,
    /// Per-worker span journals, `(worker, journal)`, present only when
    /// the run journaled.
    pub journals: Vec<(usize, SpanJournal)>,
    /// CPU each worker was last observed on, indexed by worker id (`None`
    /// entries where placement was unknown).
    pub core_ids: Vec<Option<usize>>,
    /// Memory samples merged from all workers, sorted by time. Each entry
    /// is `(stream_ms, worker, bytes)`; aggregate consumption at time t is
    /// the sum over workers of each worker's latest reading before t (see
    /// [`aggregate_mem_curve`]).
    pub mem_samples: Vec<(f64, usize, usize)>,
}

impl RunResult {
    /// Total journal marks with the given name across all workers, e.g.
    /// `"morsel:steal"` events from the work-stealing scheduler. Zero when
    /// the run did not journal.
    pub fn count_marks(&self, name: &str) -> usize {
        self.journals.iter().map(|(_, j)| j.count_marks(name)).sum()
    }

    /// Total journal marks with the given name that fall inside a span of
    /// the given phase label, across all workers — e.g. how many
    /// `"latch:wait"` stalls landed in `"probe"` rather than
    /// `"build/sort"`. Zero when the run did not journal.
    pub fn count_marks_in(&self, name: &str, span_name: &str) -> usize {
        self.journals
            .iter()
            .map(|(_, j)| j.count_marks_in(name, span_name))
            .sum()
    }

    /// Merge per-worker outputs into a run result.
    pub fn merge(
        algorithm: Algorithm,
        total_inputs: usize,
        sample_every: u64,
        elapsed_ms: f64,
        workers: Vec<WorkerOut>,
    ) -> Self {
        let threads = workers.len();
        let mut matches = 0u64;
        let mut samples = Vec::new();
        let mut last_emit_ms = 0.0f64;
        let mut breakdown = PhaseBreakdown::zero();
        let mut counters = PhaseCounters::zero();
        let mut counter_source = CounterSource::Unavailable;
        let mut per_thread = Vec::with_capacity(threads);
        let mut mem_samples: Vec<(f64, usize, usize)> = Vec::new();
        let mut hist = LogHistogram::new();
        let mut journals = Vec::new();
        let mut core_ids = Vec::with_capacity(threads);
        for (wid, w) in workers.into_iter().enumerate() {
            core_ids.push(w.core_id);
            matches += w.sink.count();
            last_emit_ms = last_emit_ms.max(w.sink.last_emit_ms);
            hist.merge(&w.sink.hist);
            samples.extend(w.sink.samples);
            breakdown += w.breakdown;
            counters += w.counters;
            if w.counter_source.is_perf() {
                counter_source = CounterSource::Perf;
            }
            per_thread.push(w.breakdown);
            mem_samples.extend(w.mem_samples.iter().map(|&(t, b)| (t, wid, b)));
            if let Some(j) = w.journal {
                journals.push((wid, j));
            }
        }
        samples.sort_by(|a, b| a.emit_ms.total_cmp(&b.emit_ms));
        mem_samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        RunResult {
            algorithm,
            threads,
            total_inputs,
            matches,
            samples,
            sample_every,
            last_emit_ms,
            elapsed_ms,
            breakdown,
            counters,
            counter_source,
            per_thread,
            hist,
            journals,
            core_ids,
            mem_samples,
        }
    }

    /// Render the run's span journals as a Chrome-trace JSON document (one
    /// lane per worker, labelled with the CPU the worker was observed on
    /// when placement is known). Empty trace when the run did not journal.
    pub fn chrome_trace(&self) -> String {
        let lanes: Vec<(usize, Option<usize>, &SpanJournal)> = self
            .journals
            .iter()
            .map(|(wid, j)| (*wid, self.core_ids.get(*wid).copied().flatten(), j))
            .collect();
        chrome_trace_with_cores(&lanes)
    }

    /// Throughput in input tuples per stream millisecond — total inputs
    /// divided by the timestamp of the last match (§4.2.2). Falls back to
    /// total elapsed time when a run produced no matches.
    pub fn throughput_tpms(&self) -> f64 {
        let t = if self.last_emit_ms > 0.0 {
            self.last_emit_ms
        } else {
            self.elapsed_ms
        };
        if t <= 0.0 {
            0.0
        } else {
            self.total_inputs as f64 / t
        }
    }

    /// CPU utilisation estimate: busy (non-wait) time over `threads ×
    /// elapsed` (Table 6).
    pub fn cpu_utilisation(&self) -> f64 {
        let wall_ns = self.elapsed_ms * 1e6;
        if wall_ns <= 0.0 || self.threads == 0 {
            return 0.0;
        }
        (self.breakdown.busy_ns() as f64 / (wall_ns * self.threads as f64)).min(1.0)
    }
}

/// Collapse per-worker memory samples into a total-consumption-over-time
/// curve: at each sample time, the sum of every worker's latest reading
/// (the Figure 19b series).
pub fn aggregate_mem_curve(samples: &[(f64, usize, usize)], workers: usize) -> Vec<(f64, usize)> {
    let mut latest = vec![0usize; workers];
    let mut curve = Vec::with_capacity(samples.len());
    for &(t, w, b) in samples {
        if w < latest.len() {
            latest[w] = b;
        }
        curve.push((t, latest.iter().sum()));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Phase;

    fn worker(matches: u64, last: f64, wait_ns: u64, probe_ns: u64) -> WorkerOut {
        let mut w = WorkerOut::new(1);
        for i in 0..matches {
            w.sink.push(1, 0, 0, last * (i + 1) as f64 / matches as f64);
        }
        w.breakdown.add_ns(Phase::Wait, wait_ns);
        w.breakdown.add_ns(Phase::Probe, probe_ns);
        w
    }

    #[test]
    fn merge_accumulates() {
        let r = RunResult::merge(
            Algorithm::Npj,
            1000,
            1,
            20.0,
            vec![worker(10, 10.0, 5, 5), worker(20, 15.0, 5, 5)],
        );
        assert_eq!(r.matches, 30);
        assert_eq!(r.samples.len(), 30);
        assert!((r.last_emit_ms - 15.0).abs() < 1e-9);
        assert_eq!(r.threads, 2);
        assert_eq!(r.breakdown[Phase::Probe], 10);
        // Samples sorted by emission.
        assert!(r.samples.windows(2).all(|w| w[0].emit_ms <= w[1].emit_ms));
    }

    #[test]
    fn throughput_uses_last_match() {
        let r = RunResult::merge(Algorithm::Npj, 300, 1, 50.0, vec![worker(3, 10.0, 0, 1)]);
        assert!((r.throughput_tpms() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_falls_back_to_elapsed() {
        let r = RunResult::merge(Algorithm::Npj, 100, 1, 4.0, vec![worker(0, 0.0, 0, 1)]);
        assert!((r.throughput_tpms() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mem_curve_aggregates_latest_per_worker() {
        let samples = vec![(1.0, 0, 100), (2.0, 1, 50), (3.0, 0, 200), (4.0, 2, 10)];
        let curve = aggregate_mem_curve(&samples, 3);
        assert_eq!(curve, vec![(1.0, 100), (2.0, 150), (3.0, 250), (4.0, 260)]);
        // Out-of-range worker ids are ignored rather than panicking.
        let curve = aggregate_mem_curve(&[(1.0, 9, 5)], 2);
        assert_eq!(curve, vec![(1.0, 0)]);
    }

    #[test]
    fn utilisation_excludes_wait() {
        // 1 worker, elapsed 1ms = 1e6 ns; busy 5e5, wait 5e5.
        let r = RunResult::merge(
            Algorithm::ShjJm,
            10,
            1,
            1.0,
            vec![worker(1, 1.0, 500_000, 500_000)],
        );
        assert!((r.cpu_utilisation() - 0.5).abs() < 0.01);
    }
}
