//! The correctness oracle: a naive nested-loop intra-window join
//! implementing Definition 2 directly. Every algorithm in the study must
//! produce exactly this multiset of `(key, r_ts, s_ts)` triples.

use iawj_common::{Key, Ts, Tuple, Window};

/// All matches of `R' ⋈ S'` within the window, as sorted `(key, r_ts,
/// s_ts)` triples (the canonical multiset form the tests compare).
pub fn nested_loop_join(r: &[Tuple], s: &[Tuple], window: Window) -> Vec<(Key, Ts, Ts)> {
    let mut out = Vec::new();
    for rt in r.iter().filter(|t| window.contains(t.ts)) {
        for st in s.iter().filter(|t| window.contains(t.ts)) {
            if rt.key == st.key {
                out.push((rt.key, rt.ts, st.ts));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Match count only (cheaper for sizing checks): uses a hash map, so it is
/// O(|R| + |S|) instead of quadratic.
pub fn match_count(r: &[Tuple], s: &[Tuple], window: Window) -> u64 {
    use std::collections::HashMap;
    let mut freq: HashMap<Key, u64> = HashMap::new();
    for t in r.iter().filter(|t| window.contains(t.ts)) {
        *freq.entry(t.key).or_insert(0) += 1;
    }
    s.iter()
        .filter(|t| window.contains(t.ts))
        .map(|t| freq.get(&t.key).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_join() {
        let r = vec![Tuple::new(1, 0), Tuple::new(2, 1)];
        let s = vec![Tuple::new(2, 3), Tuple::new(2, 4), Tuple::new(3, 5)];
        let w = Window::of_len(10);
        let m = nested_loop_join(&r, &s, w);
        assert_eq!(m, vec![(2, 1, 3), (2, 1, 4)]);
        assert_eq!(match_count(&r, &s, w), 2);
    }

    #[test]
    fn window_filters_out_of_range() {
        let r = vec![Tuple::new(1, 5), Tuple::new(1, 15)];
        let s = vec![Tuple::new(1, 9), Tuple::new(1, 20)];
        let w = Window::of_len(10);
        let m = nested_loop_join(&r, &s, w);
        assert_eq!(m, vec![(1, 5, 9)]);
        assert_eq!(match_count(&r, &s, w), 1);
    }

    #[test]
    fn zero_window_keeps_only_t0() {
        let r = vec![Tuple::new(1, 0), Tuple::new(1, 1)];
        let s = vec![Tuple::new(1, 0)];
        let w = Window::of_len(0);
        assert_eq!(nested_loop_join(&r, &s, w), vec![(1, 0, 0)]);
    }

    #[test]
    fn count_matches_nested_loop() {
        use iawj_common::Rng;
        let mut rng = Rng::new(3);
        let r: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(rng.next_u32() % 20, i % 50))
            .collect();
        let s: Vec<Tuple> = (0..150)
            .map(|i| Tuple::new(rng.next_u32() % 20, i % 50))
            .collect();
        let w = Window::of_len(40);
        assert_eq!(
            match_count(&r, &s, w),
            nested_loop_join(&r, &s, w).len() as u64
        );
    }
}
