//! The event clock that makes streams "arrive".
//!
//! The paper's harness assigns every tuple an arrival timestamp and lets
//! eager threads compare it against their RDTSC-measured elapsed time
//! (§4.2.2): a tuple whose timestamp exceeds elapsed time has not arrived
//! yet. We reproduce that with a monotonic wall clock plus a configurable
//! `speedup`: stream time advances `speedup`× faster than real time, so a
//! 1000 ms window can be replayed in 100 ms of wall time without changing
//! any of the relative series shapes (all emission and arrival times are
//! measured in *stream* milliseconds). `speedup = 1.0` is real-time replay.

use iawj_common::Ts;
use std::time::{Duration, Instant};

/// Shared, read-only after construction; workers query it concurrently.
#[derive(Debug)]
pub struct EventClock {
    start: Instant,
    speedup: f64,
    gated: bool,
}

impl EventClock {
    /// Start the clock now. `gated = false` makes every tuple available
    /// immediately (data at rest) while stream time still advances for
    /// emission timestamps.
    pub fn start(speedup: f64, gated: bool) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        EventClock {
            start: Instant::now(),
            speedup,
            gated,
        }
    }

    /// Convenience: ungated clock at 1×.
    pub fn ungated() -> Self {
        EventClock::start(1.0, false)
    }

    /// The instant the run began — the common time origin for all worker
    /// span journals, so their trace lanes line up.
    #[inline]
    pub fn epoch(&self) -> Instant {
        self.start
    }

    /// Stream milliseconds elapsed since the run began.
    #[inline]
    pub fn now_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3 * self.speedup
    }

    /// Has a tuple with this arrival timestamp arrived?
    #[inline]
    pub fn available(&self, ts: Ts) -> bool {
        !self.gated || (ts as f64) <= self.now_ms()
    }

    /// Is arrival gating active?
    pub fn gated(&self) -> bool {
        self.gated
    }

    /// Block until stream time reaches `ts`. Sleeps for the bulk of long
    /// waits and spins the final stretch, so wake-up error stays small
    /// without burning a core for the whole window (the lazy algorithms
    /// wait out the entire window length here).
    pub fn wait_until(&self, ts: Ts) {
        if !self.gated {
            return;
        }
        loop {
            let now = self.now_ms();
            let deficit_ms = ts as f64 - now;
            if deficit_ms <= 0.0 {
                return;
            }
            let real_ms = deficit_ms / self.speedup;
            if real_ms > 2.0 {
                std::thread::sleep(Duration::from_secs_f64((real_ms - 1.0) / 1e3));
            } else if real_ms > 0.05 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungated_everything_available() {
        let c = EventClock::ungated();
        assert!(c.available(u32::MAX));
        assert!(!c.gated());
        c.wait_until(u32::MAX); // must return immediately
    }

    #[test]
    fn time_advances() {
        let c = EventClock::start(1.0, true);
        let a = c.now_ms();
        std::thread::sleep(Duration::from_millis(5));
        let b = c.now_ms();
        assert!(b >= a + 4.0, "a={a} b={b}");
    }

    #[test]
    fn speedup_compresses_time() {
        let c = EventClock::start(100.0, true);
        std::thread::sleep(Duration::from_millis(5));
        assert!(c.now_ms() >= 400.0, "now={}", c.now_ms());
    }

    #[test]
    fn gating_respects_timestamps() {
        let c = EventClock::start(1.0, true);
        assert!(c.available(0));
        assert!(
            !c.available(60_000),
            "a timestamp a minute out must not be available yet"
        );
    }

    #[test]
    fn wait_until_blocks_until_arrival() {
        let c = EventClock::start(1000.0, true); // 1000 stream ms per real ms
        let t0 = Instant::now();
        c.wait_until(5000); // = 5 real ms
        assert!(c.available(5000));
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }
}
