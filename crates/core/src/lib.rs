#![warn(missing_docs)]

//! The intra-window join (IaWJ) algorithms of the study.
//!
//! Eight algorithms span the design space of Table 2 — execution approach
//! (lazy / eager) × join method (hash / sort) × partitioning scheme:
//!
//! | Name     | Approach | Method | Partitioning                        |
//! |----------|----------|--------|-------------------------------------|
//! | NPJ      | lazy     | hash   | none (shared table)                 |
//! | PRJ      | lazy     | hash   | cache-aware radix replication       |
//! | MWay     | lazy     | sort   | equisized range partitioning        |
//! | MPass    | lazy     | sort   | equisized range partitioning        |
//! | SHJ^JM   | eager    | hash   | join-matrix (content-insensitive)   |
//! | SHJ^JB   | eager    | hash   | join-biclique (content-sensitive)   |
//! | PMJ^JM   | eager    | sort   | join-matrix                         |
//! | PMJ^JB   | eager    | sort   | join-biclique                       |
//!
//! plus the handshake-join strawman the paper's §6 uses for validation.
//!
//! The [`runner`] executes any of them over a [`iawj_datagen::Dataset`]
//! under a [`config::RunConfig`], gating tuple availability with the
//! [`clock::EventClock`], and returns a [`output::RunResult`] carrying the
//! three §4.1 metrics (throughput, quantile latency, progressiveness) plus
//! the §5.3 six-phase time breakdown and a memory-consumption trace.
//! [`decision`] implements the Figure 4 decision tree, and [`trace`] runs
//! the cache-simulated profiles behind Figure 8, Table 5 and Figure 19a.

pub mod adaptive;
pub mod algo;
pub mod clock;
pub mod config;
pub mod decision;
pub mod distribute;
pub mod eager;
pub mod index;
pub mod lazy;
pub mod metrics;
pub mod output;
pub mod reference;
pub mod runner;
pub mod streaming;
pub mod trace;
pub mod windowing;

pub use algo::Algorithm;
pub use clock::EventClock;
pub use config::{ExecConfig, IndexConfig, RunConfig, SchedConfig};
pub use iawj_exec::{ExecMode, Executor, NpjTable, PinPolicy, ScatterMode, Scheduler};
pub use output::RunResult;
pub use runner::{execute, execute_on};
pub use streaming::{run_replay, ClosedWindow, StreamConfig, StreamReport, StreamingJoin};
