//! Run configuration: thread count, sort backend, the per-algorithm tuning
//! knobs of §5.5, and harness controls (time compression, match sampling).

use iawj_common::{KernelBackend, DEFAULT_PREFETCH_DIST};
use iawj_exec::morsel::{MorselQueue, DEFAULT_MORSEL};
use iawj_exec::{ExecMode, Executor, NpjTable, PinPolicy, ScatterMode, Scheduler, SortBackend};

/// Executor knobs: how worker threads are provisioned and placed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker provisioning: fresh scoped threads per run (`spawn`, the seed
    /// behaviour) or a persistent parked pool reused across runs (`pool`,
    /// the default).
    pub mode: ExecMode,
    /// Core-placement policy for pool workers (`none` leaves the OS
    /// scheduler in charge; `compact`/`scatter` pin via `sched_setaffinity`).
    pub pin: PinPolicy,
}

/// Batched-kernel knobs (Fig. 21's scalar-vs-SIMD A/B switch).
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Hot-loop kernel selection: `Scalar` keeps the original per-tuple
    /// paths byte-for-byte; `Simd` (the default) batches hash/partition
    /// derivation 8 keys at a time, software-prefetches bucket heads ahead
    /// of the probe/build pipelines, and sorts through the explicit AVX2
    /// network where the CPU supports it.
    pub backend: KernelBackend,
    /// How many tuples ahead of the consume point bucket-head prefetches
    /// are issued (Simd pipelines only; clamped to ≥ 1).
    pub prefetch_dist: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            backend: KernelBackend::default(),
            prefetch_dist: DEFAULT_PREFETCH_DIST,
        }
    }
}

/// NPJ knobs (latching ablation; see DESIGN.md §5).
#[derive(Clone, Copy, Debug, Default)]
pub struct NpjConfig {
    /// Which shared table the build phase fills: per-bucket latched (the
    /// paper's default) or lock-free CAS-chained (the Fig. 8 A/B).
    pub table: NpjTable,
    /// Use a striped-latch shared table with this many latches instead of
    /// the default per-bucket latches. Latch mode only — incompatible with
    /// [`NpjTable::LockFree`], which has no latches to stripe.
    pub striped_latches: Option<usize>,
}

/// PRJ knobs (§5.5, Figure 18).
#[derive(Clone, Copy, Debug)]
pub struct PrjConfig {
    /// Total radix bits `#r`; the paper sweeps 8..18 and settles on ~10.
    pub radix_bits: u32,
    /// Split partitioning into two passes when `radix_bits` exceeds this
    /// (keeps first-pass fan-out within TLB reach, per Balkesen et al.).
    pub max_bits_per_pass: u32,
    /// Scatter path: direct stores, or software write-combining buffers
    /// (Balkesen et al.'s SWWCB) flushed a cache line at a time.
    pub scatter: ScatterMode,
}

impl Default for PrjConfig {
    fn default() -> Self {
        PrjConfig {
            radix_bits: 10,
            max_bits_per_pass: 8,
            scatter: ScatterMode::Direct,
        }
    }
}

/// PMJ knobs (§5.5, Figure 15).
#[derive(Clone, Copy, Debug)]
pub struct PmjConfig {
    /// Sorting step size δ: the fraction of a worker's expected input
    /// accumulated before each sort+join step. The paper finds 20% optimal.
    pub delta: f64,
    /// Progressive merging: cross-join each new run pair against all
    /// earlier runs immediately instead of in one final merge phase —
    /// closer to Dittrich et al.'s original merge-on-demand, trading total
    /// cost for earlier results (ablation; see docs/algorithms.md).
    pub eager_merge: bool,
}

impl Default for PmjConfig {
    fn default() -> Self {
        PmjConfig {
            delta: 0.20,
            eager_merge: false,
        }
    }
}

/// Join-biclique knobs (§5.5, Figure 16).
#[derive(Clone, Copy, Debug)]
pub struct JbConfig {
    /// Core-group size `g`. `1` degenerates to hash partitioning; `threads`
    /// degenerates to a JM-like scheme. Must divide the thread count.
    pub group_size: usize,
}

impl Default for JbConfig {
    fn default() -> Self {
        JbConfig { group_size: 2 }
    }
}

/// Join-matrix knobs (§5.5, Figure 17).
#[derive(Clone, Copy, Debug, Default)]
pub struct JmConfig {
    /// Physically copy assigned tuples into per-worker buffers before
    /// processing ("w/ partitioning") instead of reading through the shared
    /// input arrays ("pointer passing", the paper's default).
    pub physical_partition: bool,
}

/// Hybrid-engine knobs (the eager/lazy orchestration extension).
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// A single pull delivering a batch at least this full counts as
    /// dispatcher saturation and flips the engine into deferred (bulk)
    /// mode. Defaults to the pull batch size, so the engine stays eager
    /// under light load and goes bulk under backlog.
    pub defer_at_batch: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            defer_at_batch: crate::eager::BATCH,
        }
    }
}

/// Index-engine knobs (the IBWJ family; see DESIGN.md).
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Partition count for `IBWJ_PART` (0 = auto: the next power of two at
    /// or above 4× the thread count, so repartitioning has slack to move
    /// hot partitions between workers).
    pub partitions: usize,
    /// How many stream-time epochs `IBWJ_PART` slices a run into; each
    /// epoch boundary is a deterministic repartition opportunity.
    pub epochs: usize,
    /// Repartition when the most-loaded worker's assigned tuple share
    /// exceeds the ideal share by this factor.
    pub repart_factor: f64,
    /// Evict index entries older than this horizon behind the newest
    /// arrival (`None` keeps the whole window resident — correct for the
    /// single-window harness, where every pair is in range).
    pub evict_horizon_ms: Option<u32>,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            partitions: 0,
            epochs: 8,
            repart_factor: 1.5,
            evict_horizon_ms: None,
        }
    }
}

/// Work-distribution knobs shared by every engine (the Fig. 10 skew
/// ablation: static `chunk_range` splits vs morsel-driven stealing).
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Which scheduler drives the parallel scan/probe loops.
    pub scheduler: Scheduler,
    /// Morsel size in tuples (steal mode only; clamped to ≥ 1).
    pub morsel_size: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            scheduler: Scheduler::Static,
            morsel_size: DEFAULT_MORSEL,
        }
    }
}

impl SchedConfig {
    /// Is morsel-driven stealing enabled?
    #[inline]
    pub fn stealing(&self) -> bool {
        self.scheduler == Scheduler::Steal
    }

    /// A morsel queue over `0..len` for `workers` workers, at the
    /// configured morsel size.
    pub fn queue(&self, len: usize, workers: usize) -> MorselQueue {
        MorselQueue::new(len, workers, self.morsel_size)
    }

    /// A queue over coarse work items (radix partitions, merge ranges)
    /// claimed one at a time rather than in morsel-size runs.
    pub fn item_queue(&self, items: usize, workers: usize) -> MorselQueue {
        MorselQueue::new(items, workers, 1)
    }
}

/// Complete configuration of one run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Worker threads. MWay/MPass require a power of two (§5); the runner
    /// enforces it.
    pub threads: usize,
    /// Sort backend for every sort-based algorithm (Figure 21's switch).
    pub sort: SortBackend,
    /// Stream-time speedup (1.0 = real-time replay; >1 compresses waits).
    pub speedup: f64,
    /// Record one in `sample_every` matches for latency/progressiveness.
    pub sample_every: u64,
    /// Record a memory-consumption sample roughly every this many processed
    /// tuples per worker (0 disables the gauge).
    pub mem_sample_every: usize,
    /// Record per-worker span journals (phase intervals + instant events)
    /// for trace export. Off by default: a disabled journal allocates
    /// nothing and costs one branch per phase switch.
    pub journal: bool,
    /// Ring capacity (spans and marks each) of one worker's journal.
    pub journal_capacity: usize,
    /// Sample hardware performance counters (cycles, instructions,
    /// cache/TLB misses, branch mispredicts) per phase on every worker.
    /// Degrades silently to zero counters when the kernel refuses.
    pub perf: bool,
    /// Executor knobs (worker provisioning + core placement).
    pub exec: ExecConfig,
    /// Work-distribution knobs (scheduler + morsel size).
    pub sched: SchedConfig,
    /// Batched-kernel knobs (scalar/SIMD switch + prefetch distance).
    pub kernel: KernelConfig,
    /// NPJ knobs.
    pub npj: NpjConfig,
    /// PRJ knobs.
    pub prj: PrjConfig,
    /// PMJ knobs.
    pub pmj: PmjConfig,
    /// JB knobs.
    pub jb: JbConfig,
    /// JM knobs.
    pub jm: JmConfig,
    /// Hybrid-extension knobs.
    pub hybrid: HybridConfig,
    /// Index-engine knobs.
    pub index: IndexConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 4,
            sort: SortBackend::default(),
            speedup: 1.0,
            sample_every: 64,
            mem_sample_every: 4096,
            journal: false,
            journal_capacity: 1 << 14,
            perf: false,
            exec: ExecConfig::default(),
            sched: SchedConfig::default(),
            kernel: KernelConfig::default(),
            npj: NpjConfig::default(),
            prj: PrjConfig::default(),
            pmj: PmjConfig::default(),
            jb: JbConfig::default(),
            jm: JmConfig::default(),
            hybrid: HybridConfig::default(),
            index: IndexConfig::default(),
        }
    }
}

impl RunConfig {
    /// Config with a given thread count, defaults elsewhere.
    pub fn with_threads(threads: usize) -> Self {
        RunConfig {
            threads,
            ..Default::default()
        }
    }

    /// Builder: set the sort backend.
    pub fn sort(mut self, sort: SortBackend) -> Self {
        self.sort = sort;
        self
    }

    /// Builder: set time compression.
    pub fn speedup(mut self, speedup: f64) -> Self {
        self.speedup = speedup;
        self
    }

    /// Builder: record every match (correctness tests).
    pub fn record_all(mut self) -> Self {
        self.sample_every = 1;
        self
    }

    /// Builder: enable per-worker span journaling.
    pub fn with_journal(mut self) -> Self {
        self.journal = true;
        self
    }

    /// Builder: enable per-phase hardware-counter sampling.
    pub fn with_perf(mut self) -> Self {
        self.perf = true;
        self
    }

    /// Builder: select the executor mode (spawn-per-run vs persistent pool).
    pub fn executor(mut self, mode: ExecMode) -> Self {
        self.exec.mode = mode;
        self
    }

    /// Builder: select the core-placement policy for pool workers.
    pub fn pin(mut self, pin: PinPolicy) -> Self {
        self.exec.pin = pin;
        self
    }

    /// Builder: select the work-distribution scheduler.
    pub fn scheduler(mut self, scheduler: Scheduler) -> Self {
        self.sched.scheduler = scheduler;
        self
    }

    /// Builder: set the morsel size for steal mode.
    pub fn morsel_size(mut self, morsel_size: usize) -> Self {
        self.sched.morsel_size = morsel_size;
        self
    }

    /// Builder: select the PRJ scatter path.
    pub fn scatter(mut self, scatter: ScatterMode) -> Self {
        self.prj.scatter = scatter;
        self
    }

    /// Builder: select the NPJ shared-table mode.
    pub fn npj_table(mut self, table: NpjTable) -> Self {
        self.npj.table = table;
        self
    }

    /// Builder: select the hot-loop kernel backend.
    pub fn kernel(mut self, backend: KernelBackend) -> Self {
        self.kernel.backend = backend;
        self
    }

    /// Builder: set the software-prefetch distance for Simd pipelines.
    pub fn prefetch_dist(mut self, dist: usize) -> Self {
        self.kernel.prefetch_dist = dist;
        self
    }

    /// Check the knobs that would otherwise fail far from their cause —
    /// a zero morsel size would spin the morsel driver (or divide by zero
    /// in grid-cell arithmetic), a zero thread count has no workers to run.
    /// The runner calls this before dispatch; CLI parsing rejects the same
    /// values with a flag-level error message.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("thread count must be at least 1".into());
        }
        if self.sched.morsel_size == 0 {
            return Err("morsel size must be at least 1 tuple".into());
        }
        if self.kernel.prefetch_dist == 0 {
            return Err("prefetch distance must be at least 1 tuple".into());
        }
        if self.npj.table == NpjTable::LockFree && self.npj.striped_latches.is_some() {
            return Err("striped latches require the latched NPJ table; \
                 the lock-free table has no latches to stripe"
                .into());
        }
        if self.index.epochs == 0 {
            return Err("index epochs must be at least 1".into());
        }
        if !(self.index.repart_factor.is_finite() && self.index.repart_factor >= 1.0) {
            return Err("index repartition factor must be a finite value >= 1.0".into());
        }
        Ok(())
    }

    /// Build the executor this config asks for: a persistent pool sized to
    /// `threads` under the configured placement policy, or a spawn-mode
    /// shim that delegates every run to fresh scoped threads. Callers that
    /// run many joins (benchmarks, the streaming service) should build one
    /// executor and pass it to [`crate::execute_on`] instead of paying
    /// pool construction per run.
    pub fn make_executor(&self) -> Executor {
        Executor::new(self.exec.mode, self.exec.pin, self.threads)
    }

    /// A journal for one worker, relative to `epoch`: ring-buffered at
    /// `journal_capacity` when journaling is on, disabled (allocation-free)
    /// otherwise.
    pub fn journal_for(&self, epoch: std::time::Instant) -> iawj_obs::SpanJournal {
        if self.journal {
            iawj_obs::SpanJournal::with_capacity(epoch, self.journal_capacity)
        } else {
            iawj_obs::SpanJournal::disabled(epoch)
        }
    }

    /// A phase timer for one worker, honouring both the journal and perf
    /// knobs. Must be called on the worker thread itself: the perf
    /// sampler binds its counters to the calling thread.
    pub fn timer_for(
        &self,
        initial: iawj_common::Phase,
        epoch: std::time::Instant,
    ) -> iawj_exec::PhaseTimer {
        let journal = self.journal_for(epoch);
        if self.perf {
            iawj_exec::PhaseTimer::with_perf(initial, journal)
        } else {
            iawj_exec::PhaseTimer::with_journal(initial, journal)
        }
    }

    /// Effective JB group size: clamped to divide `threads`.
    pub fn jb_group_size(&self) -> usize {
        let g = self.jb.group_size.clamp(1, self.threads);
        // Largest divisor of `threads` not exceeding g.
        (1..=g)
            .rev()
            .find(|d| self.threads.is_multiple_of(*d))
            .unwrap_or(1)
    }

    /// Effective partition count for `IBWJ_PART`: the configured value, or
    /// auto-sized to the next power of two at or above 4× the thread count.
    pub fn index_partitions(&self) -> usize {
        if self.index.partitions > 0 {
            self.index.partitions
        } else {
            iawj_common::hash::next_pow2_at_least(self.threads * 4, 4)
        }
    }

    /// JM matrix shape `(rows, cols)` with `rows*cols = threads`, as square
    /// as possible (the Figure 2a matrix).
    pub fn jm_shape(&self) -> (usize, usize) {
        let t = self.threads;
        let mut r = (t as f64).sqrt() as usize;
        while r > 1 && !t.is_multiple_of(r) {
            r -= 1;
        }
        (r.max(1), t / r.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RunConfig::default();
        assert_eq!(c.prj.radix_bits, 10);
        assert!((c.pmj.delta - 0.2).abs() < 1e-9);
        assert_eq!(c.speedup, 1.0);
    }

    #[test]
    fn jm_shape_is_a_factorisation() {
        for t in 1..=16 {
            let c = RunConfig::with_threads(t);
            let (r, s) = c.jm_shape();
            assert_eq!(r * s, t, "threads={t}");
        }
        assert_eq!(RunConfig::with_threads(4).jm_shape(), (2, 2));
        assert_eq!(RunConfig::with_threads(8).jm_shape(), (2, 4));
        assert_eq!(RunConfig::with_threads(6).jm_shape(), (2, 3));
        assert_eq!(RunConfig::with_threads(7).jm_shape(), (1, 7));
    }

    #[test]
    fn jb_group_size_divides_threads() {
        let mut c = RunConfig::with_threads(8);
        for g in 1..=10 {
            c.jb.group_size = g;
            let eff = c.jb_group_size();
            assert_eq!(8 % eff, 0, "g={g} eff={eff}");
            assert!(eff <= g.min(8));
        }
        c.jb.group_size = 3;
        assert_eq!(c.jb_group_size(), 2, "largest divisor of 8 that is <= 3");
        c.threads = 6;
        c.jb.group_size = 6;
        assert_eq!(c.jb_group_size(), 6);
    }

    #[test]
    fn builders_chain() {
        let c = RunConfig::with_threads(2)
            .sort(SortBackend::Scalar)
            .speedup(10.0)
            .record_all()
            .scheduler(Scheduler::Steal)
            .morsel_size(256);
        assert_eq!(c.threads, 2);
        assert_eq!(c.sort, SortBackend::Scalar);
        assert_eq!(c.sample_every, 1);
        assert!((c.speedup - 10.0).abs() < 1e-9);
        assert!(c.sched.stealing());
        assert_eq!(c.sched.morsel_size, 256);
    }

    #[test]
    fn validate_rejects_zero_morsel_and_threads() {
        assert!(RunConfig::default().validate().is_ok());
        let zero_morsel = RunConfig::default().morsel_size(0);
        let err = zero_morsel.validate().unwrap_err();
        assert!(err.contains("morsel"), "unexpected message: {err}");
        let zero_threads = RunConfig::with_threads(0);
        assert!(zero_threads.validate().is_err());
    }

    #[test]
    fn index_config_defaults_and_validation() {
        let c = RunConfig::with_threads(4);
        assert_eq!(c.index.partitions, 0, "auto by default");
        assert_eq!(c.index_partitions(), 16, "4 threads -> pow2(16)");
        let mut c = RunConfig::with_threads(3);
        assert_eq!(c.index_partitions(), 16, "3 threads -> pow2 >= 12");
        c.index.partitions = 7;
        assert_eq!(c.index_partitions(), 7, "explicit value wins");
        c.index.epochs = 0;
        assert!(c.validate().unwrap_err().contains("epochs"));
        c.index.epochs = 1;
        c.index.repart_factor = 0.5;
        assert!(c.validate().unwrap_err().contains("repartition"));
        c.index.repart_factor = 1.5;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scatter_builder_sets_prj_mode() {
        let c = RunConfig::default();
        assert_eq!(c.prj.scatter, ScatterMode::Direct);
        let c = c.scatter(ScatterMode::Swwc);
        assert_eq!(c.prj.scatter, ScatterMode::Swwc);
    }

    #[test]
    fn npj_table_builder_defaults_to_latch() {
        let c = RunConfig::default();
        assert_eq!(c.npj.table, NpjTable::Latch);
        let c = c.npj_table(NpjTable::LockFree);
        assert_eq!(c.npj.table, NpjTable::LockFree);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_striped_latches_with_lockfree_table() {
        let mut c = RunConfig::default().npj_table(NpjTable::LockFree);
        c.npj.striped_latches = Some(64);
        let err = c.validate().unwrap_err();
        assert!(err.contains("striped"), "unexpected message: {err}");
        // Each knob alone stays valid.
        c.npj.table = NpjTable::Latch;
        assert!(c.validate().is_ok());
        c.npj.striped_latches = None;
        c.npj.table = NpjTable::LockFree;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn kernel_defaults_to_simd_and_validates_dist() {
        let c = RunConfig::default();
        assert_eq!(c.kernel.backend, KernelBackend::Simd);
        assert_eq!(c.kernel.prefetch_dist, DEFAULT_PREFETCH_DIST);
        let c = c.kernel(KernelBackend::Scalar).prefetch_dist(4);
        assert_eq!(c.kernel.backend, KernelBackend::Scalar);
        assert_eq!(c.kernel.prefetch_dist, 4);
        assert!(c.validate().is_ok());
        let bad = RunConfig::default().prefetch_dist(0);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("prefetch"), "unexpected message: {err}");
    }

    #[test]
    fn sched_defaults_to_static_chunks() {
        let c = RunConfig::default();
        assert_eq!(c.sched.scheduler, Scheduler::Static);
        assert!(!c.sched.stealing());
        assert_eq!(c.sched.morsel_size, iawj_exec::DEFAULT_MORSEL);
        let q = c.sched.queue(100, 4);
        assert_eq!((q.len(), q.workers()), (100, 4));
        assert_eq!(c.sched.item_queue(16, 4).morsel(), 1);
    }

    #[test]
    fn exec_defaults_to_unpinned_pool() {
        let c = RunConfig::default();
        assert_eq!(c.exec.mode, ExecMode::Pool);
        assert_eq!(c.exec.pin, PinPolicy::None);
        let c = c.executor(ExecMode::Spawn).pin(PinPolicy::Compact);
        assert_eq!(c.exec.mode, ExecMode::Spawn);
        assert_eq!(c.exec.pin, PinPolicy::Compact);
    }

    #[test]
    fn make_executor_matches_config() {
        let exec = RunConfig::with_threads(3).make_executor();
        assert_eq!(exec.mode(), ExecMode::Pool);
        assert_eq!(exec.capacity(), 3);
        let results = exec.run(3, |tid| tid * 10);
        assert_eq!(results, vec![0, 10, 20]);
        let spawn = RunConfig::with_threads(2)
            .executor(ExecMode::Spawn)
            .make_executor();
        assert_eq!(spawn.mode(), ExecMode::Spawn);
    }

    #[test]
    fn journal_factory_respects_flag() {
        let epoch = std::time::Instant::now();
        let off = RunConfig::default();
        assert!(!off.journal_for(epoch).enabled());
        let on = RunConfig::default().with_journal();
        let j = on.journal_for(epoch);
        assert!(j.enabled());
        assert_eq!(j.epoch(), epoch);
    }

    #[test]
    fn timer_factory_respects_flags() {
        use iawj_common::Phase;
        let epoch = std::time::Instant::now();
        let plain = RunConfig::default().timer_for(Phase::Wait, epoch);
        assert!(!plain.sampling());
        let parts = plain.finish_parts();
        assert!(!parts.journal.enabled());
        // Perf on: never panics; samples only where the kernel allows.
        let perf = RunConfig::default()
            .with_journal()
            .with_perf()
            .timer_for(Phase::Wait, epoch);
        let parts = perf.finish_parts();
        assert!(parts.journal.enabled());
        assert!(parts.counter_source.is_perf() || parts.counters.is_zero());
    }
}
