//! An adaptive IaWJ operator — the paper's first "future work" direction
//! (§7): *"developing an adaptive IaWJ algorithm that considers all the
//! factors including workload, metrics and hardware"*.
//!
//! This is the straightforward realisation the decision tree enables: sniff
//! the workload characteristics from a prefix of each stream (the part a
//! router has seen before committing to a plan), feed them through the
//! Figure 4 tree, and dispatch to the recommended algorithm. It is a
//! baseline for that research direction, not a contribution claim — but it
//! already never loses badly, because each leaf of the tree is the paper's
//! measured winner for that region.

use crate::algo::Algorithm;
use crate::config::RunConfig;
use crate::decision::{recommend, Objective, Thresholds, Workload};
use crate::output::RunResult;
use crate::runner::execute;
use iawj_common::zipf::estimate_theta;
use iawj_common::{Rate, Tuple};
use iawj_datagen::Dataset;
use std::collections::HashMap;

/// Workload characteristics estimated from a stream prefix.
fn sniff_stream(tuples: &[Tuple], frac: f64) -> (Rate, f64, f64) {
    if tuples.is_empty() {
        return (Rate::Infinite, 0.0, 0.0);
    }
    let n = ((tuples.len() as f64 * frac).ceil() as usize).clamp(1, tuples.len());
    let prefix = &tuples[..n];
    let span_ms = prefix.last().map(|t| t.ts).unwrap_or(0) as f64;
    let rate = if span_ms <= 0.0 {
        Rate::Infinite
    } else {
        Rate::PerMs(n as f64 / span_ms)
    };
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for t in prefix {
        *freq.entry(t.key).or_insert(0) += 1;
    }
    // Duplication must be extrapolated, not read off the prefix: a short
    // prefix of a high-duplication stream shows few repeats per key even
    // though it covers most of the (small) key domain. If the prefix saw no
    // repeats at all, treat the stream as unique-keyed; otherwise assume
    // the prefix covered the domain and spread the full stream over it.
    let dupe = if freq.len() == n {
        1.0
    } else {
        tuples.len() as f64 / freq.len().max(1) as f64
    };
    let mut counts: Vec<u64> = freq.into_values().collect();
    let skew = estimate_theta(&mut counts);
    (rate, dupe, skew)
}

/// Estimate the Figure 4 inputs from a prefix of both streams.
///
/// `sample_frac` is the fraction of each stream inspected (an adaptive
/// router would buffer about this much before committing to a plan). Note
/// the total-tuple estimate extrapolates the prefix rate over the window,
/// so data-at-rest inputs use their true cardinalities. `cores` is clamped
/// to the affinity mask ([`crate::decision::effective_cores`]): the tree's
/// `cores_large` comparison must reason about cores the process can
/// actually use, not the raw thread request.
pub fn sniff(ds: &Dataset, sample_frac: f64, cores: usize) -> Workload {
    let (rate_r, dupe_r, skew_r) = sniff_stream(&ds.r, sample_frac);
    let (rate_s, dupe_s, skew_s) = sniff_stream(&ds.s, sample_frac);
    Workload {
        rate_r,
        rate_s,
        dupe: dupe_r.max(dupe_s),
        skew_key: skew_r.max(skew_s),
        total_tuples: ds.total_inputs(),
        cores: crate::decision::effective_cores(cores),
    }
}

/// Outcome of an adaptive run: which algorithm the tree picked, plus the
/// usual run result.
pub struct AdaptiveOutcome {
    /// The workload descriptor the sniffer produced.
    pub descriptor: Workload,
    /// The chosen algorithm.
    pub chosen: Algorithm,
    /// The run result.
    pub result: RunResult,
}

/// Sniff, decide, and execute with custom thresholds.
pub fn execute_adaptive_with(
    ds: &Dataset,
    cfg: &RunConfig,
    objective: Objective,
    thresholds: &Thresholds,
    sample_frac: f64,
) -> AdaptiveOutcome {
    let descriptor = sniff(ds, sample_frac, cfg.threads);
    let chosen = recommend(&descriptor, objective, thresholds);
    let result = execute(chosen, ds, cfg);
    AdaptiveOutcome {
        descriptor,
        chosen,
        result,
    }
}

/// Sniff, decide, and execute with default thresholds and a 5% sample.
///
/// ```
/// use iawj_core::adaptive::execute_adaptive;
/// use iawj_core::decision::Objective;
/// use iawj_core::RunConfig;
/// use iawj_datagen::MicroSpec;
///
/// let ds = MicroSpec::static_counts(2000, 2000).dupe(40).generate();
/// let out = execute_adaptive(&ds, &RunConfig::with_threads(2), Objective::Throughput);
/// // Data at rest with heavy duplication lands on a lazy sort join.
/// assert!(out.chosen.is_lazy() && out.chosen.is_sort_based());
/// assert_eq!(out.result.matches, 40 * 2000);
/// ```
pub fn execute_adaptive(ds: &Dataset, cfg: &RunConfig, objective: Objective) -> AdaptiveOutcome {
    execute_adaptive_with(ds, cfg, objective, &Thresholds::default(), 0.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::match_count;
    use iawj_datagen::MicroSpec;

    #[test]
    fn sniffs_static_data_as_infinite_rate() {
        let ds = MicroSpec::static_counts(1000, 1000)
            .dupe(50)
            .seed(1)
            .generate();
        let w = sniff(&ds, 0.05, 8);
        assert_eq!(w.rate_r, Rate::Infinite);
        assert!(w.dupe > 10.0, "dupe estimate {}", w.dupe);
    }

    #[test]
    fn sniffs_streaming_rate_roughly() {
        let ds = MicroSpec::with_rates(100.0, 100.0).seed(2).generate();
        let w = sniff(&ds, 0.10, 8);
        match w.rate_r {
            Rate::PerMs(v) => assert!((50.0..200.0).contains(&v), "rate estimate {v}"),
            Rate::Infinite => panic!("streaming input sniffed as static"),
        }
    }

    #[test]
    fn adaptive_run_is_correct_and_records_choice() {
        let ds = MicroSpec::static_counts(2000, 2000)
            .dupe(40)
            .seed(3)
            .generate();
        let cfg = RunConfig::with_threads(4);
        let out = execute_adaptive(&ds, &cfg, Objective::Throughput);
        assert_eq!(out.result.matches, match_count(&ds.r, &ds.s, ds.window));
        assert_eq!(out.chosen, out.result.algorithm);
        // Static + high duplication must land on a lazy sort join.
        assert!(
            out.chosen.is_lazy() && out.chosen.is_sort_based(),
            "{}",
            out.chosen
        );
    }

    #[test]
    fn adaptive_picks_eager_for_slow_streams() {
        let ds = MicroSpec::with_rates(3.0, 3.0).seed(4).generate();
        let cfg = RunConfig::with_threads(2).speedup(500.0);
        let out = execute_adaptive(&ds, &cfg, Objective::Latency);
        assert_eq!(out.chosen, Algorithm::ShjJm);
        assert_eq!(out.result.matches, match_count(&ds.r, &ds.s, ds.window));
    }

    #[test]
    fn sniff_clamps_cores_to_affinity_mask() {
        let ds = MicroSpec::static_counts(100, 100).seed(6).generate();
        let avail = iawj_exec::affinity_core_count().max(1);
        assert_eq!(sniff(&ds, 0.05, usize::MAX).cores, avail);
        assert_eq!(sniff(&ds, 0.05, 1).cores, 1);
    }

    #[test]
    fn empty_dataset_does_not_panic() {
        let ds = MicroSpec::static_counts(1, 1).seed(5).generate();
        let cfg = RunConfig::with_threads(1);
        let out = execute_adaptive(&ds, &cfg, Objective::Throughput);
        assert!(out.result.matches <= 1);
    }
}
