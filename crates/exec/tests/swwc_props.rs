//! Property tests of the software write-combining scatter: across arbitrary
//! inputs, radix parameters, and worker counts, the SWWC partitioners must
//! be *bitwise identical* to the sequential direct scatter — same bounds,
//! same data, same within-partition tuple order. Flush boundaries (chunks
//! and partitions that are not multiples of the line capacity) fall out of
//! the generated sizes; the targeted edge cases live in `radix.rs`'s unit
//! tests.

use iawj_common::Tuple;
use iawj_exec::radix::{
    partition_parallel_morsel_swwc, partition_parallel_swwc, partition_seq, partition_seq_buffered,
};
use proptest::prelude::*;

fn tuples(n: usize, seed: u64, key_space: u32) -> Vec<Tuple> {
    let mut rng = iawj_common::Rng::new(seed);
    (0..n)
        .map(|i| Tuple::new(rng.next_u32() % key_space.max(1), i as u32))
        .collect()
}

proptest! {
    #[test]
    fn swwc_partition_is_bitwise_identical_to_seq(
        n in 0usize..6000,
        seed in 0u64..1000,
        bits in 1u32..9,
        shift in 0u32..9,
        threads in 1usize..7) {
        let input = tuples(n, seed, 1 << 14);
        let expect = partition_seq(&input, shift, bits);
        let seq_buf = partition_seq_buffered(&input, shift, bits);
        prop_assert_eq!(&expect.bounds, &seq_buf.bounds);
        prop_assert_eq!(&expect.data, &seq_buf.data);
        let par = partition_parallel_swwc(&input, shift, bits, threads);
        prop_assert_eq!(&expect.bounds, &par.bounds);
        prop_assert_eq!(&expect.data, &par.data);
    }

    #[test]
    fn swwc_morsel_partition_is_bitwise_identical_to_seq(
        n in 0usize..6000,
        seed in 0u64..1000,
        bits in 1u32..9,
        threads in 1usize..7,
        morsel in 1usize..2000) {
        let input = tuples(n, seed, 1 << 14);
        let expect = partition_seq(&input, 0, bits);
        let stolen = partition_parallel_morsel_swwc(&input, 0, bits, threads, morsel);
        prop_assert_eq!(&expect.bounds, &stolen.bounds);
        prop_assert_eq!(&expect.data, &stolen.data);
    }

    #[test]
    fn swwc_handles_skewed_single_partition_inputs(
        n in 0usize..4000,
        key in 0u32..16,
        threads in 1usize..5) {
        // All tuples land in one partition: the worst flush-boundary case,
        // since one buffer absorbs the entire input as n/8 full lines plus
        // a partial tail.
        let input: Vec<Tuple> = (0..n).map(|i| Tuple::new(key, i as u32)).collect();
        let expect = partition_seq(&input, 0, 4);
        let par = partition_parallel_swwc(&input, 0, 4, threads);
        prop_assert_eq!(&expect.data, &par.data);
    }
}
