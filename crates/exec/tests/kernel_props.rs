//! Property-based tests of the kernel layer: the invariants every join
//! algorithm silently relies on.

use iawj_common::Tuple;
use iawj_exec::hashtable::{LocalTable, SharedTable};
use iawj_exec::merge::{
    choose_splitters, kway_merge, kway_merge_loser, kway_merge_tagged, merge_two_into,
    merge_two_into_branchless, pairwise_merge, run_segment, splitter_bounds,
};
use iawj_exec::radix::{partition_two_pass, Partitioned};
use iawj_exec::sort::{sort_packed, SortBackend};
use proptest::prelude::*;
use std::collections::HashMap;

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn merge_two_variants_agree(a in proptest::collection::vec(any::<u64>(), 0..500),
                                b in proptest::collection::vec(any::<u64>(), 0..500)) {
        let a = sorted(a);
        let b = sorted(b);
        let mut out1 = Vec::new();
        merge_two_into(&a, &b, &mut out1);
        let mut out2 = Vec::new();
        merge_two_into_branchless(&a, &b, &mut out2);
        prop_assert_eq!(&out1, &out2);
        let expect = sorted(a.iter().chain(b.iter()).copied().collect());
        prop_assert_eq!(out1, expect);
    }

    #[test]
    fn kway_and_pairwise_agree(runs in proptest::collection::vec(
        proptest::collection::vec(any::<u64>(), 0..120), 0..8)) {
        let runs: Vec<Vec<u64>> = runs.into_iter().map(sorted).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let k = kway_merge(&refs);
        let expect = sorted(runs.iter().flatten().copied().collect());
        prop_assert_eq!(&k, &expect);
        prop_assert_eq!(&kway_merge_loser(&refs), &expect);
        prop_assert_eq!(pairwise_merge(runs.clone()), expect);
        // Tagged merge yields the same values with valid provenance.
        let (vals, tags) = kway_merge_tagged(&refs);
        prop_assert_eq!(&vals, &k);
        for (&v, &t) in vals.iter().zip(tags.iter()) {
            prop_assert!(runs[t as usize].contains(&v));
        }
    }

    #[test]
    fn splitter_segments_tile_every_run(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u64..u64::MAX - 1, 1..200), 1..5),
        n in 1usize..9) {
        let runs: Vec<Vec<u64>> = runs.into_iter().map(sorted).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let bounds = splitter_bounds(&choose_splitters(&refs, n));
        for run in &runs {
            let total: usize = bounds.iter()
                .map(|&(lo, hi)| run_segment(run, lo, hi).len())
                .sum();
            // Every element except a possible u64::MAX (excluded above) is
            // covered exactly once.
            prop_assert_eq!(total, run.len());
        }
    }

    #[test]
    fn two_pass_partition_preserves_multiset(
        keys in proptest::collection::vec(any::<u32>(), 0..1500),
        bits1 in 1u32..5, bits2 in 0u32..5, threads in 1usize..4) {
        let tuples: Vec<Tuple> = keys.iter().enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u32)).collect();
        let p: Partitioned = partition_two_pass(&tuples, bits1, bits2, threads);
        let mut a: Vec<u64> = tuples.iter().map(|t| t.pack()).collect();
        let mut b: Vec<u64> = p.data.iter().map(|t| t.pack()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(p.fanout(), 1usize << (bits1 + bits2));
    }

    #[test]
    fn local_table_agrees_with_hashmap(ops in proptest::collection::vec((any::<u8>(), 0u32..64), 0..800)) {
        let mut table = LocalTable::with_capacity(16);
        let mut model: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, &(_, key)) in ops.iter().enumerate() {
            table.insert(key, i as u32);
            model.entry(key).or_default().push(i as u32);
        }
        for key in 0u32..64 {
            let mut got = Vec::new();
            table.probe(key, |ts| got.push(ts));
            got.sort_unstable();
            let mut expect = model.get(&key).cloned().unwrap_or_default();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "key {}", key);
        }
    }

    #[test]
    fn sort_backends_idempotent(data in proptest::collection::vec(any::<u64>(), 0..800)) {
        for backend in [SortBackend::Scalar, SortBackend::Vectorized] {
            let mut v = data.clone();
            sort_packed(&mut v, backend);
            let once = v.clone();
            sort_packed(&mut v, backend);
            prop_assert_eq!(&v, &once, "{:?} not idempotent", backend);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

#[test]
fn shared_table_concurrent_stress() {
    // 8 threads × 4 rounds of mixed-key inserts; total count must be exact
    // and every key's chain complete.
    let table = SharedTable::with_capacity(1 << 12);
    iawj_exec::run_workers(8, |tid| {
        for round in 0..4u32 {
            for k in 0..512u32 {
                table.insert(k % 97, tid as u32 * 1000 + round * 100 + k % 7);
            }
        }
    });
    assert_eq!(table.len(), 8 * 4 * 512);
    let mut total = 0usize;
    for k in 0..97u32 {
        let mut n = 0;
        table.probe(k, |_| n += 1);
        total += n;
    }
    assert_eq!(total, 8 * 4 * 512);
}
