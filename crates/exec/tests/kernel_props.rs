//! Property-based tests of the kernel layer: the invariants every join
//! algorithm silently relies on.

use iawj_common::hash::{bucket_of, hash_key};
use iawj_common::kernel::{hash_batch8, hash_keys_into, tuple_buckets_into, HASH_BLOCK};
use iawj_common::{KernelBackend, Tuple};
use iawj_exec::hashtable::{LocalTable, SharedTable};
use iawj_exec::merge::{
    choose_splitters, kway_merge, kway_merge_loser, kway_merge_tagged, merge_two_into,
    merge_two_into_branchless, pairwise_merge, run_segment, splitter_bounds,
};
use iawj_exec::radix::{partition_two_pass, Partitioned};
use iawj_exec::sort::{sort_packed, sort_packed_kernel, SortBackend};
use proptest::prelude::*;
use std::collections::HashMap;

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// The edge sizes the batched (8-wide) kernels must survive: empty input,
/// sub-block, exact block, block+1, and a large non-multiple.
const KERNEL_SIZES: &[usize] = &[0, 1, 7, 8, 9, 4097];

/// Deterministic key stream. `skew` ~ Zipf theta: 0.0 draws near-uniform
/// keys, 0.99 collapses the domain so duplicates are dense.
fn keys_for(n: usize, seed: u64, skew: f64) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if skew > 0.5 {
                (x % 17) as u32 // heavy duplication, like theta = 0.99
            } else {
                x as u32
            }
        })
        .collect()
}

/// Deterministic packed-u64 stream for the sort kernels, same skew rule.
fn packed_for(n: usize, seed: u64, skew: f64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if skew > 0.5 {
                x % 17
            } else {
                x
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn merge_two_variants_agree(a in proptest::collection::vec(any::<u64>(), 0..500),
                                b in proptest::collection::vec(any::<u64>(), 0..500)) {
        let a = sorted(a);
        let b = sorted(b);
        let mut out1 = Vec::new();
        merge_two_into(&a, &b, &mut out1);
        let mut out2 = Vec::new();
        merge_two_into_branchless(&a, &b, &mut out2);
        prop_assert_eq!(&out1, &out2);
        let expect = sorted(a.iter().chain(b.iter()).copied().collect());
        prop_assert_eq!(out1, expect);
    }

    #[test]
    fn kway_and_pairwise_agree(runs in proptest::collection::vec(
        proptest::collection::vec(any::<u64>(), 0..120), 0..8)) {
        let runs: Vec<Vec<u64>> = runs.into_iter().map(sorted).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let k = kway_merge(&refs);
        let expect = sorted(runs.iter().flatten().copied().collect());
        prop_assert_eq!(&k, &expect);
        prop_assert_eq!(&kway_merge_loser(&refs), &expect);
        prop_assert_eq!(pairwise_merge(runs.clone()), expect);
        // Tagged merge yields the same values with valid provenance.
        let (vals, tags) = kway_merge_tagged(&refs);
        prop_assert_eq!(&vals, &k);
        for (&v, &t) in vals.iter().zip(tags.iter()) {
            prop_assert!(runs[t as usize].contains(&v));
        }
    }

    #[test]
    fn splitter_segments_tile_every_run(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u64..u64::MAX - 1, 1..200), 1..5),
        n in 1usize..9) {
        let runs: Vec<Vec<u64>> = runs.into_iter().map(sorted).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let bounds = splitter_bounds(&choose_splitters(&refs, n));
        for run in &runs {
            let total: usize = bounds.iter()
                .map(|&(lo, hi)| run_segment(run, lo, hi).len())
                .sum();
            // Every element except a possible u64::MAX (excluded above) is
            // covered exactly once.
            prop_assert_eq!(total, run.len());
        }
    }

    #[test]
    fn two_pass_partition_preserves_multiset(
        keys in proptest::collection::vec(any::<u32>(), 0..1500),
        bits1 in 1u32..5, bits2 in 0u32..5, threads in 1usize..4) {
        let tuples: Vec<Tuple> = keys.iter().enumerate()
            .map(|(i, &k)| Tuple::new(k, i as u32)).collect();
        let p: Partitioned = partition_two_pass(&tuples, bits1, bits2, threads);
        let mut a: Vec<u64> = tuples.iter().map(|t| t.pack()).collect();
        let mut b: Vec<u64> = p.data.iter().map(|t| t.pack()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(p.fanout(), 1usize << (bits1 + bits2));
    }

    #[test]
    fn local_table_agrees_with_hashmap(ops in proptest::collection::vec((any::<u8>(), 0u32..64), 0..800)) {
        let mut table = LocalTable::with_capacity(16);
        let mut model: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, &(_, key)) in ops.iter().enumerate() {
            table.insert(key, i as u32);
            model.entry(key).or_default().push(i as u32);
        }
        for key in 0u32..64 {
            let mut got = Vec::new();
            table.probe(key, |ts| got.push(ts));
            got.sort_unstable();
            let mut expect = model.get(&key).cloned().unwrap_or_default();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "key {}", key);
        }
    }

    #[test]
    fn hash_kernels_agree_with_scalar_hash(seed in any::<u64>()) {
        for (&n, &skew) in KERNEL_SIZES.iter().flat_map(|n| [(n, &0.0f64), (n, &0.99)]) {
            let keys = keys_for(n, seed, skew);
            // Block-wise batched hash vs. the scalar reference, both backends.
            for backend in [KernelBackend::Scalar, KernelBackend::Simd] {
                let mut out = vec![0u64; keys.len()];
                hash_keys_into(backend, &keys, &mut out);
                for (k, h) in keys.iter().zip(out.iter()) {
                    prop_assert_eq!(*h, hash_key(*k), "{:?} n={}", backend, n);
                }
            }
            for chunk in keys.chunks_exact(HASH_BLOCK) {
                let block: [u32; HASH_BLOCK] = chunk.try_into().unwrap();
                let scalar = hash_batch8(KernelBackend::Scalar, &block);
                let simd = hash_batch8(KernelBackend::Simd, &block);
                prop_assert_eq!(scalar, simd);
                for (k, h) in block.iter().zip(scalar.iter()) {
                    prop_assert_eq!(*h, hash_key(*k));
                }
            }
        }
    }

    #[test]
    fn bucket_derivation_kernels_agree(seed in any::<u64>()) {
        let mask = (1u64 << 10) - 1;
        for (&n, &skew) in KERNEL_SIZES.iter().flat_map(|n| [(n, &0.0f64), (n, &0.99)]) {
            let tuples: Vec<Tuple> = keys_for(n, seed, skew)
                .iter()
                .enumerate()
                .map(|(i, &k)| Tuple::new(k, i as u32))
                .collect();
            let mut scalar = Vec::new();
            let mut simd = Vec::new();
            tuple_buckets_into(KernelBackend::Scalar, &tuples, mask, &mut scalar);
            tuple_buckets_into(KernelBackend::Simd, &tuples, mask, &mut simd);
            prop_assert_eq!(&scalar, &simd, "n={}", n);
            for (t, &b) in tuples.iter().zip(scalar.iter()) {
                prop_assert_eq!(b, bucket_of(t.key, mask));
            }
        }
    }

    #[test]
    fn prefetched_probe_matches_unprefetched(seed in any::<u64>()) {
        for (&n, &skew) in KERNEL_SIZES.iter().flat_map(|n| [(n, &0.0f64), (n, &0.99)]) {
            let tuples: Vec<Tuple> = keys_for(n, seed, skew)
                .iter()
                .enumerate()
                .map(|(i, &k)| Tuple::new(k % 257, i as u32))
                .collect();
            let mut table = LocalTable::with_capacity(n.max(8));
            // Prefetched batched build: derive buckets, prefetch ahead,
            // insert through the *_at split APIs.
            let mut buckets = Vec::new();
            tuple_buckets_into(KernelBackend::Simd, &tuples, table.mask(), &mut buckets);
            for (i, t) in tuples.iter().enumerate() {
                if let Some(&ahead) = buckets.get(i + 4) {
                    table.prefetch_bucket(ahead);
                }
                table.insert_at(buckets[i], t.key, t.ts);
            }
            // Reference: plain per-tuple build.
            let mut plain = LocalTable::with_capacity(n.max(8));
            for t in &tuples {
                plain.insert(t.key, t.ts);
            }
            // Probe both ways for every key; multisets of payloads must match.
            for probe_key in 0..257u32 {
                let mut via_at = Vec::new();
                let b = bucket_of(probe_key, table.mask());
                table.prefetch_bucket(b);
                table.probe_at(b, probe_key, |ts| via_at.push(ts));
                let mut direct = Vec::new();
                plain.probe(probe_key, |ts| direct.push(ts));
                via_at.sort_unstable();
                direct.sort_unstable();
                prop_assert_eq!(via_at, direct, "key {} n={}", probe_key, n);
            }
        }
    }

    #[test]
    fn simd_sort_matches_sort_unstable(seed in any::<u64>()) {
        for (&n, &skew) in KERNEL_SIZES.iter().flat_map(|n| [(n, &0.0f64), (n, &0.99)]) {
            let data = packed_for(n, seed, skew);
            let expect = sorted(data.clone());
            for backend in [SortBackend::Scalar, SortBackend::Vectorized] {
                for kernel in [KernelBackend::Scalar, KernelBackend::Simd] {
                    let mut v = data.clone();
                    sort_packed_kernel(&mut v, backend, kernel);
                    prop_assert_eq!(&v, &expect, "{:?}/{:?} n={}", backend, kernel, n);
                }
            }
        }
    }

    #[test]
    fn sort_backends_idempotent(data in proptest::collection::vec(any::<u64>(), 0..800)) {
        for backend in [SortBackend::Scalar, SortBackend::Vectorized] {
            let mut v = data.clone();
            sort_packed(&mut v, backend);
            let once = v.clone();
            sort_packed(&mut v, backend);
            prop_assert_eq!(&v, &once, "{:?} not idempotent", backend);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

#[test]
fn shared_table_concurrent_stress() {
    // 8 threads × 4 rounds of mixed-key inserts; total count must be exact
    // and every key's chain complete.
    let table = SharedTable::with_capacity(1 << 12);
    iawj_exec::run_workers(8, |tid| {
        for round in 0..4u32 {
            for k in 0..512u32 {
                table.insert(k % 97, tid as u32 * 1000 + round * 100 + k % 7);
            }
        }
    });
    assert_eq!(table.len(), 8 * 4 * 512);
    let mut total = 0usize;
    for k in 0..97u32 {
        let mut n = 0;
        table.probe(k, |_| n += 1);
        total += n;
    }
    assert_eq!(total, 8 * 4 * 512);
}
