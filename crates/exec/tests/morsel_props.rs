//! Property tests of the morsel scheduler's claim invariants: the exact
//! guarantees every steal-mode engine silently relies on. The static-mode
//! baseline (`chunk_range` tiling) keeps its own tests in `pool.rs`.

use iawj_exec::morsel::{for_each_morsel, MorselQueue};
use iawj_exec::run_workers;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #[test]
    fn every_index_claimed_exactly_once_concurrently(
        len in 0usize..40_000,
        workers in 1usize..9,
        morsel in 1usize..3000) {
        let q = MorselQueue::new(len, workers, morsel);
        let counts: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
        run_workers(workers, |tid| {
            for_each_morsel(&q, tid, |range, _| {
                for i in range {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {}", i);
        }
        prop_assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn morsels_never_overlap_and_never_exceed_size(
        len in 0usize..20_000,
        workers in 1usize..7,
        morsel in 1usize..2000) {
        // A single surviving worker drains the whole queue: its own deque
        // in order, then everything stolen. Every handed-out range must be
        // non-empty, at most `morsel` long, and pairwise disjoint.
        let q = MorselQueue::new(len, workers, morsel);
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
        for_each_morsel(&q, 0, |r, _| ranges.push(r));
        let mut covered = vec![false; len];
        for r in &ranges {
            prop_assert!(r.len() <= morsel, "oversized morsel {:?}", r);
            prop_assert!(!r.is_empty(), "empty morsel handed out");
            for i in r.clone() {
                prop_assert!(!covered[i], "overlap at {}", i);
                covered[i] = true;
            }
        }
        prop_assert!(covered.iter().all(|&b| b), "work lost");
    }

    #[test]
    fn steal_half_never_loses_work_when_workers_go_missing(
        len in 1usize..20_000,
        workers in 2usize..7,
        arrivals in 1usize..7,
        morsel in 1usize..1500) {
        // Only `arrivals` of the `workers` deque owners ever show up (the
        // rest "stall" forever). Steal-half must still drain every absent
        // owner's deque, covering each index exactly once.
        let arrivals = arrivals.min(workers);
        let q = MorselQueue::new(len, workers, morsel);
        let mut seen = vec![0u32; len];
        for tid in 0..arrivals {
            for_each_morsel(&q, tid, |r, _| {
                for i in r {
                    seen[i] += 1;
                }
            });
        }
        for (i, &c) in seen.iter().enumerate() {
            prop_assert_eq!(c, 1, "index {} claimed {} times", i, c);
        }
        prop_assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn single_worker_degrades_to_static_chunk(
        len in 0usize..10_000,
        morsel in 1usize..600) {
        // n == 1 must visit 0..len in order, never marked stolen —
        // exactly the coverage of chunk_range(len, 1, 0).
        let q = MorselQueue::new(len, 1, morsel);
        let mut seen = Vec::with_capacity(len);
        let mut any_stolen = false;
        for_each_morsel(&q, 0, |r, stolen| {
            any_stolen |= stolen;
            seen.extend(r);
        });
        prop_assert!(!any_stolen, "one worker has nobody to steal from");
        let expect: Vec<usize> = iawj_exec::pool::chunk_range(len, 1, 0).collect();
        prop_assert_eq!(seen, expect);
    }
}
