//! Property tests of the lock-free NPJ table: across arbitrary inputs, key
//! spaces (including single-key pile-ups that stress one CAS chain), and
//! worker counts, [`LockFreeTable`] must hold exactly the multiset a
//! single-owner [`LocalTable`] holds — same keys, same payload multisets,
//! nothing lost or duplicated by racing bucket-head CASes. Sizes are kept
//! small enough for the nightly Miri job to walk the unsafe arena and CAS
//! paths in reasonable time.

use iawj_exec::pool::chunk_range;
use iawj_exec::{run_workers, LocalTable, LockFreeTable};
use proptest::prelude::*;

fn pairs(n: usize, seed: u64, key_space: u32) -> Vec<(u32, u32)> {
    let mut rng = iawj_common::Rng::new(seed);
    (0..n)
        .map(|i| (rng.next_u32() % key_space.max(1), i as u32))
        .collect()
}

/// All `(key, ts)` pairs reachable by probing every key, sorted.
fn drain_lockfree(table: &LockFreeTable, key_space: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for k in 0..key_space {
        table.probe(k, |ts| out.push((k, ts)));
    }
    out.sort_unstable();
    out
}

fn drain_local(table: &LocalTable, key_space: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for k in 0..key_space {
        table.probe(k, |ts| out.push((k, ts)));
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_build_matches_single_owner_table(
        n in 0usize..800,
        seed in 0u64..1000,
        key_bits in 0u32..7,
        threads in 1usize..5) {
        let key_space = 1u32 << key_bits;
        let input = pairs(n, seed, key_space);

        let mut local = LocalTable::with_capacity(n);
        for &(k, ts) in &input {
            local.insert(k, ts);
        }

        let table = LockFreeTable::with_capacity(n);
        run_workers(threads, |tid| {
            for &(k, ts) in &input[chunk_range(n, threads, tid)] {
                table.insert(k, ts);
            }
        });

        prop_assert_eq!(table.len(), n);
        prop_assert_eq!(drain_lockfree(&table, key_space), drain_local(&local, key_space));
    }

    #[test]
    fn single_key_pile_up_loses_nothing(
        n in 0usize..600,
        key in 0u32..8,
        threads in 1usize..5) {
        // Every insert CASes the same bucket head: the maximal-retry case.
        let table = LockFreeTable::with_capacity(n);
        run_workers(threads, |tid| {
            let range = chunk_range(n, threads, tid);
            for i in range {
                table.insert(key, i as u32);
            }
        });
        let mut seen = Vec::new();
        table.probe(key, |ts| seen.push(ts));
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inserts_never_retry(
        n in 0usize..400,
        seed in 0u64..1000) {
        let table = LockFreeTable::with_capacity(n);
        for (k, ts) in pairs(n, seed, 64) {
            prop_assert_eq!(table.insert(k, ts), 0);
        }
        prop_assert_eq!(table.len(), n);
    }
}
