//! Property tests for executor reuse: one long-lived pool, driven through
//! many consecutive heterogeneous dispatches, must behave exactly like
//! freshly-spawned scoped threads — same results, same tid→work mapping,
//! regardless of worker-count shrinkage/growth between generations or pin
//! policy.

use iawj_exec::executor::{ExecMode, Executor};
use iawj_exec::pool::run_workers;
use iawj_exec::topology::PinPolicy;
use proptest::prelude::*;

/// One synthetic "run": `n` workers each fold a deterministic function of
/// (tid, seed) so any tid mix-up, dropped dispatch, or stale-generation
/// result changes the output.
fn workload(seed: u64) -> impl Fn(usize) -> u64 + Sync {
    move |tid| {
        let mut acc = seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for i in 0..(seed % 257 + 1) {
            acc = acc.rotate_left(7).wrapping_add(i ^ tid as u64);
        }
        acc
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// 100 consecutive runs with per-run worker counts drawn from 1..=8:
    /// the reused pool must agree with `run_workers` on every single run.
    #[test]
    fn pool_reuse_matches_spawn_across_heterogeneous_runs(
        sizes in proptest::collection::vec(1usize..9, 100..101),
        seed in any::<u64>(),
    ) {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 8);
        for (i, &n) in sizes.iter().enumerate() {
            let f = workload(seed.wrapping_add(i as u64));
            let pooled = exec.run(n, &f);
            let spawned = run_workers(n, &f);
            prop_assert_eq!(pooled, spawned, "run {} (n={})", i, n);
        }
        prop_assert!(exec.generations() >= 1);
    }

    /// Pinning policies may move threads, never results: every policy
    /// produces the identical output vector for the same dispatch.
    #[test]
    fn pin_policies_never_change_results(
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        let f = workload(seed);
        let expect = run_workers(n, &f);
        for pin in PinPolicy::ALL {
            let exec = Executor::new(ExecMode::Pool, pin, n);
            prop_assert_eq!(exec.run(n, &f), expect.clone(), "pin={:?}", pin);
        }
    }

    /// A pool asked for more workers than it holds must degrade to the
    /// spawn path, not truncate the dispatch.
    #[test]
    fn capacity_shortfall_falls_back_to_spawning(
        cap in 1usize..4,
        n in 4usize..9,
        seed in any::<u64>(),
    ) {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, cap);
        let f = workload(seed);
        prop_assert_eq!(exec.run(n, &f), run_workers(n, &f));
    }
}
