//! The hash tables of the study.
//!
//! - [`SharedTable`] — NPJ's single shared table. All threads insert during
//!   the build phase under per-bucket latches; the concurrent-visit
//!   contention on hot buckets is exactly the NPJ pathology §5.3.2 measures.
//! - [`LockFreeTable`] — the latch-free alternative after Blanas et al.'s
//!   no-partitioning build table: entries live in a pre-sized append-only
//!   arena (slot claimed by one `fetch_add`), chains are linked by CAS on
//!   atomic bucket heads, and probes are plain acquire loads. The A/B
//!   against [`SharedTable`] is the latched-vs-lock-free comparison behind
//!   the paper's Figure 8 discussion.
//! - [`LocalTable`] — the bucket-chain table of PRJ, reused for SHJ's two
//!   per-thread tables as the paper does (§4.2.2). Single-owner, latch-free,
//!   with chained entries in one contiguous arena so growth never
//!   invalidates earlier entries.
//!
//! All derive bucket indices from the shared [`iawj_common::hash_key`]
//! so hash quality never differs across algorithms.

use crate::latch::Latch;
use iawj_common::hash::{bucket_of, next_pow2_at_least};
use iawj_common::{prefetch_read, Key, Ts};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI32, AtomicUsize, Ordering};

/// Which shared table NPJ builds into: the per-bucket latched table (the
/// paper's default) or the lock-free CAS-chained variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NpjTable {
    /// [`SharedTable`]: per-bucket spin latches on build and probe.
    #[default]
    Latch,
    /// [`LockFreeTable`]: latch-free CAS-chained build, plain-load probe.
    LockFree,
}

impl NpjTable {
    /// Both table modes, for sweeps.
    pub const ALL: [NpjTable; 2] = [NpjTable::Latch, NpjTable::LockFree];
}

impl std::str::FromStr for NpjTable {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "latch" => Ok(NpjTable::Latch),
            "lockfree" => Ok(NpjTable::LockFree),
            other => Err(format!("unknown NPJ table mode '{other}'")),
        }
    }
}

impl std::fmt::Display for NpjTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NpjTable::Latch => "latch",
            NpjTable::LockFree => "lockfree",
        })
    }
}

/// A thread-local chained hash table over `(key, ts)` entries.
///
/// `heads[bucket]` points into `entries`; each entry links to the previous
/// head, so a bucket is a LIFO chain. `-1` terminates a chain.
#[derive(Debug)]
pub struct LocalTable {
    mask: u64,
    heads: Vec<i32>,
    entries: Vec<Entry>,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: Key,
    ts: Ts,
    next: i32,
}

impl LocalTable {
    /// Table sized for roughly `expected` entries (2× buckets, min 16).
    pub fn with_capacity(expected: usize) -> Self {
        let buckets = next_pow2_at_least(expected * 2, 16);
        LocalTable {
            mask: buckets as u64 - 1,
            heads: vec![-1; buckets],
            entries: Vec::with_capacity(expected),
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes (for the Figure 19b memory gauge).
    pub fn bytes(&self) -> usize {
        self.heads.capacity() * std::mem::size_of::<i32>()
            + self.entries.capacity() * std::mem::size_of::<Entry>()
    }

    /// The power-of-two bucket mask, for batched bucket derivation
    /// (`iawj_common::kernel::tuple_buckets_into`).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Hint-prefetch the chain head of bucket `b` ahead of an
    /// [`LocalTable::insert_at`]/[`LocalTable::probe_at`] at distance.
    #[inline]
    pub fn prefetch_bucket(&self, b: usize) {
        if let Some(h) = self.heads.get(b) {
            prefetch_read(h);
        }
    }

    /// Insert an entry.
    #[inline]
    pub fn insert(&mut self, key: Key, ts: Ts) {
        self.insert_at(bucket_of(key, self.mask), key, ts);
    }

    /// Insert into a precomputed bucket. `b` must equal
    /// `bucket_of(key, self.mask())` — the prefetched pipelines compute it
    /// in 8-key blocks and feed it back here.
    #[inline]
    pub fn insert_at(&mut self, b: usize, key: Key, ts: Ts) {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        let idx = self.entries.len() as i32;
        self.entries.push(Entry {
            key,
            ts,
            next: self.heads[b],
        });
        self.heads[b] = idx;
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, f: impl FnMut(Ts)) {
        self.probe_at(bucket_of(key, self.mask), key, f);
    }

    /// Probe a precomputed bucket; same contract as
    /// [`LocalTable::insert_at`].
    #[inline]
    pub fn probe_at(&self, b: usize, key: Key, mut f: impl FnMut(Ts)) {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        let mut cur = self.heads[b];
        while cur >= 0 {
            let e = &self.entries[cur as usize];
            if e.key == key {
                f(e.ts);
            }
            cur = e.next;
        }
    }

    /// Number of matches for a key (tests, sizing).
    pub fn count(&self, key: Key) -> usize {
        let mut n = 0;
        self.probe(key, |_| n += 1);
        n
    }
}

/// NPJ's shared table: per-bucket latched vectors. Build-phase inserts take
/// the bucket latch; probe-phase reads also take it (briefly), which models
/// the access-conflict behaviour of a latched shared table faithfully.
pub struct SharedTable {
    mask: u64,
    buckets: Vec<Latch<Vec<(Key, Ts)>>>,
}

impl SharedTable {
    /// Table sized for roughly `expected` entries across all threads.
    pub fn with_capacity(expected: usize) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        SharedTable {
            mask: n as u64 - 1,
            buckets: (0..n).map(|_| Latch::new(Vec::new())).collect(),
        }
    }

    /// Insert from any thread.
    #[inline]
    pub fn insert(&self, key: Key, ts: Ts) {
        self.insert_counting(key, ts);
    }

    /// The power-of-two bucket mask, for batched bucket derivation.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Hint-prefetch bucket `b`'s latch + chain vector header.
    #[inline]
    pub fn prefetch_bucket(&self, b: usize) {
        if let Some(bucket) = self.buckets.get(b) {
            prefetch_read(bucket);
        }
    }

    /// Insert from any thread, reporting how many spin-wait episodes the
    /// bucket latch cost (0 when uncontended). The NPJ engine surfaces each
    /// episode as a `latch:wait` journal instant.
    #[inline]
    pub fn insert_counting(&self, key: Key, ts: Ts) -> u32 {
        self.insert_at_counting(bucket_of(key, self.mask), key, ts)
    }

    /// Insert into a precomputed bucket (`b == bucket_of(key, mask)`),
    /// counting latch waits.
    #[inline]
    pub fn insert_at_counting(&self, b: usize, key: Key, ts: Ts) -> u32 {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        let (mut guard, waits) = self.buckets[b].lock_counting();
        guard.push((key, ts));
        waits
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, f: impl FnMut(Ts)) {
        self.probe_counting(key, f);
    }

    /// Probe, reporting how many spin-wait episodes the bucket latch cost.
    #[inline]
    pub fn probe_counting(&self, key: Key, f: impl FnMut(Ts)) -> u32 {
        self.probe_at_counting(bucket_of(key, self.mask), key, f)
    }

    /// Probe a precomputed bucket, counting latch waits.
    #[inline]
    pub fn probe_at_counting(&self, b: usize, key: Key, mut f: impl FnMut(Ts)) -> u32 {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        let (guard, waits) = self.buckets[b].lock_counting();
        for &(k, ts) in guard.iter() {
            if k == key {
                f(ts);
            }
        }
        waits
    }

    /// Total entries (takes every latch; diagnostics only).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        let fixed = self.buckets.len() * std::mem::size_of::<Latch<Vec<(Key, Ts)>>>();
        let chains: usize = self
            .buckets
            .iter()
            .map(|b| b.lock().capacity() * std::mem::size_of::<(Key, Ts)>())
            .sum();
        fixed + chains
    }
}

/// Striped-latch variant of the shared table: one latch guards a *stripe*
/// of buckets instead of each bucket having its own. Fewer latches means a
/// smaller table footprint but coarser conflict granularity — the ablation
/// behind the NPJ latching comparison in the kernel benches.
pub struct StripedTable {
    mask: u64,
    stripe_shift: u32,
    stripes: Vec<Latch<()>>,
    buckets: Vec<std::cell::UnsafeCell<Vec<(Key, Ts)>>>,
}

// SAFETY: every access to `buckets[b]` happens while holding the stripe
// latch that owns bucket `b` (see `stripe_of`), so no two threads alias a
// bucket's Vec mutably.
unsafe impl Sync for StripedTable {}
unsafe impl Send for StripedTable {}

impl StripedTable {
    /// Table sized for roughly `expected` entries with `stripes` latches
    /// (rounded to a power of two).
    pub fn with_capacity(expected: usize, stripes: usize) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        let s = next_pow2_at_least(stripes, 1).min(n);
        StripedTable {
            mask: n as u64 - 1,
            stripe_shift: (n / s).trailing_zeros(),
            stripes: (0..s).map(|_| Latch::new(())).collect(),
            buckets: (0..n)
                .map(|_| std::cell::UnsafeCell::new(Vec::new()))
                .collect(),
        }
    }

    #[inline]
    fn stripe_of(&self, bucket: usize) -> usize {
        bucket >> self.stripe_shift
    }

    /// Insert from any thread.
    #[inline]
    pub fn insert(&self, key: Key, ts: Ts) {
        self.insert_counting(key, ts);
    }

    /// The power-of-two bucket mask, for batched bucket derivation.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Hint-prefetch bucket `b`'s chain vector header (the stripe latch is
    /// a separate, much smaller array that stays cache-resident anyway).
    #[inline]
    pub fn prefetch_bucket(&self, b: usize) {
        if let Some(bucket) = self.buckets.get(b) {
            prefetch_read(bucket);
        }
    }

    /// Insert from any thread, reporting how many spin-wait episodes the
    /// stripe latch cost (0 when uncontended).
    #[inline]
    pub fn insert_counting(&self, key: Key, ts: Ts) -> u32 {
        self.insert_at_counting(bucket_of(key, self.mask), key, ts)
    }

    /// Insert into a precomputed bucket (`b == bucket_of(key, mask)`),
    /// counting stripe-latch waits.
    #[inline]
    pub fn insert_at_counting(&self, b: usize, key: Key, ts: Ts) -> u32 {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        let (_guard, waits) = self.stripes[self.stripe_of(b)].lock_counting();
        // SAFETY: stripe latch held (see type-level invariant).
        unsafe { (*self.buckets[b].get()).push((key, ts)) };
        waits
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, f: impl FnMut(Ts)) {
        self.probe_counting(key, f);
    }

    /// Probe, reporting how many spin-wait episodes the stripe latch cost.
    #[inline]
    pub fn probe_counting(&self, key: Key, f: impl FnMut(Ts)) -> u32 {
        self.probe_at_counting(bucket_of(key, self.mask), key, f)
    }

    /// Probe a precomputed bucket, counting stripe-latch waits.
    #[inline]
    pub fn probe_at_counting(&self, b: usize, key: Key, mut f: impl FnMut(Ts)) -> u32 {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        let (_guard, waits) = self.stripes[self.stripe_of(b)].lock_counting();
        // SAFETY: stripe latch held.
        for &(k, ts) in unsafe { (*self.buckets[b].get()).iter() } {
            if k == key {
                f(ts);
            }
        }
        waits
    }

    /// Total entries (takes every latch; diagnostics only).
    pub fn len(&self) -> usize {
        (0..self.buckets.len())
            .map(|b| {
                let _guard = self.stripes[self.stripe_of(b)].lock();
                // SAFETY: stripe latch held.
                unsafe { (*self.buckets[b].get()).len() }
            })
            .sum()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        let fixed = self.stripes.len() * std::mem::size_of::<Latch<()>>()
            + self.buckets.len() * std::mem::size_of::<Vec<(Key, Ts)>>();
        let chains: usize = (0..self.buckets.len())
            .map(|b| {
                let _guard = self.stripes[self.stripe_of(b)].lock();
                // SAFETY: stripe latch held.
                unsafe { (*self.buckets[b].get()).capacity() * std::mem::size_of::<(Key, Ts)>() }
            })
            .sum();
        fixed + chains
    }
}

/// Lock-free shared table for NPJ: CAS-chained bucket heads over a
/// pre-sized append-only entry arena.
///
/// Build path: a thread claims an arena slot with one `fetch_add`, writes
/// the entry (it has exclusive ownership of that slot forever), then
/// publishes it by CAS-ing the bucket head from the observed chain head to
/// the slot index. No latch anywhere; a failed CAS just re-links `next`
/// and retries, and each failure is reported so the engine can journal it
/// as a `cas:retry` instant — the lock-free twin of `latch:wait`.
///
/// Probe path: one `Acquire` load of the bucket head, then plain reads
/// while walking the chain. The `Release` CAS that published the head
/// synchronises with that load, and because every later head update is a
/// read-modify-write on the same atomic, the release sequence headed by
/// each entry's publishing CAS is preserved — so *every* entry reachable
/// from an acquired head (not just the newest) is fully visible. Probing
/// concurrently with building is sound (a probe just misses entries not
/// yet published); the NPJ engine nevertheless separates the phases with a
/// barrier, exactly as it does for the latched table.
///
/// The arena does not grow: `with_capacity(expected)` is an upper bound on
/// inserts and overflowing it panics. NPJ sizes it to `|R|`, which is
/// exact.
pub struct LockFreeTable {
    mask: u64,
    heads: Vec<AtomicI32>,
    slots: Box<[UnsafeCell<Entry>]>,
    claimed: AtomicUsize,
}

// SAFETY: each arena slot is written by exactly one thread (the one whose
// `fetch_add` claimed it) before being published via a Release CAS on the
// bucket head, and is never written again; readers only reach a slot
// through an Acquire head load that happens-after its publication. Bucket
// heads are atomics. So no data race is possible on any shared word.
unsafe impl Sync for LockFreeTable {}
unsafe impl Send for LockFreeTable {}

/// Allocate a `Vec<T>` of `len` zeroed elements without the constructing
/// thread touching the pages: `alloc_zeroed` hands back lazily-mapped
/// zero pages, so physical placement is deferred to the first writer
/// (NUMA first-touch).
///
/// Only instantiated with types whose all-zero bit pattern is a valid
/// value (`AtomicI32`, `UnsafeCell<Entry>` — plain integers throughout).
fn alloc_zeroed_vec<T>(len: usize) -> Vec<T> {
    if len == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<T>(len).expect("table layout overflow");
    // SAFETY: layout is non-zero-sized; zeroed bytes are valid for the
    // instantiating types (see above); the Vec takes ownership with the
    // exact layout it will free with.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut T;
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, len, len)
    }
}

impl LockFreeTable {
    /// Table with room for exactly `expected` entries (2× buckets, min 16).
    pub fn with_capacity(expected: usize) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        assert!(
            expected <= i32::MAX as usize,
            "LockFreeTable: {expected} entries exceed i32 chain indices"
        );
        let slots = (0..expected)
            .map(|_| {
                UnsafeCell::new(Entry {
                    key: 0,
                    ts: 0,
                    next: -1,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LockFreeTable {
            mask: n as u64 - 1,
            heads: (0..n).map(|_| AtomicI32::new(-1)).collect(),
            slots,
            claimed: AtomicUsize::new(0),
        }
    }

    /// [`LockFreeTable::with_capacity`] with deferred (first-touch)
    /// initialization: the backing memory comes from `alloc_zeroed`, so the
    /// constructing thread never faults the pages in. Each build worker
    /// must call [`LockFreeTable::first_touch`] for its share — which
    /// writes the `-1` chain sentinels the zeroed heads still lack — and
    /// the caller must barrier between the touch pass and the first
    /// insert/probe. NPJ does this when its executor pins workers, placing
    /// each worker's share of the table on that worker's NUMA node.
    pub fn with_capacity_untouched(expected: usize) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        assert!(
            expected <= i32::MAX as usize,
            "LockFreeTable: {expected} entries exceed i32 chain indices"
        );
        LockFreeTable {
            mask: n as u64 - 1,
            heads: alloc_zeroed_vec::<AtomicI32>(n),
            slots: alloc_zeroed_vec::<UnsafeCell<Entry>>(expected).into_boxed_slice(),
            claimed: AtomicUsize::new(0),
        }
    }

    /// First-touch worker `tid`'s share (of `threads`) of an untouched
    /// table: stores the `-1` chain sentinel over its chunk of bucket
    /// heads and the default entry over its chunk of arena slots, faulting
    /// those pages onto the calling thread's NUMA node. After every worker
    /// has touched its share (and a barrier), the table is
    /// indistinguishable from an eagerly-built one.
    ///
    /// # Safety
    ///
    /// Must run on a [`LockFreeTable::with_capacity_untouched`] table
    /// before any insert or probe; at most one concurrent caller per
    /// `tid` with a consistent `threads` (the chunks are disjoint only
    /// then); and all touch calls must be ordered before the build phase
    /// by a barrier. Skipping a `tid` leaves zeroed heads, which corrupt
    /// chain walks.
    pub unsafe fn first_touch(&self, tid: usize, threads: usize) {
        for b in crate::pool::chunk_range(self.heads.len(), threads, tid) {
            self.heads[b].store(-1, Ordering::Relaxed);
        }
        let blank = Entry {
            key: 0,
            ts: 0,
            next: -1,
        };
        for i in crate::pool::chunk_range(self.slots.len(), threads, tid) {
            // Volatile: the store must reach memory even though slot
            // contents are never read before an insert overwrites them.
            std::ptr::write_volatile(self.slots[i].get(), blank);
        }
    }

    /// The power-of-two bucket mask, for batched bucket derivation.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Hint-prefetch the atomic head of bucket `b` — ahead of both the
    /// build's CAS loop (which starts with a head load) and the probe's
    /// acquire load.
    #[inline]
    pub fn prefetch_bucket(&self, b: usize) {
        if let Some(h) = self.heads.get(b) {
            prefetch_read(h);
        }
    }

    /// Insert from any thread; returns the number of failed bucket-head
    /// CAS attempts (0 when no other thread raced on this bucket).
    ///
    /// Panics if the arena is exhausted — the caller promised at most
    /// `expected` inserts.
    #[inline]
    pub fn insert(&self, key: Key, ts: Ts) -> u32 {
        self.insert_at(bucket_of(key, self.mask), key, ts)
    }

    /// Insert into a precomputed bucket (`b == bucket_of(key, mask)`),
    /// counting failed publish CASes.
    #[inline]
    pub fn insert_at(&self, b: usize, key: Key, ts: Ts) -> u32 {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        // Claim an arena slot. Relaxed suffices: the claim only hands out
        // exclusive indices; publication ordering comes from the CAS below.
        let idx = self.claimed.fetch_add(1, Ordering::Relaxed);
        assert!(
            idx < self.slots.len(),
            "LockFreeTable arena exhausted: capacity {}",
            self.slots.len()
        );
        let head = &self.heads[b];
        let mut cur = head.load(Ordering::Relaxed);
        let mut retries = 0u32;
        loop {
            // SAFETY: `idx` was claimed exclusively by this thread's
            // fetch_add and is unpublished, so no other thread can read or
            // write this slot yet.
            unsafe {
                *self.slots[idx].get() = Entry { key, ts, next: cur };
            }
            // Release: the slot write above must be visible before the
            // head points at it.
            match head.compare_exchange_weak(cur, idx as i32, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return retries,
                Err(observed) => {
                    // Another thread published into this bucket (or the
                    // weak CAS failed spuriously); re-link and retry.
                    retries = retries.saturating_add(1);
                    cur = observed;
                }
            }
        }
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, f: impl FnMut(Ts)) {
        self.probe_at(bucket_of(key, self.mask), key, f);
    }

    /// Probe a precomputed bucket (`b == bucket_of(key, mask)`).
    #[inline]
    pub fn probe_at(&self, b: usize, key: Key, mut f: impl FnMut(Ts)) {
        debug_assert_eq!(b, bucket_of(key, self.mask));
        // Acquire pairs with the publishing Release CAS; the release
        // sequence through later head RMWs makes the whole chain visible.
        let mut cur = self.heads[b].load(Ordering::Acquire);
        while cur >= 0 {
            // SAFETY: `cur` was reachable from an acquired head, so the
            // slot was fully written before publication and is immutable
            // since.
            let e = unsafe { &*self.slots[cur as usize].get() };
            if e.key == key {
                f(e.ts);
            }
            cur = e.next;
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.claimed.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.heads.len() * std::mem::size_of::<AtomicI32>()
            + self.slots.len() * std::mem::size_of::<UnsafeCell<Entry>>()
    }

    /// Number of matches for a key (tests, sizing).
    pub fn count(&self, key: Key) -> usize {
        let mut n = 0;
        self.probe(key, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_workers;

    #[test]
    fn local_insert_probe() {
        let mut t = LocalTable::with_capacity(8);
        t.insert(1, 100);
        t.insert(1, 200);
        t.insert(2, 300);
        let mut seen = Vec::new();
        t.probe(1, |ts| seen.push(ts));
        seen.sort_unstable();
        assert_eq!(seen, vec![100, 200]);
        assert_eq!(t.count(2), 1);
        assert_eq!(t.count(99), 0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn local_handles_many_duplicates() {
        let mut t = LocalTable::with_capacity(4);
        for i in 0..1000 {
            t.insert(7, i);
        }
        assert_eq!(t.count(7), 1000);
    }

    #[test]
    fn local_grows_past_expected() {
        let mut t = LocalTable::with_capacity(2);
        for k in 0..100u32 {
            t.insert(k, k);
        }
        for k in 0..100u32 {
            assert_eq!(t.count(k), 1, "key {k}");
        }
    }

    #[test]
    fn local_bytes_nonzero() {
        let t = LocalTable::with_capacity(100);
        assert!(t.bytes() > 0);
    }

    #[test]
    fn shared_concurrent_build_then_probe() {
        let table = SharedTable::with_capacity(4096);
        run_workers(4, |tid| {
            for i in 0..1000u32 {
                table.insert(i % 256, tid as u32 * 10_000 + i);
            }
        });
        assert_eq!(table.len(), 4000);
        // Every key 0..256 was inserted ceil/floor(4000/256) times per the
        // modulo pattern: keys < 232 get 16, rest 15... actually each thread
        // inserts key k exactly |{i<1000 : i%256==k}| times.
        let expect = |k: u32| -> usize {
            let per_thread = (0..1000u32).filter(|i| i % 256 == k).count();
            per_thread * 4
        };
        for k in [0u32, 100, 255] {
            let mut n = 0;
            table.probe(k, |_| n += 1);
            assert_eq!(n, expect(k), "key {k}");
        }
    }

    #[test]
    fn shared_probe_missing_key() {
        let table = SharedTable::with_capacity(16);
        table.insert(1, 1);
        let mut n = 0;
        table.probe(2, |_| n += 1);
        assert_eq!(n, 0);
        assert!(!table.is_empty());
    }

    #[test]
    fn shared_contended_single_bucket() {
        // All threads hammer the same key: the per-bucket latch must
        // serialise correctly and lose no inserts.
        let table = SharedTable::with_capacity(1024);
        run_workers(8, |_| {
            for i in 0..500 {
                table.insert(42, i);
            }
        });
        let mut n = 0;
        table.probe(42, |_| n += 1);
        assert_eq!(n, 4000);
    }

    #[test]
    fn striped_concurrent_build_then_probe() {
        let table = StripedTable::with_capacity(4096, 64);
        run_workers(4, |tid| {
            for i in 0..1000u32 {
                table.insert(i % 256, tid as u32 * 10_000 + i);
            }
        });
        assert_eq!(table.len(), 4000);
        for k in [0u32, 100, 255] {
            let expect = (0..1000u32).filter(|i| i % 256 == k).count() * 4;
            let mut n = 0;
            table.probe(k, |_| n += 1);
            assert_eq!(n, expect, "key {k}");
        }
    }

    #[test]
    fn striped_single_stripe_still_correct() {
        // One stripe = a single global latch; correctness must not depend
        // on stripe granularity.
        let table = StripedTable::with_capacity(64, 1);
        run_workers(8, |_| {
            for i in 0..200 {
                table.insert(7, i);
            }
        });
        let mut n = 0;
        table.probe(7, |_| n += 1);
        assert_eq!(n, 1600);
        assert!(!table.is_empty());
    }

    #[test]
    fn shared_bytes_grows_with_content() {
        let table = SharedTable::with_capacity(16);
        let before = table.bytes();
        for i in 0..1000 {
            table.insert(i, i);
        }
        assert!(table.bytes() > before);
    }

    #[test]
    fn shared_single_thread_counts_zero_waits() {
        let table = SharedTable::with_capacity(64);
        for i in 0..100 {
            assert_eq!(table.insert_counting(i % 8, i), 0);
        }
        assert_eq!(table.probe_counting(3, |_| {}), 0);
    }

    #[test]
    fn striped_single_thread_counts_zero_waits() {
        let table = StripedTable::with_capacity(64, 4);
        for i in 0..100 {
            assert_eq!(table.insert_counting(i % 8, i), 0);
        }
        assert_eq!(table.probe_counting(3, |_| {}), 0);
    }

    #[test]
    fn lockfree_concurrent_build_then_probe() {
        let table = LockFreeTable::with_capacity(4000);
        run_workers(4, |tid| {
            for i in 0..1000u32 {
                table.insert(i % 256, tid as u32 * 10_000 + i);
            }
        });
        assert_eq!(table.len(), 4000);
        for k in [0u32, 100, 255] {
            let expect = (0..1000u32).filter(|i| i % 256 == k).count() * 4;
            assert_eq!(table.count(k), expect, "key {k}");
        }
    }

    #[test]
    fn lockfree_contended_single_bucket_loses_nothing() {
        // All threads hammer one key: every insert must survive the CAS
        // races and stay reachable from the single bucket chain.
        let table = LockFreeTable::with_capacity(4000);
        run_workers(8, |_| {
            for i in 0..500 {
                table.insert(42, i);
            }
        });
        assert_eq!(table.count(42), 4000);
    }

    #[test]
    fn lockfree_preserves_payloads_exactly() {
        // Distinct timestamps per thread; the union over the chain must be
        // the exact multiset inserted.
        let table = LockFreeTable::with_capacity(800);
        run_workers(4, |tid| {
            for i in 0..200u32 {
                table.insert(7, tid as u32 * 1000 + i);
            }
        });
        let mut seen = Vec::new();
        table.probe(7, |ts| seen.push(ts));
        seen.sort_unstable();
        let mut want: Vec<u32> = (0..4u32)
            .flat_map(|t| (0..200).map(move |i| t * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(seen, want);
    }

    #[test]
    fn lockfree_single_thread_counts_zero_retries() {
        let table = LockFreeTable::with_capacity(100);
        for i in 0..100 {
            assert_eq!(table.insert(i % 8, i), 0, "insert {i}");
        }
        assert_eq!(table.count(3), 13);
    }

    #[test]
    fn lockfree_probe_missing_key() {
        let table = LockFreeTable::with_capacity(16);
        table.insert(1, 1);
        assert_eq!(table.count(2), 0);
        assert!(!table.is_empty());
        assert!(table.bytes() > 0);
    }

    #[test]
    fn lockfree_empty_table() {
        let table = LockFreeTable::with_capacity(0);
        assert!(table.is_empty());
        assert_eq!(table.count(1), 0);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn lockfree_overflow_panics() {
        let table = LockFreeTable::with_capacity(2);
        table.insert(1, 1);
        table.insert(2, 2);
        table.insert(3, 3);
    }

    #[test]
    fn precomputed_bucket_apis_match_plain_paths() {
        // Every `_at` variant fed `bucket_of(key, mask)` (with a prefetch
        // ahead, as the pipelines issue them) must behave exactly like the
        // key-only path.
        let keys: Vec<Key> = (0..500u32).map(|i| i % 97).collect();

        let mut local = LocalTable::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            let b = bucket_of(k, local.mask());
            local.prefetch_bucket(b);
            local.insert_at(b, k, i as Ts);
        }
        let shared = SharedTable::with_capacity(keys.len());
        let striped = StripedTable::with_capacity(keys.len(), 8);
        let lockfree = LockFreeTable::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(
                shared.insert_at_counting(bucket_of(k, shared.mask()), k, i as Ts),
                0
            );
            assert_eq!(
                striped.insert_at_counting(bucket_of(k, striped.mask()), k, i as Ts),
                0
            );
            lockfree.prefetch_bucket(bucket_of(k, lockfree.mask()));
            assert_eq!(
                lockfree.insert_at(bucket_of(k, lockfree.mask()), k, i as Ts),
                0
            );
        }
        for k in 0..97u32 {
            let mut via_key = Vec::new();
            local.probe(k, |ts| via_key.push(ts));
            let mut via_bucket = Vec::new();
            let b = bucket_of(k, local.mask());
            local.prefetch_bucket(b);
            local.probe_at(b, k, |ts| via_bucket.push(ts));
            assert_eq!(via_key, via_bucket, "LocalTable key {k}");

            let collect = |f: &dyn Fn(&mut Vec<Ts>)| {
                let mut v = Vec::new();
                f(&mut v);
                v.sort_unstable();
                v
            };
            let s1 = collect(&|v| shared.probe(k, |ts| v.push(ts)));
            let s2 = collect(&|v| {
                shared.probe_at_counting(bucket_of(k, shared.mask()), k, |ts| v.push(ts));
            });
            assert_eq!(s1, s2, "SharedTable key {k}");
            let t1 = collect(&|v| striped.probe(k, |ts| v.push(ts)));
            let t2 = collect(&|v| {
                striped.probe_at_counting(bucket_of(k, striped.mask()), k, |ts| v.push(ts));
            });
            assert_eq!(t1, t2, "StripedTable key {k}");
            let l1 = collect(&|v| lockfree.probe(k, |ts| v.push(ts)));
            let l2 = collect(&|v| {
                lockfree.probe_at(bucket_of(k, lockfree.mask()), k, |ts| v.push(ts));
            });
            assert_eq!(l1, l2, "LockFreeTable key {k}");
            assert_eq!(s1, l1, "tables disagree on key {k}");
        }
        // Out-of-range prefetches are harmless no-ops.
        local.prefetch_bucket(usize::MAX);
        shared.prefetch_bucket(usize::MAX);
        striped.prefetch_bucket(usize::MAX);
        lockfree.prefetch_bucket(usize::MAX);
    }

    /// A first-touched table must be observationally identical to an
    /// eagerly-initialised one: same retry counts, same probe results.
    #[test]
    fn untouched_first_touch_matches_eager() {
        let eager = LockFreeTable::with_capacity(100);
        let lazy = LockFreeTable::with_capacity_untouched(100);
        assert_eq!(eager.mask(), lazy.mask());
        for tid in 0..4 {
            // SAFETY: single-threaded, sequential tids, before any insert.
            unsafe { lazy.first_touch(tid, 4) };
        }
        for i in 0..100u32 {
            assert_eq!(eager.insert(i % 13, i), lazy.insert(i % 13, i));
        }
        for k in 0..13u32 {
            let mut a = Vec::new();
            eager.probe(k, |ts| a.push(ts));
            let mut b = Vec::new();
            lazy.probe(k, |ts| b.push(ts));
            assert_eq!(a, b, "key {k}");
        }
        // Zero-capacity edge: nothing to touch, still a usable empty table.
        let empty = LockFreeTable::with_capacity_untouched(0);
        // SAFETY: as above.
        unsafe { empty.first_touch(0, 1) };
        assert!(empty.is_empty());
        assert_eq!(empty.count(1), 0);
    }

    #[test]
    fn untouched_concurrent_touch_then_build() {
        // The NPJ wiring: every worker touches its share, a barrier closes
        // the touch epoch, then the normal concurrent build runs.
        let table = LockFreeTable::with_capacity_untouched(4000);
        let gate = crate::pool::barrier(4);
        run_workers(4, |tid| {
            // SAFETY: one caller per tid, consistent threads, barriered
            // before the first insert.
            unsafe { table.first_touch(tid, 4) };
            gate.wait();
            for i in 0..1000u32 {
                table.insert(i % 256, tid as u32 * 10_000 + i);
            }
        });
        assert_eq!(table.len(), 4000);
        for k in [0u32, 100, 255] {
            let expect = (0..1000u32).filter(|i| i % 256 == k).count() * 4;
            assert_eq!(table.count(k), expect, "key {k}");
        }
    }

    #[test]
    fn npj_table_parse_and_display() {
        assert_eq!("latch".parse::<NpjTable>().unwrap(), NpjTable::Latch);
        assert_eq!("lockfree".parse::<NpjTable>().unwrap(), NpjTable::LockFree);
        assert_eq!("LOCKFREE".parse::<NpjTable>().unwrap(), NpjTable::LockFree);
        assert!("mutex".parse::<NpjTable>().is_err());
        assert_eq!(NpjTable::Latch.to_string(), "latch");
        assert_eq!(NpjTable::LockFree.to_string(), "lockfree");
        assert_eq!(NpjTable::default(), NpjTable::Latch);
        for mode in NpjTable::ALL {
            assert_eq!(mode.to_string().parse::<NpjTable>().unwrap(), mode);
        }
    }
}
