//! The two hash tables of the study.
//!
//! - [`SharedTable`] — NPJ's single shared table. All threads insert during
//!   the build phase under per-bucket latches; the concurrent-visit
//!   contention on hot buckets is exactly the NPJ pathology §5.3.2 measures.
//! - [`LocalTable`] — the bucket-chain table of PRJ, reused for SHJ's two
//!   per-thread tables as the paper does (§4.2.2). Single-owner, latch-free,
//!   with chained entries in one contiguous arena so growth never
//!   invalidates earlier entries.
//!
//! Both derive bucket indices from the shared [`iawj_common::hash_key`]
//! so hash quality never differs across algorithms.

use crate::latch::Latch;
use iawj_common::hash::{bucket_of, next_pow2_at_least};
use iawj_common::{Key, Ts};

/// A thread-local chained hash table over `(key, ts)` entries.
///
/// `heads[bucket]` points into `entries`; each entry links to the previous
/// head, so a bucket is a LIFO chain. `-1` terminates a chain.
#[derive(Debug)]
pub struct LocalTable {
    mask: u64,
    heads: Vec<i32>,
    entries: Vec<Entry>,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: Key,
    ts: Ts,
    next: i32,
}

impl LocalTable {
    /// Table sized for roughly `expected` entries (2× buckets, min 16).
    pub fn with_capacity(expected: usize) -> Self {
        let buckets = next_pow2_at_least(expected * 2, 16);
        LocalTable {
            mask: buckets as u64 - 1,
            heads: vec![-1; buckets],
            entries: Vec::with_capacity(expected),
        }
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint in bytes (for the Figure 19b memory gauge).
    pub fn bytes(&self) -> usize {
        self.heads.capacity() * std::mem::size_of::<i32>()
            + self.entries.capacity() * std::mem::size_of::<Entry>()
    }

    /// Insert an entry.
    #[inline]
    pub fn insert(&mut self, key: Key, ts: Ts) {
        let b = bucket_of(key, self.mask);
        let idx = self.entries.len() as i32;
        self.entries.push(Entry {
            key,
            ts,
            next: self.heads[b],
        });
        self.heads[b] = idx;
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, mut f: impl FnMut(Ts)) {
        let b = bucket_of(key, self.mask);
        let mut cur = self.heads[b];
        while cur >= 0 {
            let e = &self.entries[cur as usize];
            if e.key == key {
                f(e.ts);
            }
            cur = e.next;
        }
    }

    /// Number of matches for a key (tests, sizing).
    pub fn count(&self, key: Key) -> usize {
        let mut n = 0;
        self.probe(key, |_| n += 1);
        n
    }
}

/// NPJ's shared table: per-bucket latched vectors. Build-phase inserts take
/// the bucket latch; probe-phase reads also take it (briefly), which models
/// the access-conflict behaviour of a latched shared table faithfully.
pub struct SharedTable {
    mask: u64,
    buckets: Vec<Latch<Vec<(Key, Ts)>>>,
}

impl SharedTable {
    /// Table sized for roughly `expected` entries across all threads.
    pub fn with_capacity(expected: usize) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        SharedTable {
            mask: n as u64 - 1,
            buckets: (0..n).map(|_| Latch::new(Vec::new())).collect(),
        }
    }

    /// Insert from any thread.
    #[inline]
    pub fn insert(&self, key: Key, ts: Ts) {
        let b = bucket_of(key, self.mask);
        self.buckets[b].lock().push((key, ts));
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, mut f: impl FnMut(Ts)) {
        let b = bucket_of(key, self.mask);
        let guard = self.buckets[b].lock();
        for &(k, ts) in guard.iter() {
            if k == key {
                f(ts);
            }
        }
    }

    /// Total entries (takes every latch; diagnostics only).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        let fixed = self.buckets.len() * std::mem::size_of::<Latch<Vec<(Key, Ts)>>>();
        let chains: usize = self
            .buckets
            .iter()
            .map(|b| b.lock().capacity() * std::mem::size_of::<(Key, Ts)>())
            .sum();
        fixed + chains
    }
}

/// Striped-latch variant of the shared table: one latch guards a *stripe*
/// of buckets instead of each bucket having its own. Fewer latches means a
/// smaller table footprint but coarser conflict granularity — the ablation
/// behind the NPJ latching comparison in the kernel benches.
pub struct StripedTable {
    mask: u64,
    stripe_shift: u32,
    stripes: Vec<Latch<()>>,
    buckets: Vec<std::cell::UnsafeCell<Vec<(Key, Ts)>>>,
}

// SAFETY: every access to `buckets[b]` happens while holding the stripe
// latch that owns bucket `b` (see `stripe_of`), so no two threads alias a
// bucket's Vec mutably.
unsafe impl Sync for StripedTable {}
unsafe impl Send for StripedTable {}

impl StripedTable {
    /// Table sized for roughly `expected` entries with `stripes` latches
    /// (rounded to a power of two).
    pub fn with_capacity(expected: usize, stripes: usize) -> Self {
        let n = next_pow2_at_least(expected * 2, 16);
        let s = next_pow2_at_least(stripes, 1).min(n);
        StripedTable {
            mask: n as u64 - 1,
            stripe_shift: (n / s).trailing_zeros(),
            stripes: (0..s).map(|_| Latch::new(())).collect(),
            buckets: (0..n)
                .map(|_| std::cell::UnsafeCell::new(Vec::new()))
                .collect(),
        }
    }

    #[inline]
    fn stripe_of(&self, bucket: usize) -> usize {
        bucket >> self.stripe_shift
    }

    /// Insert from any thread.
    #[inline]
    pub fn insert(&self, key: Key, ts: Ts) {
        let b = bucket_of(key, self.mask);
        let _guard = self.stripes[self.stripe_of(b)].lock();
        // SAFETY: stripe latch held (see type-level invariant).
        unsafe { (*self.buckets[b].get()).push((key, ts)) };
    }

    /// Call `f(ts)` for every stored entry with this key.
    #[inline]
    pub fn probe(&self, key: Key, mut f: impl FnMut(Ts)) {
        let b = bucket_of(key, self.mask);
        let _guard = self.stripes[self.stripe_of(b)].lock();
        // SAFETY: stripe latch held.
        for &(k, ts) in unsafe { (*self.buckets[b].get()).iter() } {
            if k == key {
                f(ts);
            }
        }
    }

    /// Total entries (takes every latch; diagnostics only).
    pub fn len(&self) -> usize {
        (0..self.buckets.len())
            .map(|b| {
                let _guard = self.stripes[self.stripe_of(b)].lock();
                // SAFETY: stripe latch held.
                unsafe { (*self.buckets[b].get()).len() }
            })
            .sum()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        let fixed = self.stripes.len() * std::mem::size_of::<Latch<()>>()
            + self.buckets.len() * std::mem::size_of::<Vec<(Key, Ts)>>();
        let chains: usize = (0..self.buckets.len())
            .map(|b| {
                let _guard = self.stripes[self.stripe_of(b)].lock();
                // SAFETY: stripe latch held.
                unsafe { (*self.buckets[b].get()).capacity() * std::mem::size_of::<(Key, Ts)>() }
            })
            .sum();
        fixed + chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_workers;

    #[test]
    fn local_insert_probe() {
        let mut t = LocalTable::with_capacity(8);
        t.insert(1, 100);
        t.insert(1, 200);
        t.insert(2, 300);
        let mut seen = Vec::new();
        t.probe(1, |ts| seen.push(ts));
        seen.sort_unstable();
        assert_eq!(seen, vec![100, 200]);
        assert_eq!(t.count(2), 1);
        assert_eq!(t.count(99), 0);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn local_handles_many_duplicates() {
        let mut t = LocalTable::with_capacity(4);
        for i in 0..1000 {
            t.insert(7, i);
        }
        assert_eq!(t.count(7), 1000);
    }

    #[test]
    fn local_grows_past_expected() {
        let mut t = LocalTable::with_capacity(2);
        for k in 0..100u32 {
            t.insert(k, k);
        }
        for k in 0..100u32 {
            assert_eq!(t.count(k), 1, "key {k}");
        }
    }

    #[test]
    fn local_bytes_nonzero() {
        let t = LocalTable::with_capacity(100);
        assert!(t.bytes() > 0);
    }

    #[test]
    fn shared_concurrent_build_then_probe() {
        let table = SharedTable::with_capacity(4096);
        run_workers(4, |tid| {
            for i in 0..1000u32 {
                table.insert(i % 256, tid as u32 * 10_000 + i);
            }
        });
        assert_eq!(table.len(), 4000);
        // Every key 0..256 was inserted ceil/floor(4000/256) times per the
        // modulo pattern: keys < 232 get 16, rest 15... actually each thread
        // inserts key k exactly |{i<1000 : i%256==k}| times.
        let expect = |k: u32| -> usize {
            let per_thread = (0..1000u32).filter(|i| i % 256 == k).count();
            per_thread * 4
        };
        for k in [0u32, 100, 255] {
            let mut n = 0;
            table.probe(k, |_| n += 1);
            assert_eq!(n, expect(k), "key {k}");
        }
    }

    #[test]
    fn shared_probe_missing_key() {
        let table = SharedTable::with_capacity(16);
        table.insert(1, 1);
        let mut n = 0;
        table.probe(2, |_| n += 1);
        assert_eq!(n, 0);
        assert!(!table.is_empty());
    }

    #[test]
    fn shared_contended_single_bucket() {
        // All threads hammer the same key: the per-bucket latch must
        // serialise correctly and lose no inserts.
        let table = SharedTable::with_capacity(1024);
        run_workers(8, |_| {
            for i in 0..500 {
                table.insert(42, i);
            }
        });
        let mut n = 0;
        table.probe(42, |_| n += 1);
        assert_eq!(n, 4000);
    }

    #[test]
    fn striped_concurrent_build_then_probe() {
        let table = StripedTable::with_capacity(4096, 64);
        run_workers(4, |tid| {
            for i in 0..1000u32 {
                table.insert(i % 256, tid as u32 * 10_000 + i);
            }
        });
        assert_eq!(table.len(), 4000);
        for k in [0u32, 100, 255] {
            let expect = (0..1000u32).filter(|i| i % 256 == k).count() * 4;
            let mut n = 0;
            table.probe(k, |_| n += 1);
            assert_eq!(n, expect, "key {k}");
        }
    }

    #[test]
    fn striped_single_stripe_still_correct() {
        // One stripe = a single global latch; correctness must not depend
        // on stripe granularity.
        let table = StripedTable::with_capacity(64, 1);
        run_workers(8, |_| {
            for i in 0..200 {
                table.insert(7, i);
            }
        });
        let mut n = 0;
        table.probe(7, |_| n += 1);
        assert_eq!(n, 1600);
        assert!(!table.is_empty());
    }

    #[test]
    fn shared_bytes_grows_with_content() {
        let table = SharedTable::with_capacity(16);
        let before = table.bytes();
        for i in 0..1000 {
            table.insert(i, i);
        }
        assert!(table.bytes() > before);
    }
}
