#![warn(missing_docs)]

//! Parallel runtime and shared join kernels.
//!
//! Every algorithm in the study is assembled from the primitives in this
//! crate, mirroring how the paper's codebase reuses Balkesen et al.'s kernels
//! across all eight algorithms (§4.2.2):
//!
//! - [`pool`] — scoped worker threads and barriers (the pthread harness).
//! - [`executor`] — the persistent worker-pool executor: parked, named,
//!   optionally pinned workers reused across runs and window closes, with
//!   the exact `run_workers` contract.
//! - [`topology`] — affinity-mask and CPU-topology discovery (SMT
//!   siblings, NUMA nodes) plus the `compact`/`scatter` placement plans
//!   and raw `sched_setaffinity` pinning, all dependency-free.
//! - [`morsel`] — morsel-driven work-stealing scheduler: the dynamic
//!   alternative to `pool::chunk_range` for skew-robust scans (Fig. 10).
//! - [`timer`] — per-thread phase timers; wall time stands in for RDTSC and
//!   is converted to cycles at the nominal 2.6 GHz of the paper's machine.
//! - [`radix`] — histogram-based radix partitioning, sequential and
//!   parallel (the PRJ substrate, also used by the Figure 18 sweep).
//! - [`sort`] — the two sort backends: a deliberately branchy scalar
//!   mergesort and a branchless, auto-vectorizable sorting-network variant
//!   standing in for the original AVX `avxsort` (Figure 21).
//! - [`merge`] — k-way (MWay) and successive pairwise (MPass) merging.
//! - [`mergejoin`] — the duplicate-aware sorted-merge join kernel, plus the
//!   run-provenance variant PMJ's merge phase needs.
//! - [`hashtable`] — NPJ's shared tables (per-bucket latched, striped, and
//!   lock-free CAS-chained) and the thread-local chained table used by PRJ
//!   and SHJ.
//! - [`swwc`] — software write-combining scatter buffers and the cachesim
//!   A/B harness validating their miss reduction (Fig. 18 / Table 5).
//! - [`window_index`] — the evictable hash index over resident window
//!   content that backs the IBWJ engine family.

pub mod executor;
pub mod hashtable;
pub mod latch;
pub mod merge;
pub mod mergejoin;
pub mod morsel;
pub mod pool;
pub mod radix;
pub mod sort;
pub mod swwc;
pub mod timer;
pub mod topology;
pub mod window_index;

pub use executor::{ExecMode, Executor};
pub use hashtable::{LocalTable, LockFreeTable, NpjTable, SharedTable, StripedTable};
pub use latch::Latch;
pub use morsel::{for_each_morsel, MorselQueue, MorselStats, Scheduler, DEFAULT_MORSEL};
pub use pool::run_workers;
pub use sort::SortBackend;
pub use swwc::{ScatterMode, SwwcBuffers, SWWC_TUPLES_PER_LINE};
pub use timer::{
    cpu_clock, ns_to_cycles, ClockSource, CpuClock, PhaseTimer, TimerParts, NOMINAL_GHZ,
};
pub use topology::{affinity_core_count, affinity_mask, CoreInfo, CpuSet, PinPolicy, Topology};
pub use window_index::WindowIndex;
