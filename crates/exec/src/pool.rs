//! Scoped worker threads — the study's stand-in for the original pthread
//! harness. Workers are plain OS threads created per run, which keeps every
//! run independent. For a single multi-millisecond batch join the spawn
//! cost is small, but it is *not* noise once the streaming service runs an
//! engine per window close (thousands of short runs per second) — that
//! regime is what the persistent, optionally pinned
//! [`Executor`](crate::executor::Executor) pool amortizes; `run_workers`
//! remains the reference implementation (`--executor spawn`) the pool is
//! differential-tested against.

use std::sync::Barrier;

/// Run `n` workers, each receiving its thread id `0..n`, and collect their
/// results in thread-id order. Worker 0 runs on the calling thread so a
/// single-threaded configuration has zero spawn overhead.
pub fn run_workers<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(n > 0, "need at least one worker");
    if n == 1 {
        return vec![f(0)];
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n - 1);
        for tid in 1..n {
            let f = &f;
            handles.push(scope.spawn(move || f(tid)));
        }
        results[0] = Some(f(0));
        for (tid, h) in handles.into_iter().enumerate() {
            let t = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            results[tid + 1] = Some(t);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every worker produced a result"))
        .collect()
}

/// A barrier sized for `n` workers — the synchronisation point between
/// NPJ's build and probe phases and between merge passes.
pub fn barrier(n: usize) -> Barrier {
    Barrier::new(n)
}

/// Split `len` items into `n` nearly-equal contiguous ranges; range `i` is
/// `chunk_range(len, n, i)`. The first `len % n` chunks get one extra item,
/// so the ranges exactly tile `0..len`.
#[inline]
pub fn chunk_range(len: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i < n);
    let base = len / n;
    let extra = len % n;
    let start = i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    start..end.min(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_tid_order() {
        let out = run_workers(4, |tid| tid * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let out = run_workers(1, |_| std::thread::current().id());
        assert_eq!(out[0], caller);
    }

    #[test]
    fn all_workers_execute() {
        let count = AtomicUsize::new(0);
        run_workers(8, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn barrier_synchronises() {
        let b = barrier(4);
        let max_before = AtomicUsize::new(0);
        run_workers(4, |tid| {
            max_before.fetch_max(tid, Ordering::SeqCst);
            b.wait();
            // After the barrier every tid must have been recorded.
            assert_eq!(max_before.load(Ordering::SeqCst), 3);
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_workers(4, |tid| {
                if tid == 2 {
                    panic!("injected failure");
                }
                tid
            })
        });
        let err = caught.expect_err("panic must propagate, not hang");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| err.downcast_ref::<String>().map(|s| s.as_str()))
            .unwrap_or("");
        assert!(msg.contains("injected failure"), "{msg}");
    }

    #[test]
    fn chunks_tile_exactly() {
        for len in [0usize, 1, 7, 8, 9, 100] {
            for n in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..n {
                    let r = chunk_range(len, n, i);
                    assert_eq!(r.start, prev_end, "len={len} n={n} i={i}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len, "len={len} n={n}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        for i in 0..3 {
            let r = chunk_range(10, 3, i);
            assert!(r.len() == 3 || r.len() == 4);
        }
    }
}
