//! The two sort backends of the study.
//!
//! The paper's sort-based algorithms use the AVX `avxsort` of Balkesen et
//! al. (bitonic sorting networks in SIMD registers) and compare against a
//! non-SIMD build (Figure 21). Raw AVX intrinsics are not portable, so the
//! substitution here is at the codegen level:
//!
//! - [`SortBackend::Vectorized`] sorts 8-element blocks with a branchless
//!   Batcher odd-even network and merges runs with a branch-free two-way
//!   merge. Under [`KernelBackend::Simd`] on an AVX2 CPU the network and
//!   the merge are *explicit* intrinsics: the same 19-comparator network
//!   evaluated over two 4×64-bit registers, and a streamed 16-lane bitonic
//!   merge kernel (Balkesen et al.'s `avxsort` shape). Under
//!   [`KernelBackend::Scalar`] it keeps the portable min/max data flow
//!   that merely *invites* autovectorization — the Figure 21 A/B.
//! - [`SortBackend::Scalar`] sorts blocks by insertion sort and merges with
//!   data-dependent branches — the shape a non-SIMD `-no-avx` build takes.
//!
//! Both sort *packed* tuples: `(key << 32) | ts` in a `u64`, so an unsigned
//! integer sort is exactly a `(key, ts)` sort (see `Tuple::pack`).

use iawj_common::{KernelBackend, Tuple};

/// Which sort implementation to use. The runtime flag mirrors the paper's
/// "with/without AVX" build switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortBackend {
    /// Branchy insertion-sort blocks + branching merges (the no-SIMD build).
    Scalar,
    /// Branchless sorting-network blocks + branch-free merges (the SIMD
    /// stand-in). Default, as in the paper.
    #[default]
    Vectorized,
}

impl SortBackend {
    /// Short label for harness output.
    pub fn label(self) -> &'static str {
        match self {
            SortBackend::Scalar => "scalar",
            SortBackend::Vectorized => "vectorized",
        }
    }
}

/// Pack tuples for sorting.
pub fn pack_tuples(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.pack()).collect()
}

/// Unpack a sorted packed array back into tuples.
pub fn unpack_tuples(packed: &[u64]) -> Vec<Tuple> {
    packed.iter().map(|&p| Tuple::unpack(p)).collect()
}

/// Sort packed values ascending with the chosen backend.
///
/// ```
/// use iawj_exec::sort::{sort_packed, SortBackend};
///
/// let mut v = vec![5u64, 1, 4, 2, 3];
/// sort_packed(&mut v, SortBackend::Vectorized);
/// assert_eq!(v, [1, 2, 3, 4, 5]);
/// ```
pub fn sort_packed(data: &mut [u64], backend: SortBackend) {
    sort_packed_kernel(data, backend, KernelBackend::default());
}

/// Sort packed values ascending with the chosen backend and kernel. The
/// kernel axis only matters for [`SortBackend::Vectorized`]: `Simd` takes
/// the explicit AVX2 network/merge when the CPU has AVX2 (and the build is
/// not under Miri), `Scalar` keeps the portable branchless path. Output is
/// bitwise-identical either way — sorted `u64`s are unique.
///
/// Unoptimized builds skip the AVX2 route: without inlining every
/// `_mm256_*` lane op is a function call, making the network ~25x slower
/// than the scalar path and wrecking wall-clock-sensitive debug tests.
/// The AVX2 functions keep their own unit tests (0-1 principle, merge
/// differential) in every profile; release builds take the real path.
pub fn sort_packed_kernel(data: &mut [u64], backend: SortBackend, kernel: KernelBackend) {
    match backend {
        SortBackend::Scalar => sort_scalar(data),
        SortBackend::Vectorized => {
            #[cfg(all(target_arch = "x86_64", not(miri), not(debug_assertions)))]
            if kernel.is_simd() && std::arch::is_x86_feature_detected!("avx2") {
                sort_simd_avx2(data);
                return;
            }
            let _ = kernel;
            sort_vectorized(data);
        }
    }
}

/// Convenience: sort a tuple slice by `(key, ts)` via packing.
pub fn sort_tuples(tuples: &mut [Tuple], backend: SortBackend) {
    sort_tuples_kernel(tuples, backend, KernelBackend::default());
}

/// [`sort_tuples`] with an explicit kernel backend.
pub fn sort_tuples_kernel(tuples: &mut [Tuple], backend: SortBackend, kernel: KernelBackend) {
    let mut packed = pack_tuples(tuples);
    sort_packed_kernel(&mut packed, backend, kernel);
    for (t, &p) in tuples.iter_mut().zip(packed.iter()) {
        *t = Tuple::unpack(p);
    }
}

// ---------------------------------------------------------------------------
// Scalar backend
// ---------------------------------------------------------------------------

const SCALAR_BLOCK: usize = 32;

fn insertion_sort(data: &mut [u64]) {
    for i in 1..data.len() {
        let v = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > v {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = v;
    }
}

/// Branching two-way merge of `src[lo..mid]` and `src[mid..hi]` into
/// `dst[lo..hi]`.
fn merge_branching(src: &[u64], dst: &mut [u64], lo: usize, mid: usize, hi: usize) {
    let (mut i, mut j, mut k) = (lo, mid, lo);
    while i < mid && j < hi {
        if src[i] <= src[j] {
            dst[k] = src[i];
            i += 1;
        } else {
            dst[k] = src[j];
            j += 1;
        }
        k += 1;
    }
    if i < mid {
        dst[k..hi].copy_from_slice(&src[i..mid]);
    } else {
        dst[k..hi].copy_from_slice(&src[j..hi]);
    }
}

fn sort_scalar(data: &mut [u64]) {
    bottom_up_mergesort(data, SCALAR_BLOCK, insertion_sort, merge_branching);
}

// ---------------------------------------------------------------------------
// Vectorized backend
// ---------------------------------------------------------------------------

/// Branchless compare-exchange: after the call `a <= b`.
#[inline(always)]
fn cswap(data: &mut [u64], i: usize, j: usize) {
    let (a, b) = (data[i], data[j]);
    data[i] = a.min(b);
    data[j] = a.max(b);
}

/// Batcher odd-even sorting network for 8 elements (19 comparators). Pure
/// min/max data flow: no data-dependent branches, so the compiler can map
/// it onto SIMD min/max lanes.
#[inline]
fn sort8_network(data: &mut [u64]) {
    debug_assert!(data.len() >= 8);
    cswap(data, 0, 1);
    cswap(data, 2, 3);
    cswap(data, 4, 5);
    cswap(data, 6, 7);
    cswap(data, 0, 2);
    cswap(data, 1, 3);
    cswap(data, 4, 6);
    cswap(data, 5, 7);
    cswap(data, 1, 2);
    cswap(data, 5, 6);
    cswap(data, 0, 4);
    cswap(data, 1, 5);
    cswap(data, 2, 6);
    cswap(data, 3, 7);
    cswap(data, 2, 4);
    cswap(data, 3, 5);
    cswap(data, 1, 2);
    cswap(data, 3, 4);
    cswap(data, 5, 6);
}

fn sort_blocks_network(data: &mut [u64]) {
    let mut chunks = data.chunks_exact_mut(8);
    for c in &mut chunks {
        sort8_network(c);
    }
    insertion_sort(chunks.into_remainder());
}

/// Branch-free two-way merge: selection and cursor advances are arithmetic
/// on the comparison mask, which compiles to conditional moves.
fn merge_branchless(src: &[u64], dst: &mut [u64], lo: usize, mid: usize, hi: usize) {
    let (mut i, mut j, mut k) = (lo, mid, lo);
    while i < mid && j < hi {
        let a = src[i];
        let b = src[j];
        let take_a = a <= b;
        dst[k] = if take_a { a } else { b };
        i += take_a as usize;
        j += !take_a as usize;
        k += 1;
    }
    if i < mid {
        dst[k..hi].copy_from_slice(&src[i..mid]);
    } else {
        dst[k..hi].copy_from_slice(&src[j..hi]);
    }
}

fn sort_vectorized(data: &mut [u64]) {
    bottom_up_mergesort(data, 8, sort_blocks_network, merge_branchless);
}

// ---------------------------------------------------------------------------
// Explicit AVX2 path (KernelBackend::Simd)
// ---------------------------------------------------------------------------

/// The AVX2 sort: the same bottom-up driver, but 8-blocks go through the
/// register-resident sorting network and runs through the streamed bitonic
/// merge. Caller must have verified AVX2 support.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[cfg_attr(debug_assertions, allow(dead_code))]
fn sort_simd_avx2(data: &mut [u64]) {
    bottom_up_mergesort(
        data,
        8,
        // SAFETY: AVX2 presence was checked by `sort_packed_kernel`.
        |chunk| unsafe { avx2::sort_blocks(chunk) },
        |src, dst, lo, mid, hi| unsafe { avx2::merge_runs(src, dst, lo, mid, hi) },
    );
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2 {
    //! The register-level kernels. AVX2 has no unsigned 64-bit compare, so
    //! min/max flips the sign bit and uses the signed `vpcmpgtq` — exact
    //! for the full `u64` range. The 8-element network is the identical
    //! 19-comparator Batcher network as [`super::sort8_network`], expressed
    //! as lane permutations + min/max + blends over two 4×64-bit registers;
    //! run merging is a 16-lane bitonic merge streamed with an 8-element
    //! carry, pulling the next block from whichever run's head is smaller
    //! (the structure of Balkesen et al.'s `avxsort` / Inoue's SIMD merge).

    use super::{insertion_sort, merge_branchless};
    use core::arch::x86_64::*;

    /// Unsigned per-lane min/max of two 4×u64 registers.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn minmax(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign), _mm256_xor_si256(b, sign));
        let mn = _mm256_blendv_epi8(a, b, gt);
        let mx = _mm256_blendv_epi8(b, a, gt);
        (mn, mx)
    }

    /// In-register compare-exchange: permute lanes by `PERM`, min/max, then
    /// keep mins except at the `BLEND`-selected 32-bit lanes (the "upper"
    /// side of each comparator), which take the maxes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cswap_perm<const PERM: i32, const BLEND: i32>(v: __m256i) -> __m256i {
        let p = _mm256_permute4x64_epi64::<PERM>(v);
        let (mn, mx) = minmax(v, p);
        _mm256_blend_epi32::<BLEND>(mn, mx)
    }

    /// Sort 8 `u64`s held in two registers; same comparator schedule as the
    /// scalar network: (0,1)(2,3)(4,5)(6,7) / (0,2)(1,3)(4,6)(5,7) /
    /// (1,2)(5,6) / (0,4)(1,5)(2,6)(3,7) / (2,4)(3,5) / (1,2)(3,4)(5,6).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sort8(mut v0: __m256i, mut v1: __m256i) -> (__m256i, __m256i) {
        // (0,1)(2,3) and (4,5)(6,7): neighbour exchange within registers.
        v0 = cswap_perm::<0xB1, 0xCC>(v0);
        v1 = cswap_perm::<0xB1, 0xCC>(v1);
        // (0,2)(1,3) and (4,6)(5,7): distance-2 exchange.
        v0 = cswap_perm::<0x4E, 0xF0>(v0);
        v1 = cswap_perm::<0x4E, 0xF0>(v1);
        // (1,2) and (5,6): middle-lane exchange (lanes 0,3 self-compare).
        v0 = cswap_perm::<0xD8, 0x30>(v0);
        v1 = cswap_perm::<0xD8, 0x30>(v1);
        // (0,4)(1,5)(2,6)(3,7): vertical across the two registers.
        let (mn, mx) = minmax(v0, v1);
        v0 = mn;
        v1 = mx;
        // (2,4)(3,5): gather [x2,x3,x4,x5], exchange across its halves.
        let cross = _mm256_permute2x128_si256::<0x21>(v0, v1);
        let (mn, mx) = minmax(cross, _mm256_permute4x64_epi64::<0x4E>(cross));
        v0 = _mm256_permute2x128_si256::<0x20>(v0, mn);
        v1 = _mm256_permute2x128_si256::<0x31>(mx, v1);
        // (1,2) and (5,6) again, then (3,4) through the same cross gather.
        v0 = cswap_perm::<0xD8, 0x30>(v0);
        v1 = cswap_perm::<0xD8, 0x30>(v1);
        let cross = _mm256_permute2x128_si256::<0x21>(v0, v1);
        let cross = cswap_perm::<0xD8, 0x30>(cross);
        v0 = _mm256_permute2x128_si256::<0x20>(v0, cross);
        v1 = _mm256_permute2x128_si256::<0x31>(cross, v1);
        (v0, v1)
    }

    /// Bitonic merge of one bitonic 8-sequence spread over two registers.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bitonic_merge8(v0: __m256i, v1: __m256i) -> (__m256i, __m256i) {
        // Distance 4: vertical; then distances 2 and 1 within registers.
        let (mn, mx) = minmax(v0, v1);
        let v0 = cswap_perm::<0xB1, 0xCC>(cswap_perm::<0x4E, 0xF0>(mn));
        let v1 = cswap_perm::<0xB1, 0xCC>(cswap_perm::<0x4E, 0xF0>(mx));
        (v0, v1)
    }

    /// Merge two sorted 8-runs `(a0,a1)` and `(b0,b1)` into a sorted
    /// 16-sequence `(r0,r1,r2,r3)`: reverse `b` to form a bitonic 16, one
    /// distance-8 exchange, then an 8-lane bitonic merge per half.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn merge16(
        a0: __m256i,
        a1: __m256i,
        b0: __m256i,
        b1: __m256i,
    ) -> (__m256i, __m256i, __m256i, __m256i) {
        let rb0 = _mm256_permute4x64_epi64::<0x1B>(b1);
        let rb1 = _mm256_permute4x64_epi64::<0x1B>(b0);
        let (lo0, hi0) = minmax(a0, rb0);
        let (lo1, hi1) = minmax(a1, rb1);
        let (r0, r1) = bitonic_merge8(lo0, lo1);
        let (r2, r3) = bitonic_merge8(hi0, hi1);
        (r0, r1, r2, r3)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load8(p: *const u64) -> (__m256i, __m256i) {
        (
            _mm256_loadu_si256(p as *const __m256i),
            _mm256_loadu_si256(p.add(4) as *const __m256i),
        )
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store8(p: *mut u64, v0: __m256i, v1: __m256i) {
        _mm256_storeu_si256(p as *mut __m256i, v0);
        _mm256_storeu_si256(p.add(4) as *mut __m256i, v1);
    }

    /// Block sorter: full 8-blocks through the register network, short tail
    /// through insertion sort (exactly like the portable block sorter).
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sort_blocks(data: &mut [u64]) {
        let mut chunks = data.chunks_exact_mut(8);
        for c in &mut chunks {
            let p = c.as_mut_ptr();
            let (v0, v1) = sort8(_mm256_loadu_si256(p as *const __m256i), {
                _mm256_loadu_si256(p.add(4) as *const __m256i)
            });
            store8(p, v0, v1);
        }
        insertion_sort(chunks.into_remainder());
    }

    /// Streamed merge of `src[lo..mid]` and `src[mid..hi]` into
    /// `dst[lo..hi]`: keep an 8-element sorted carry in registers, pull the
    /// next 8-block from whichever run's head is smaller, `merge16`, emit
    /// the low 8, keep the high 8. Short runs and tails fall back to the
    /// scalar branchless merge.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn merge_runs(src: &[u64], dst: &mut [u64], lo: usize, mid: usize, hi: usize) {
        if mid - lo < 8 || hi - mid < 8 {
            merge_branchless(src, dst, lo, mid, hi);
            return;
        }
        let a = &src[lo..mid];
        let b = &src[mid..hi];
        let out = &mut dst[lo..hi];
        let (a0, a1) = load8(a.as_ptr());
        let (b0, b1) = load8(b.as_ptr());
        let (mut i, mut j) = (8usize, 8usize);
        let (r0, r1, mut c0, mut c1) = merge16(a0, a1, b0, b1);
        store8(out.as_mut_ptr(), r0, r1);
        let mut k = 8usize;
        loop {
            // Pull from the run whose next element is smaller; stop as soon
            // as the designated run cannot supply a full block.
            let pull_a = match (i < a.len(), j < b.len()) {
                (true, true) => a[i] <= b[j],
                (true, false) => true,
                (false, true) => false,
                (false, false) => break,
            };
            let (run, pos) = if pull_a { (a, &mut i) } else { (b, &mut j) };
            if *pos + 8 > run.len() {
                break;
            }
            let (n0, n1) = load8(run.as_ptr().add(*pos));
            *pos += 8;
            let (r0, r1, h0, h1) = merge16(n0, n1, c0, c1);
            store8(out.as_mut_ptr().add(k), r0, r1);
            k += 8;
            c0 = h0;
            c1 = h1;
        }
        // Drain: three-way scalar merge of the register carry and whatever
        // is left of each run.
        let mut carry = [0u64; 8];
        store8(carry.as_mut_ptr(), c0, c1);
        let mut ci = 0usize;
        while k < out.len() {
            let c_ok = ci < carry.len();
            let a_ok = i < a.len();
            let b_ok = j < b.len();
            let take_c = c_ok && (!a_ok || carry[ci] <= a[i]) && (!b_ok || carry[ci] <= b[j]);
            if take_c {
                out[k] = carry[ci];
                ci += 1;
            } else if a_ok && (!b_ok || a[i] <= b[j]) {
                out[k] = a[i];
                i += 1;
            } else {
                out[k] = b[j];
                j += 1;
            }
            k += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Shared bottom-up driver
// ---------------------------------------------------------------------------

/// Bottom-up mergesort: sort fixed blocks with `block_sort`, then double run
/// width each pass, ping-ponging between `data` and one scratch buffer.
fn bottom_up_mergesort(
    data: &mut [u64],
    block: usize,
    block_sort: impl Fn(&mut [u64]),
    merge: impl Fn(&[u64], &mut [u64], usize, usize, usize),
) {
    let n = data.len();
    if n <= block {
        block_sort(data);
        return;
    }
    if block > 1 {
        for chunk in data.chunks_mut(block) {
            // chunks_mut gives the tail its true (shorter) length, which
            // both block sorters handle.
            block_sort(chunk);
        }
    }
    let mut scratch = vec![0u64; n];
    let mut src_is_data = true;
    let mut width = block;
    while width < n {
        {
            let (src, dst): (&[u64], &mut [u64]) = if src_is_data {
                (data, &mut scratch)
            } else {
                (&scratch, data)
            };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                if mid < hi {
                    merge(src, dst, lo, mid, hi);
                } else {
                    dst[lo..hi].copy_from_slice(&src[lo..hi]);
                }
                lo = hi;
            }
        }
        src_is_data = !src_is_data;
        width *= 2;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Rng;

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn sort8_network_is_a_sorting_network() {
        // 0-1 principle: a comparator network sorts all inputs iff it sorts
        // all 2^8 zero-one sequences.
        for mask in 0u32..256 {
            let mut v: Vec<u64> = (0..8).map(|b| ((mask >> b) & 1) as u64).collect();
            sort8_network(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "mask {mask:08b}: {v:?}");
        }
    }

    #[test]
    fn both_backends_sort_correctly() {
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            for n in [0usize, 1, 2, 7, 8, 9, 31, 32, 33, 100, 1000, 4097] {
                let mut v = random_vec(n, n as u64 + 1);
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_packed(&mut v, backend);
                assert_eq!(v, expect, "backend {backend:?} n={n}");
            }
        }
    }

    #[test]
    fn kernel_backends_agree_bitwise() {
        // `--kernel scalar` vs `--kernel simd` must produce bitwise-identical
        // output; for sorted u64 slices the output is unique, so comparing
        // against `sort_unstable` covers both.
        use iawj_common::KernelBackend;
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            for n in [
                0usize, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 1000, 4097,
            ] {
                let mut expect = random_vec(n, 7 * n as u64 + 13);
                let mut scalar = expect.clone();
                let mut simd = expect.clone();
                expect.sort_unstable();
                sort_packed_kernel(&mut scalar, backend, KernelBackend::Scalar);
                sort_packed_kernel(&mut simd, backend, KernelBackend::Simd);
                assert_eq!(scalar, expect, "scalar kernel, backend {backend:?} n={n}");
                assert_eq!(simd, expect, "simd kernel, backend {backend:?} n={n}");
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn avx2_sort8_is_a_sorting_network() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // 0-1 principle over the register-resident network, plus boundary
        // extremes to exercise the unsigned min/max at the sign-bit edge.
        for mask in 0u32..256 {
            let mut v: Vec<u64> = (0..8)
                .map(|b| if (mask >> b) & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            unsafe { avx2::sort_blocks(&mut v) };
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "mask {mask:08b}: {v:?}");
        }
        let mut v = vec![
            u64::MAX,
            0,
            i64::MAX as u64,
            i64::MAX as u64 + 1,
            1,
            u64::MAX - 1,
            42,
            i64::MAX as u64,
        ];
        let mut expect = v.clone();
        expect.sort_unstable();
        unsafe { avx2::sort_blocks(&mut v) };
        assert_eq!(v, expect);
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn avx2_merge_runs_matches_branchless() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut rng = Rng::new(99);
        for (la, lb) in [
            (8usize, 8usize),
            (8, 9),
            (9, 8),
            (16, 16),
            (7, 100),
            (100, 7),
            (64, 33),
            (33, 64),
            (128, 128),
            (1, 1),
            (0, 16),
            (16, 0),
            (200, 3),
        ] {
            let mut a: Vec<u64> = (0..la).map(|_| rng.next_u64() % 1000).collect();
            let mut b: Vec<u64> = (0..lb).map(|_| rng.next_u64() % 1000).collect();
            a.sort_unstable();
            b.sort_unstable();
            let src: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            let mut got = vec![0u64; la + lb];
            let mut expect = vec![0u64; la + lb];
            unsafe { avx2::merge_runs(&src, &mut got, 0, la, la + lb) };
            merge_branchless(&src, &mut expect, 0, la, la + lb);
            assert_eq!(got, expect, "la={la} lb={lb}");
        }
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            let mut asc: Vec<u64> = (0..500).collect();
            sort_packed(&mut asc, backend);
            assert!(asc.windows(2).all(|w| w[0] <= w[1]));
            let mut desc: Vec<u64> = (0..500).rev().collect();
            sort_packed(&mut desc, backend);
            assert!(desc.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn handles_duplicates() {
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            let mut v = vec![5u64; 100];
            v.extend(std::iter::repeat_n(3u64, 50));
            sort_packed(&mut v, backend);
            assert_eq!(&v[..50], &[3u64; 50][..]);
            assert_eq!(&v[50..], &[5u64; 100][..]);
        }
    }

    #[test]
    fn sort_tuples_orders_by_key_then_ts() {
        let mut tuples = vec![
            Tuple::new(2, 0),
            Tuple::new(1, 7),
            Tuple::new(1, 3),
            Tuple::new(0, 9),
        ];
        sort_tuples(&mut tuples, SortBackend::Vectorized);
        assert_eq!(
            tuples,
            vec![
                Tuple::new(0, 9),
                Tuple::new(1, 3),
                Tuple::new(1, 7),
                Tuple::new(2, 0)
            ]
        );
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let tuples: Vec<Tuple> = (0..100).map(|i| Tuple::new(i * 3, i)).collect();
        assert_eq!(unpack_tuples(&pack_tuples(&tuples)), tuples);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(SortBackend::Scalar.label(), "scalar");
        assert_eq!(SortBackend::Vectorized.label(), "vectorized");
        assert_eq!(SortBackend::default(), SortBackend::Vectorized);
    }
}
