//! The two sort backends of the study.
//!
//! The paper's sort-based algorithms use the AVX `avxsort` of Balkesen et
//! al. (bitonic sorting networks in SIMD registers) and compare against a
//! non-SIMD build (Figure 21). Raw AVX intrinsics are not portable, so the
//! substitution here is at the codegen level:
//!
//! - [`SortBackend::Vectorized`] sorts 8-element blocks with a branchless
//!   Batcher odd-even network (pure `min`/`max` data flow that LLVM
//!   auto-vectorizes) and merges runs with a branch-free two-way merge.
//! - [`SortBackend::Scalar`] sorts blocks by insertion sort and merges with
//!   data-dependent branches — the shape a non-SIMD `-no-avx` build takes.
//!
//! Both sort *packed* tuples: `(key << 32) | ts` in a `u64`, so an unsigned
//! integer sort is exactly a `(key, ts)` sort (see `Tuple::pack`).

use iawj_common::Tuple;

/// Which sort implementation to use. The runtime flag mirrors the paper's
/// "with/without AVX" build switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortBackend {
    /// Branchy insertion-sort blocks + branching merges (the no-SIMD build).
    Scalar,
    /// Branchless sorting-network blocks + branch-free merges (the SIMD
    /// stand-in). Default, as in the paper.
    #[default]
    Vectorized,
}

impl SortBackend {
    /// Short label for harness output.
    pub fn label(self) -> &'static str {
        match self {
            SortBackend::Scalar => "scalar",
            SortBackend::Vectorized => "vectorized",
        }
    }
}

/// Pack tuples for sorting.
pub fn pack_tuples(tuples: &[Tuple]) -> Vec<u64> {
    tuples.iter().map(|t| t.pack()).collect()
}

/// Unpack a sorted packed array back into tuples.
pub fn unpack_tuples(packed: &[u64]) -> Vec<Tuple> {
    packed.iter().map(|&p| Tuple::unpack(p)).collect()
}

/// Sort packed values ascending with the chosen backend.
///
/// ```
/// use iawj_exec::sort::{sort_packed, SortBackend};
///
/// let mut v = vec![5u64, 1, 4, 2, 3];
/// sort_packed(&mut v, SortBackend::Vectorized);
/// assert_eq!(v, [1, 2, 3, 4, 5]);
/// ```
pub fn sort_packed(data: &mut [u64], backend: SortBackend) {
    match backend {
        SortBackend::Scalar => sort_scalar(data),
        SortBackend::Vectorized => sort_vectorized(data),
    }
}

/// Convenience: sort a tuple slice by `(key, ts)` via packing.
pub fn sort_tuples(tuples: &mut [Tuple], backend: SortBackend) {
    let mut packed = pack_tuples(tuples);
    sort_packed(&mut packed, backend);
    for (t, &p) in tuples.iter_mut().zip(packed.iter()) {
        *t = Tuple::unpack(p);
    }
}

// ---------------------------------------------------------------------------
// Scalar backend
// ---------------------------------------------------------------------------

const SCALAR_BLOCK: usize = 32;

fn insertion_sort(data: &mut [u64]) {
    for i in 1..data.len() {
        let v = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > v {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = v;
    }
}

/// Branching two-way merge of `src[lo..mid]` and `src[mid..hi]` into
/// `dst[lo..hi]`.
fn merge_branching(src: &[u64], dst: &mut [u64], lo: usize, mid: usize, hi: usize) {
    let (mut i, mut j, mut k) = (lo, mid, lo);
    while i < mid && j < hi {
        if src[i] <= src[j] {
            dst[k] = src[i];
            i += 1;
        } else {
            dst[k] = src[j];
            j += 1;
        }
        k += 1;
    }
    if i < mid {
        dst[k..hi].copy_from_slice(&src[i..mid]);
    } else {
        dst[k..hi].copy_from_slice(&src[j..hi]);
    }
}

fn sort_scalar(data: &mut [u64]) {
    bottom_up_mergesort(data, SCALAR_BLOCK, insertion_sort, merge_branching);
}

// ---------------------------------------------------------------------------
// Vectorized backend
// ---------------------------------------------------------------------------

/// Branchless compare-exchange: after the call `a <= b`.
#[inline(always)]
fn cswap(data: &mut [u64], i: usize, j: usize) {
    let (a, b) = (data[i], data[j]);
    data[i] = a.min(b);
    data[j] = a.max(b);
}

/// Batcher odd-even sorting network for 8 elements (19 comparators). Pure
/// min/max data flow: no data-dependent branches, so the compiler can map
/// it onto SIMD min/max lanes.
#[inline]
fn sort8_network(data: &mut [u64]) {
    debug_assert!(data.len() >= 8);
    cswap(data, 0, 1);
    cswap(data, 2, 3);
    cswap(data, 4, 5);
    cswap(data, 6, 7);
    cswap(data, 0, 2);
    cswap(data, 1, 3);
    cswap(data, 4, 6);
    cswap(data, 5, 7);
    cswap(data, 1, 2);
    cswap(data, 5, 6);
    cswap(data, 0, 4);
    cswap(data, 1, 5);
    cswap(data, 2, 6);
    cswap(data, 3, 7);
    cswap(data, 2, 4);
    cswap(data, 3, 5);
    cswap(data, 1, 2);
    cswap(data, 3, 4);
    cswap(data, 5, 6);
}

fn sort_blocks_network(data: &mut [u64]) {
    let mut chunks = data.chunks_exact_mut(8);
    for c in &mut chunks {
        sort8_network(c);
    }
    insertion_sort(chunks.into_remainder());
}

/// Branch-free two-way merge: selection and cursor advances are arithmetic
/// on the comparison mask, which compiles to conditional moves.
fn merge_branchless(src: &[u64], dst: &mut [u64], lo: usize, mid: usize, hi: usize) {
    let (mut i, mut j, mut k) = (lo, mid, lo);
    while i < mid && j < hi {
        let a = src[i];
        let b = src[j];
        let take_a = a <= b;
        dst[k] = if take_a { a } else { b };
        i += take_a as usize;
        j += !take_a as usize;
        k += 1;
    }
    if i < mid {
        dst[k..hi].copy_from_slice(&src[i..mid]);
    } else {
        dst[k..hi].copy_from_slice(&src[j..hi]);
    }
}

fn sort_vectorized(data: &mut [u64]) {
    bottom_up_mergesort(data, 8, sort_blocks_network, merge_branchless);
}

// ---------------------------------------------------------------------------
// Shared bottom-up driver
// ---------------------------------------------------------------------------

/// Bottom-up mergesort: sort fixed blocks with `block_sort`, then double run
/// width each pass, ping-ponging between `data` and one scratch buffer.
fn bottom_up_mergesort(
    data: &mut [u64],
    block: usize,
    block_sort: impl Fn(&mut [u64]),
    merge: impl Fn(&[u64], &mut [u64], usize, usize, usize),
) {
    let n = data.len();
    if n <= block {
        block_sort(data);
        return;
    }
    if block > 1 {
        for chunk in data.chunks_mut(block) {
            // chunks_mut gives the tail its true (shorter) length, which
            // both block sorters handle.
            block_sort(chunk);
        }
    }
    let mut scratch = vec![0u64; n];
    let mut src_is_data = true;
    let mut width = block;
    while width < n {
        {
            let (src, dst): (&[u64], &mut [u64]) = if src_is_data {
                (data, &mut scratch)
            } else {
                (&scratch, data)
            };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                if mid < hi {
                    merge(src, dst, lo, mid, hi);
                } else {
                    dst[lo..hi].copy_from_slice(&src[lo..hi]);
                }
                lo = hi;
            }
        }
        src_is_data = !src_is_data;
        width *= 2;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Rng;

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn sort8_network_is_a_sorting_network() {
        // 0-1 principle: a comparator network sorts all inputs iff it sorts
        // all 2^8 zero-one sequences.
        for mask in 0u32..256 {
            let mut v: Vec<u64> = (0..8).map(|b| ((mask >> b) & 1) as u64).collect();
            sort8_network(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "mask {mask:08b}: {v:?}");
        }
    }

    #[test]
    fn both_backends_sort_correctly() {
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            for n in [0usize, 1, 2, 7, 8, 9, 31, 32, 33, 100, 1000, 4097] {
                let mut v = random_vec(n, n as u64 + 1);
                let mut expect = v.clone();
                expect.sort_unstable();
                sort_packed(&mut v, backend);
                assert_eq!(v, expect, "backend {backend:?} n={n}");
            }
        }
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            let mut asc: Vec<u64> = (0..500).collect();
            sort_packed(&mut asc, backend);
            assert!(asc.windows(2).all(|w| w[0] <= w[1]));
            let mut desc: Vec<u64> = (0..500).rev().collect();
            sort_packed(&mut desc, backend);
            assert!(desc.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn handles_duplicates() {
        for &backend in &[SortBackend::Scalar, SortBackend::Vectorized] {
            let mut v = vec![5u64; 100];
            v.extend(std::iter::repeat_n(3u64, 50));
            sort_packed(&mut v, backend);
            assert_eq!(&v[..50], &[3u64; 50][..]);
            assert_eq!(&v[50..], &[5u64; 100][..]);
        }
    }

    #[test]
    fn sort_tuples_orders_by_key_then_ts() {
        let mut tuples = vec![
            Tuple::new(2, 0),
            Tuple::new(1, 7),
            Tuple::new(1, 3),
            Tuple::new(0, 9),
        ];
        sort_tuples(&mut tuples, SortBackend::Vectorized);
        assert_eq!(
            tuples,
            vec![
                Tuple::new(0, 9),
                Tuple::new(1, 3),
                Tuple::new(1, 7),
                Tuple::new(2, 0)
            ]
        );
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let tuples: Vec<Tuple> = (0..100).map(|i| Tuple::new(i * 3, i)).collect();
        assert_eq!(unpack_tuples(&pack_tuples(&tuples)), tuples);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(SortBackend::Scalar.label(), "scalar");
        assert_eq!(SortBackend::Vectorized.label(), "vectorized");
        assert_eq!(SortBackend::default(), SortBackend::Vectorized);
    }
}
