//! Histogram-based radix partitioning — the substrate of the Parallel Radix
//! Join (PRJ) and of the Figure 18 `#radix-bits` sensitivity study.
//!
//! Tuples are partitioned on the binary digits of their *keys* (not a hash),
//! exactly as Kim et al.'s original PRJ does: `partition = (key >> shift) &
//! (fanout-1)`. The parallel variant follows the classic three-step shape —
//! per-thread histograms, global prefix sums, contention-free scatter into
//! disjoint output ranges.

use crate::executor::Executor;
use crate::pool::chunk_range;
use iawj_common::kernel::{partition_batch8, HASH_BLOCK};
use iawj_common::{KernelBackend, Key, Tuple};

/// Number of partitions produced by `bits` radix bits.
#[inline]
pub const fn fanout(bits: u32) -> usize {
    1 << bits
}

/// Partition index of a key for the given pass.
#[inline]
pub fn partition_of(key: Key, shift: u32, bits: u32) -> usize {
    ((key >> shift) as usize) & (fanout(bits) - 1)
}

/// Per-partition counts of a tuple slice.
pub fn histogram(tuples: &[Tuple], shift: u32, bits: u32) -> Vec<u32> {
    histogram_kernel(tuples, shift, bits, KernelBackend::Scalar)
}

/// [`histogram`] with a selectable derivation kernel: under
/// [`KernelBackend::Simd`] partition indices come 8 keys at a time from the
/// batched shift-and-mask kernel. Counts are bitwise-identical across
/// backends — the derivation is pure bit arithmetic either way.
pub fn histogram_kernel(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    kernel: KernelBackend,
) -> Vec<u32> {
    let mut hist = vec![0u32; fanout(bits)];
    if kernel.is_simd() {
        let mask32 = (fanout(bits) - 1) as u32;
        let mut chunks = tuples.chunks_exact(HASH_BLOCK);
        let mut keys = [0 as Key; HASH_BLOCK];
        for block in &mut chunks {
            for (k, t) in keys.iter_mut().zip(block) {
                *k = t.key;
            }
            for p in partition_batch8(kernel, &keys, shift, mask32) {
                hist[p] += 1;
            }
        }
        for t in chunks.remainder() {
            hist[partition_of(t.key, shift, bits)] += 1;
        }
    } else {
        for t in tuples {
            hist[partition_of(t.key, shift, bits)] += 1;
        }
    }
    hist
}

/// A radix-partitioned relation: `data[bounds[p]..bounds[p+1]]` is
/// partition `p`.
#[derive(Clone, Debug)]
pub struct Partitioned {
    /// Tuples grouped by partition.
    pub data: Vec<Tuple>,
    /// Partition boundaries; length `fanout + 1`, first 0, last `data.len()`.
    pub bounds: Vec<usize>,
}

impl Partitioned {
    /// Number of partitions.
    pub fn fanout(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Tuples of partition `p`.
    #[inline]
    pub fn partition(&self, p: usize) -> &[Tuple] {
        &self.data[self.bounds[p]..self.bounds[p + 1]]
    }
}

/// Sequential single-pass partitioning.
pub fn partition_seq(tuples: &[Tuple], shift: u32, bits: u32) -> Partitioned {
    partition_seq_kernel(tuples, shift, bits, KernelBackend::Scalar)
}

/// [`partition_seq`] with a selectable derivation kernel (see
/// [`histogram_kernel`]); output is bitwise-identical across backends.
pub fn partition_seq_kernel(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    kernel: KernelBackend,
) -> Partitioned {
    let hist = histogram_kernel(tuples, shift, bits, kernel);
    let f = fanout(bits);
    let mut bounds = Vec::with_capacity(f + 1);
    let mut acc = 0usize;
    bounds.push(0);
    for &h in &hist {
        acc += h as usize;
        bounds.push(acc);
    }
    let mut cursor: Vec<usize> = bounds[..f].to_vec();
    let mut data = vec![Tuple::default(); tuples.len()];
    if kernel.is_simd() {
        let mask32 = (f - 1) as u32;
        let mut chunks = tuples.chunks_exact(HASH_BLOCK);
        let mut keys = [0 as Key; HASH_BLOCK];
        for block in &mut chunks {
            for (k, t) in keys.iter_mut().zip(block) {
                *k = t.key;
            }
            let parts = partition_batch8(kernel, &keys, shift, mask32);
            for (t, &p) in block.iter().zip(parts.iter()) {
                data[cursor[p]] = *t;
                cursor[p] += 1;
            }
        }
        for t in chunks.remainder() {
            let p = partition_of(t.key, shift, bits);
            data[cursor[p]] = *t;
            cursor[p] += 1;
        }
    } else {
        for t in tuples {
            let p = partition_of(t.key, shift, bits);
            data[cursor[p]] = *t;
            cursor[p] += 1;
        }
    }
    Partitioned { data, bounds }
}

/// A shared output buffer that scatter workers write disjoint slots of.
///
/// The buffer is plain `Vec<Tuple>` storage behind an `UnsafeCell`; the
/// radix prefix-sum construction guarantees writers never alias (each
/// `(thread, partition)` pair owns an exclusive index range), and callers
/// separate the write epoch from the read epoch with a barrier.
pub struct SharedOut {
    buf: std::cell::UnsafeCell<Vec<Tuple>>,
}

// SAFETY: all mutation goes through `write`, whose contract requires
// disjoint indices across threads; reads require the write epoch to be over.
unsafe impl Sync for SharedOut {}
unsafe impl Send for SharedOut {}

impl SharedOut {
    /// Zero-filled buffer of `len` tuples.
    pub fn new(len: usize) -> Self {
        SharedOut {
            buf: std::cell::UnsafeCell::new(vec![Tuple::default(); len]),
        }
    }

    /// Zero-filled buffer of `len` tuples whose pages the allocating
    /// thread does **not** touch: the memory comes from `alloc_zeroed`,
    /// so the kernel maps copy-on-write zero pages and physical placement
    /// is deferred to whichever thread writes each page first. Combined
    /// with [`ScatterPlan::touch_chunk`] this gives NUMA first-touch
    /// locality for the scatter arenas: each pinned worker faults in
    /// exactly the ranges it will scatter into.
    ///
    /// `Tuple` is `#[repr(C)]` over two `u32`s, so the zeroed contents
    /// are bitwise-identical to [`SharedOut::new`] — this is purely a
    /// page-placement knob, never an output change.
    pub fn new_first_touch(len: usize) -> Self {
        if len == 0 {
            return SharedOut::new(0);
        }
        let layout = std::alloc::Layout::array::<Tuple>(len).expect("arena layout overflow");
        // SAFETY: layout is non-zero-sized (len > 0, Tuple is 8 bytes);
        // zeroed bytes are a valid `Tuple` (two plain u32s); the Vec takes
        // ownership with the exact allocation layout it would free with.
        let buf = unsafe {
            let ptr = std::alloc::alloc_zeroed(layout) as *mut Tuple;
            if ptr.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            Vec::from_raw_parts(ptr, len, len)
        };
        SharedOut {
            buf: std::cell::UnsafeCell::new(buf),
        }
    }

    /// Number of slots in the buffer.
    pub fn len(&self) -> usize {
        // SAFETY: the Vec header is written only at construction; workers
        // mutate elements through raw pointers, never the header.
        unsafe { (*self.buf.get()).len() }
    }

    /// True when the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write the default tuple over `range`, faulting those pages into
    /// the calling thread's NUMA node (first-touch). Contents are
    /// unchanged observationally — slots are zero before and after.
    ///
    /// # Safety
    /// Same contract as [`SharedOut::write`] over the whole `range`: it
    /// must be in bounds, disjoint from every other concurrent writer's
    /// range, and free of concurrent readers.
    pub unsafe fn touch(&self, range: std::ops::Range<usize>) {
        let buf = &mut *self.buf.get();
        debug_assert!(range.end <= buf.len());
        let ptr = buf.as_mut_ptr();
        for idx in range {
            // Volatile: the store must reach memory even though it writes
            // the value the slot already holds.
            std::ptr::write_volatile(ptr.add(idx), Tuple::default());
        }
    }

    /// Write one slot.
    ///
    /// # Safety
    /// No two concurrent callers may pass the same `idx`, `idx` must be in
    /// bounds, and no reader may run concurrently with writers.
    #[inline]
    pub unsafe fn write(&self, idx: usize, t: Tuple) {
        debug_assert!(idx < (*self.buf.get()).len());
        *(*self.buf.get()).as_mut_ptr().add(idx) = t;
    }

    /// Bulk-copy `src` into consecutive slots starting at `idx` — the flush
    /// primitive of the write-combining scatter; one `memcpy` per cache
    /// line instead of [`SWWC_TUPLES_PER_LINE`](crate::swwc::SWWC_TUPLES_PER_LINE)
    /// scalar stores.
    ///
    /// # Safety
    /// Same contract as [`SharedOut::write`], extended to the whole range
    /// `idx..idx + src.len()`: it must be in bounds, owned exclusively by
    /// the caller, and free of concurrent readers.
    #[inline]
    pub unsafe fn write_slice(&self, idx: usize, src: &[Tuple]) {
        let buf = &mut *self.buf.get();
        debug_assert!(idx + src.len() <= buf.len());
        std::ptr::copy_nonoverlapping(src.as_ptr(), buf.as_mut_ptr().add(idx), src.len());
    }

    /// View the contents.
    ///
    /// # Safety
    /// All writes must have happened-before this call (e.g. via a barrier).
    pub unsafe fn as_slice(&self) -> &[Tuple] {
        &*self.buf.get()
    }

    /// Consume into the underlying vector (single-owner, hence safe).
    pub fn into_vec(self) -> Vec<Tuple> {
        self.buf.into_inner()
    }
}

/// The scatter offsets computed from per-thread histograms: everything a
/// worker needs to place its chunk's tuples without contention.
pub struct ScatterPlan {
    /// Global partition boundaries (`fanout + 1` entries).
    pub bounds: Vec<usize>,
    starts: Vec<usize>,
    fanout: usize,
    shift: u32,
    bits: u32,
}

impl ScatterPlan {
    /// Build the plan from one histogram per thread (thread order must
    /// match the chunk order used for scatter).
    pub fn from_histograms(hists: &[Vec<u32>], shift: u32, bits: u32) -> Self {
        let threads = hists.len();
        let f = fanout(bits);
        let mut bounds = Vec::with_capacity(f + 1);
        bounds.push(0usize);
        let mut starts = vec![0usize; threads * f];
        let mut acc = 0usize;
        for p in 0..f {
            for (t, hist) in hists.iter().enumerate() {
                starts[t * f + p] = acc;
                acc += hist[p] as usize;
            }
            bounds.push(acc);
        }
        ScatterPlan {
            bounds,
            starts,
            fanout: f,
            shift,
            bits,
        }
    }

    /// Total tuples the plan accounts for.
    pub fn total(&self) -> usize {
        *self.bounds.last().expect("bounds never empty")
    }

    /// Number of scatter slots (threads or grid cells) the plan was built
    /// for.
    pub fn slots(&self) -> usize {
        self.starts.len() / self.fanout
    }

    /// Pre-fault slot `tid`'s scatter destination ranges (first-touch):
    /// writes the default tuple over exactly the slots
    /// [`ScatterPlan::scatter_chunk`] will later fill for `tid`, so on a
    /// pinned worker those pages land on the worker's own NUMA node before
    /// the timed scatter runs. Contents are unchanged — the ranges are zero
    /// before and after.
    ///
    /// # Safety
    /// Same contract as [`SharedOut::write`] over the touched ranges: the
    /// caller must be the only writer of slot `tid`'s ranges while this
    /// runs, with no concurrent readers. `out` must have [`ScatterPlan::total`]
    /// slots.
    pub unsafe fn touch_chunk(&self, tid: usize, out: &SharedOut) {
        let f = self.fanout;
        let slots = self.slots();
        debug_assert!(tid < slots);
        for p in 0..f {
            let start = self.starts[tid * f + p];
            let end = if tid + 1 < slots {
                self.starts[(tid + 1) * f + p]
            } else {
                self.bounds[p + 1]
            };
            out.touch(start..end);
        }
    }

    /// Scatter thread `tid`'s input chunk into the shared output.
    /// `chunk` must be exactly the slice whose histogram was `hists[tid]`.
    pub fn scatter_chunk(&self, chunk: &[Tuple], tid: usize, out: &SharedOut) {
        self.scatter_chunk_kernel(chunk, tid, out, KernelBackend::Scalar)
    }

    /// [`ScatterPlan::scatter_chunk`] with a selectable derivation kernel:
    /// under [`KernelBackend::Simd`] partition indices come 8 keys at a
    /// time from the batched shift-and-mask kernel. The stores themselves
    /// stay scalar (they are data-dependent scatters); output is
    /// bitwise-identical across backends.
    pub fn scatter_chunk_kernel(
        &self,
        chunk: &[Tuple],
        tid: usize,
        out: &SharedOut,
        kernel: KernelBackend,
    ) {
        let f = self.fanout;
        let mut cursor = self.starts[tid * f..(tid + 1) * f].to_vec();
        if kernel.is_simd() {
            let mask32 = (f - 1) as u32;
            let mut chunks = chunk.chunks_exact(HASH_BLOCK);
            let mut keys = [0 as Key; HASH_BLOCK];
            for block in &mut chunks {
                for (k, t) in keys.iter_mut().zip(block) {
                    *k = t.key;
                }
                let parts = partition_batch8(kernel, &keys, self.shift, mask32);
                for (t, &p) in block.iter().zip(parts.iter()) {
                    // SAFETY: same disjoint-range argument as the scalar
                    // loop below — the derivation is identical bit math.
                    unsafe { out.write(cursor[p], *t) };
                    cursor[p] += 1;
                }
            }
            for t in chunks.remainder() {
                let p = partition_of(t.key, self.shift, self.bits);
                // SAFETY: as above.
                unsafe { out.write(cursor[p], *t) };
                cursor[p] += 1;
            }
        } else {
            for t in chunk {
                let p = partition_of(t.key, self.shift, self.bits);
                // SAFETY: cursor[p] walks starts[tid*f+p] .. +hists[tid][p];
                // the prefix sum makes those ranges disjoint across (tid, p)
                // pairs and they tile 0..total().
                unsafe { out.write(cursor[p], *t) };
                cursor[p] += 1;
            }
        }
    }

    /// Software write-combining scatter (Balkesen et al.'s SWWCB) with
    /// caller-provided buffers: tuples are staged in a cache-line-sized
    /// buffer per partition and flushed a whole line at a time, so each
    /// partition costs one TLB entry per flush instead of one per tuple.
    /// Output is identical to [`ScatterPlan::scatter_chunk`], including
    /// within-partition order — the buffers delay writes, never reorder
    /// them. `bufs` must cover this plan's fan-out and arrive empty; the
    /// trailing drain leaves it empty again, so one allocation serves every
    /// chunk/cell a worker scatters.
    pub fn scatter_chunk_swwc(
        &self,
        chunk: &[Tuple],
        tid: usize,
        out: &SharedOut,
        bufs: &mut crate::swwc::SwwcBuffers,
    ) {
        self.scatter_chunk_swwc_kernel(chunk, tid, out, bufs, KernelBackend::Scalar)
    }

    /// [`ScatterPlan::scatter_chunk_swwc`] with a selectable derivation
    /// kernel (see [`ScatterPlan::scatter_chunk_kernel`]); staging and
    /// flush order are unchanged, so output stays bitwise-identical.
    pub fn scatter_chunk_swwc_kernel(
        &self,
        chunk: &[Tuple],
        tid: usize,
        out: &SharedOut,
        bufs: &mut crate::swwc::SwwcBuffers,
        kernel: KernelBackend,
    ) {
        assert_eq!(bufs.fanout(), self.fanout, "buffers sized for another plan");
        let f = self.fanout;
        let mut cursor = self.starts[tid * f..(tid + 1) * f].to_vec();
        if kernel.is_simd() {
            let mask32 = (f - 1) as u32;
            let mut chunks = chunk.chunks_exact(HASH_BLOCK);
            let mut keys = [0 as Key; HASH_BLOCK];
            for block in &mut chunks {
                for (k, t) in keys.iter_mut().zip(block) {
                    *k = t.key;
                }
                let parts = partition_batch8(kernel, &keys, self.shift, mask32);
                for (t, &p) in block.iter().zip(parts.iter()) {
                    // SAFETY: same disjointness argument as the scalar loop.
                    unsafe { bufs.stage(p, *t, &mut cursor, out) };
                }
            }
            for t in chunks.remainder() {
                let p = partition_of(t.key, self.shift, self.bits);
                // SAFETY: as above.
                unsafe { bufs.stage(p, *t, &mut cursor, out) };
            }
        } else {
            for t in chunk {
                let p = partition_of(t.key, self.shift, self.bits);
                // SAFETY: same disjointness argument as scatter_chunk — the
                // staged line flushes into cursor[p]..cursor[p]+LINE, which
                // stays within this (tid, p) range.
                unsafe { bufs.stage(p, *t, &mut cursor, out) };
            }
        }
        // SAFETY: drains the partial tails within the same ranges.
        unsafe { bufs.flush(&mut cursor, out) };
    }

    /// [`ScatterPlan::scatter_chunk_swwc`] with freshly allocated buffers —
    /// the one-shot form used by single-chunk ablations and benchmarks.
    pub fn scatter_chunk_buffered(&self, chunk: &[Tuple], tid: usize, out: &SharedOut) {
        let mut bufs = crate::swwc::SwwcBuffers::new(self.fanout);
        self.scatter_chunk_swwc(chunk, tid, out, &mut bufs);
    }
}

/// Parallel single-pass partitioning: per-thread histograms, exclusive
/// prefix sums, then each thread scatters its own input chunk into its
/// pre-reserved, mutually disjoint output slots.
pub fn partition_parallel(tuples: &[Tuple], shift: u32, bits: u32, threads: usize) -> Partitioned {
    partition_parallel_exec(tuples, shift, bits, threads, &Executor::spawn_mode())
}

/// Build the scatter arena for an executor: pinned executors get the
/// first-touch (page-placement-deferred) arena, everything else the plain
/// eagerly-zeroed one. Contents are bitwise-identical either way.
fn arena_for(exec: &Executor, len: usize) -> SharedOut {
    if exec.pinned() {
        SharedOut::new_first_touch(len)
    } else {
        SharedOut::new(len)
    }
}

/// [`partition_parallel`] on an [`Executor`]: parallel sections run on the
/// executor's lanes (persistent pool or per-run spawning), and when the
/// executor pins its workers the output arena is allocated untouched and
/// each lane first-touches exactly its own scatter ranges, placing those
/// pages on the lane's NUMA node. Output is bitwise-identical to
/// [`partition_parallel`] in every mode.
pub fn partition_parallel_exec(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
    exec: &Executor,
) -> Partitioned {
    assert!(threads > 0);
    if threads == 1 || tuples.len() < 1024 {
        return partition_seq(tuples, shift, bits);
    }

    // Step 1: per-thread histograms over contiguous input chunks.
    let hists: Vec<Vec<u32>> = exec.run(threads, |tid| {
        histogram(
            &tuples[chunk_range(tuples.len(), threads, tid)],
            shift,
            bits,
        )
    });

    // Step 2: global partition bounds and per-(thread, partition) start
    // offsets. Offsets are laid out partition-major: within partition `p`,
    // thread 0's tuples precede thread 1's, etc.
    let plan = ScatterPlan::from_histograms(&hists, shift, bits);
    debug_assert_eq!(plan.total(), tuples.len());

    // Step 3: contention-free scatter, preceded by first-touch of each
    // lane's own ranges when the lanes are pinned.
    let first_touch = exec.pinned();
    let out = arena_for(exec, tuples.len());
    let plan_ref = &plan;
    let out_ref = &out;
    exec.run(threads, |tid| {
        if first_touch {
            // SAFETY: touches exactly the (tid, p) ranges this lane
            // scatters below — disjoint across lanes by the prefix sum.
            unsafe { plan_ref.touch_chunk(tid, out_ref) };
        }
        plan_ref.scatter_chunk(
            &tuples[chunk_range(tuples.len(), threads, tid)],
            tid,
            out_ref,
        );
    });
    Partitioned {
        data: out.into_vec(),
        bounds: plan.bounds,
    }
}

/// [`partition_parallel`] with the software write-combining scatter: same
/// histogram and prefix-sum passes, but each worker scatters through one
/// reused [`SwwcBuffers`](crate::swwc::SwwcBuffers) allocation. Output is
/// bitwise-identical to [`partition_parallel`] and [`partition_seq`].
pub fn partition_parallel_swwc(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
) -> Partitioned {
    partition_parallel_swwc_exec(tuples, shift, bits, threads, &Executor::spawn_mode())
}

/// [`partition_parallel_swwc`] on an [`Executor`] (see
/// [`partition_parallel_exec`] for the lane and first-touch semantics).
pub fn partition_parallel_swwc_exec(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
    exec: &Executor,
) -> Partitioned {
    assert!(threads > 0);
    if threads == 1 || tuples.len() < 1024 {
        return partition_seq_buffered(tuples, shift, bits);
    }
    let hists: Vec<Vec<u32>> = exec.run(threads, |tid| {
        histogram(
            &tuples[chunk_range(tuples.len(), threads, tid)],
            shift,
            bits,
        )
    });
    let plan = ScatterPlan::from_histograms(&hists, shift, bits);
    debug_assert_eq!(plan.total(), tuples.len());
    let first_touch = exec.pinned();
    let out = arena_for(exec, tuples.len());
    let (plan_ref, out_ref) = (&plan, &out);
    exec.run(threads, |tid| {
        if first_touch {
            // SAFETY: touches exactly the (tid, p) ranges this lane
            // scatters below — disjoint across lanes by the prefix sum.
            unsafe { plan_ref.touch_chunk(tid, out_ref) };
        }
        let mut bufs = crate::swwc::SwwcBuffers::new(plan_ref.fanout);
        plan_ref.scatter_chunk_swwc(
            &tuples[chunk_range(tuples.len(), threads, tid)],
            tid,
            out_ref,
            &mut bufs,
        );
    });
    Partitioned {
        data: out.into_vec(),
        bounds: plan.bounds,
    }
}

/// Morsel-driven variant of [`partition_parallel`]: the input is cut into a
/// fixed grid of `morsel`-sized cells and workers claim cells from a
/// [`MorselQueue`](crate::morsel::MorselQueue) — stealing from each other
/// once their own deque drains — for both the histogram and the scatter
/// pass. The grid (not the worker count) defines the scatter-plan slots, so
/// a cell's histogram and its scatter always use the same slice no matter
/// which worker ends up claiming it. Output layout is identical to
/// [`partition_parallel`]: partitions in radix order, each preserving the
/// input order of its tuples.
pub fn partition_parallel_morsel(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
    morsel: usize,
) -> Partitioned {
    partition_parallel_morsel_exec(
        tuples,
        shift,
        bits,
        threads,
        morsel,
        &Executor::spawn_mode(),
    )
}

/// [`partition_parallel_morsel`] on an [`Executor`]. Under a pinned
/// executor each claimed cell's scatter ranges are first-touched by the
/// claiming lane immediately before it scatters them — with work stealing
/// the cell-to-lane mapping is dynamic, so placement follows whichever
/// lane actually writes the cell.
pub fn partition_parallel_morsel_exec(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
    morsel: usize,
    exec: &Executor,
) -> Partitioned {
    use crate::morsel::{for_each_morsel, MorselQueue};
    assert!(threads > 0);
    if threads == 1 || tuples.len() < 1024 {
        return partition_seq(tuples, shift, bits);
    }
    let m = morsel.max(1);
    let cells = tuples.len().div_ceil(m);
    let cell = |g: usize| &tuples[g * m..((g + 1) * m).min(tuples.len())];

    // Step 1: per-cell histograms, cells claimed work-stealingly.
    let hist_q = MorselQueue::new(cells, threads, 1);
    let per_worker: Vec<Vec<(usize, Vec<u32>)>> = exec.run(threads, |tid| {
        let mut local = Vec::new();
        for_each_morsel(&hist_q, tid, |claimed, _| {
            for g in claimed {
                local.push((g, histogram(cell(g), shift, bits)));
            }
        });
        local
    });
    let mut hists = vec![Vec::new(); cells];
    for (g, h) in per_worker.into_iter().flatten() {
        hists[g] = h;
    }

    // Step 2: one scatter slot per grid cell.
    let plan = ScatterPlan::from_histograms(&hists, shift, bits);
    debug_assert_eq!(plan.total(), tuples.len());

    // Step 3: contention-free scatter, cells claimed work-stealingly.
    let first_touch = exec.pinned();
    let out = arena_for(exec, tuples.len());
    let scatter_q = MorselQueue::new(cells, threads, 1);
    let (plan_ref, out_ref) = (&plan, &out);
    exec.run(threads, |tid| {
        for_each_morsel(&scatter_q, tid, |claimed, _| {
            for g in claimed {
                if first_touch {
                    // SAFETY: cell `g`'s scatter ranges belong to this
                    // claim alone; the claimer both touches and writes
                    // them, so no other lane aliases the ranges.
                    unsafe { plan_ref.touch_chunk(g, out_ref) };
                }
                plan_ref.scatter_chunk(cell(g), g, out_ref);
            }
        });
    });
    Partitioned {
        data: out.into_vec(),
        bounds: plan.bounds,
    }
}

/// [`partition_parallel_morsel`] with the software write-combining scatter.
/// Each worker keeps one [`SwwcBuffers`](crate::swwc::SwwcBuffers) for the
/// whole pass; because every grid cell owns its own scatter-plan slot, the
/// buffers are drained at each cell boundary (inside
/// [`ScatterPlan::scatter_chunk_swwc`]) and the output stays bitwise
/// identical to the direct morsel scatter regardless of which worker claims
/// which cell.
pub fn partition_parallel_morsel_swwc(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
    morsel: usize,
) -> Partitioned {
    partition_parallel_morsel_swwc_exec(
        tuples,
        shift,
        bits,
        threads,
        morsel,
        &Executor::spawn_mode(),
    )
}

/// [`partition_parallel_morsel_swwc`] on an [`Executor`] (see
/// [`partition_parallel_morsel_exec`] for the lane and first-touch
/// semantics).
pub fn partition_parallel_morsel_swwc_exec(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    threads: usize,
    morsel: usize,
    exec: &Executor,
) -> Partitioned {
    use crate::morsel::{for_each_morsel, MorselQueue};
    assert!(threads > 0);
    if threads == 1 || tuples.len() < 1024 {
        return partition_seq_buffered(tuples, shift, bits);
    }
    let m = morsel.max(1);
    let cells = tuples.len().div_ceil(m);
    let cell = |g: usize| &tuples[g * m..((g + 1) * m).min(tuples.len())];

    let hist_q = MorselQueue::new(cells, threads, 1);
    let per_worker: Vec<Vec<(usize, Vec<u32>)>> = exec.run(threads, |tid| {
        let mut local = Vec::new();
        for_each_morsel(&hist_q, tid, |claimed, _| {
            for g in claimed {
                local.push((g, histogram(cell(g), shift, bits)));
            }
        });
        local
    });
    let mut hists = vec![Vec::new(); cells];
    for (g, h) in per_worker.into_iter().flatten() {
        hists[g] = h;
    }

    let plan = ScatterPlan::from_histograms(&hists, shift, bits);
    debug_assert_eq!(plan.total(), tuples.len());

    let first_touch = exec.pinned();
    let out = arena_for(exec, tuples.len());
    let scatter_q = MorselQueue::new(cells, threads, 1);
    let (plan_ref, out_ref) = (&plan, &out);
    exec.run(threads, |tid| {
        let mut bufs = crate::swwc::SwwcBuffers::new(plan_ref.fanout);
        for_each_morsel(&scatter_q, tid, |claimed, _| {
            for g in claimed {
                if first_touch {
                    // SAFETY: as in `partition_parallel_morsel_exec` — the
                    // claiming lane alone touches and writes cell `g`.
                    unsafe { plan_ref.touch_chunk(g, out_ref) };
                }
                plan_ref.scatter_chunk_swwc(cell(g), g, out_ref, &mut bufs);
            }
        });
    });
    Partitioned {
        data: out.into_vec(),
        bounds: plan.bounds,
    }
}

/// Two-pass recursive partitioning: first pass on the low `bits1` key bits,
/// then each first-pass partition is re-partitioned on the next `bits2`
/// bits. This is how PRJ keeps the first-pass fan-out within TLB reach while
/// still producing cache-sized final partitions (Balkesen et al.).
pub fn partition_two_pass(tuples: &[Tuple], bits1: u32, bits2: u32, threads: usize) -> Partitioned {
    partition_two_pass_exec(tuples, bits1, bits2, threads, &Executor::spawn_mode())
}

/// [`partition_two_pass`] on an [`Executor`]: both passes run on the
/// executor's lanes (see [`partition_parallel_exec`]).
pub fn partition_two_pass_exec(
    tuples: &[Tuple],
    bits1: u32,
    bits2: u32,
    threads: usize,
    exec: &Executor,
) -> Partitioned {
    let first = partition_parallel_exec(tuples, 0, bits1, threads, exec);
    if bits2 == 0 {
        return first;
    }
    let f1 = fanout(bits1);
    let f2 = fanout(bits2);
    let mut data = vec![Tuple::default(); tuples.len()];
    let mut bounds = Vec::with_capacity(f1 * f2 + 1);
    bounds.push(0usize);
    // Second pass is embarrassingly parallel over first-pass partitions;
    // run it with the same worker count, each worker taking a slice of
    // partitions. Output layout: partition (p1, p2) at index p1*f2 + p2.
    let sub: Vec<Partitioned> = exec
        .run(threads, |tid| {
            let range = chunk_range(f1, threads, tid);
            range
                .map(|p1| partition_seq(first.partition(p1), bits1, bits2))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let mut cursor = 0usize;
    for part in &sub {
        for p2 in 0..f2 {
            let src = part.partition(p2);
            data[cursor..cursor + src.len()].copy_from_slice(src);
            cursor += src.len();
            bounds.push(cursor);
        }
    }
    debug_assert_eq!(cursor, tuples.len());
    Partitioned { data, bounds }
}

/// Sequential partitioning via the write-combining scatter — the SWWCB
/// ablation counterpart of [`partition_seq`].
pub fn partition_seq_buffered(tuples: &[Tuple], shift: u32, bits: u32) -> Partitioned {
    let hist = histogram(tuples, shift, bits);
    let plan = ScatterPlan::from_histograms(std::slice::from_ref(&hist), shift, bits);
    let out = SharedOut::new(tuples.len());
    plan.scatter_chunk_buffered(tuples, 0, &out);
    Partitioned {
        data: out.into_vec(),
        bounds: plan.bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Rng;

    fn random_tuples(n: usize, key_space: u32, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32() % key_space, i as u32))
            .collect()
    }

    fn check_partitioned(p: &Partitioned, input: &[Tuple], shift: u32, bits: u32) {
        // Same multiset.
        let mut a: Vec<u64> = input.iter().map(|t| t.pack()).collect();
        let mut b: Vec<u64> = p.data.iter().map(|t| t.pack()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "partitioning changed the multiset");
        // Every tuple in the right partition.
        for part in 0..p.fanout() {
            for t in p.partition(part) {
                assert_eq!(partition_of(t.key, shift, bits), part);
            }
        }
        assert_eq!(*p.bounds.last().unwrap(), input.len());
    }

    #[test]
    fn sequential_partition_correct() {
        let input = random_tuples(1000, 512, 1);
        let p = partition_seq(&input, 0, 4);
        check_partitioned(&p, &input, 0, 4);
        assert_eq!(p.fanout(), 16);
    }

    #[test]
    fn parallel_matches_sequential() {
        let input = random_tuples(20_000, 1 << 14, 2);
        let seq = partition_seq(&input, 0, 6);
        let par = partition_parallel(&input, 0, 6, 4);
        assert_eq!(seq.bounds, par.bounds);
        check_partitioned(&par, &input, 0, 6);
        // Within a partition, parallel scatter preserves input order
        // (thread chunks are contiguous and offsets partition-major).
        assert_eq!(seq.data, par.data);
    }

    #[test]
    fn morsel_partition_is_bitwise_identical_to_static() {
        let input = random_tuples(20_000, 1 << 14, 2);
        let par = partition_parallel(&input, 0, 6, 4);
        for morsel in [128usize, 512, 4096, 1 << 20] {
            let stolen = partition_parallel_morsel(&input, 0, 6, 4, morsel);
            assert_eq!(par.bounds, stolen.bounds, "morsel={morsel}");
            // Grid cells are contiguous ascending slices and scatter slots
            // are cell-major, so even the within-partition tuple order
            // matches the static scatter exactly.
            assert_eq!(par.data, stolen.data, "morsel={morsel}");
        }
    }

    #[test]
    fn morsel_partition_small_input_falls_back_to_seq() {
        let input = random_tuples(500, 256, 7);
        let p = partition_parallel_morsel(&input, 0, 5, 4, 64);
        check_partitioned(&p, &input, 0, 5);
    }

    #[test]
    fn shifted_pass_uses_higher_bits() {
        let input = random_tuples(500, 1 << 10, 3);
        let p = partition_seq(&input, 4, 4);
        check_partitioned(&p, &input, 4, 4);
    }

    #[test]
    fn two_pass_refines_first_pass() {
        let input = random_tuples(10_000, 1 << 12, 4);
        let p = partition_two_pass(&input, 4, 4, 3);
        assert_eq!(p.fanout(), 256);
        // Two-pass partition (p1, p2) must equal single-pass on 8 bits:
        // index p1*16+p2 collects keys with low bits p2*16+p1... careful:
        // pass 1 takes bits [0,4), pass 2 bits [4,8). Tuple with key k goes
        // to p1 = k&15, p2 = (k>>4)&15, i.e. flat index (k&15)*16 + (k>>4&15).
        for p1 in 0..16usize {
            for p2 in 0..16usize {
                for t in p.partition(p1 * 16 + p2) {
                    assert_eq!((t.key & 15) as usize, p1);
                    assert_eq!(((t.key >> 4) & 15) as usize, p2);
                }
            }
        }
        // Multiset preserved.
        let mut a: Vec<u64> = input.iter().map(|t| t.pack()).collect();
        let mut b: Vec<u64> = p.data.iter().map(|t| t.pack()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let p = partition_parallel(&[], 0, 5, 4);
        assert_eq!(p.fanout(), 32);
        assert_eq!(p.data.len(), 0);
        assert!(p.bounds.iter().all(|&b| b == 0));
    }

    #[test]
    fn skewed_keys_pile_into_one_partition() {
        let input: Vec<Tuple> = (0..100).map(|i| Tuple::new(64, i)).collect();
        let p = partition_seq(&input, 0, 4);
        // key 64 -> low 4 bits are 0.
        assert_eq!(p.partition(0).len(), 100);
        for q in 1..16 {
            assert!(p.partition(q).is_empty());
        }
    }

    #[test]
    fn buffered_scatter_equals_plain() {
        for (n, keys, bits) in [
            (5000usize, 1u32 << 12, 8u32),
            (100, 16, 4),
            (7, 4, 2),
            (0, 4, 2),
        ] {
            let input = random_tuples(n, keys.max(1), n as u64 + 9);
            let plain = partition_seq(&input, 0, bits);
            let buffered = partition_seq_buffered(&input, 0, bits);
            assert_eq!(plain.bounds, buffered.bounds, "n={n} bits={bits}");
            assert_eq!(plain.data, buffered.data, "n={n} bits={bits}");
        }
    }

    #[test]
    fn buffered_scatter_parallel_chunks_disjoint() {
        // Drive the buffered scatter the way PRJ does: one plan, several
        // chunks, flushed independently.
        let input = random_tuples(4096, 1 << 10, 77);
        let threads = 4;
        let hists: Vec<Vec<u32>> = (0..threads)
            .map(|t| {
                histogram(
                    &input[crate::pool::chunk_range(input.len(), threads, t)],
                    0,
                    6,
                )
            })
            .collect();
        let plan = ScatterPlan::from_histograms(&hists, 0, 6);
        let out = SharedOut::new(input.len());
        for t in 0..threads {
            plan.scatter_chunk_buffered(
                &input[crate::pool::chunk_range(input.len(), threads, t)],
                t,
                &out,
            );
        }
        let data = out.into_vec();
        let expect = partition_parallel(&input, 0, 6, threads);
        assert_eq!(data, expect.data);
    }

    #[test]
    fn swwc_parallel_is_bitwise_identical() {
        let input = random_tuples(20_000, 1 << 14, 2);
        let seq = partition_seq(&input, 0, 6);
        for threads in [1usize, 2, 4, 7] {
            let swwc = partition_parallel_swwc(&input, 0, 6, threads);
            assert_eq!(seq.bounds, swwc.bounds, "threads={threads}");
            assert_eq!(seq.data, swwc.data, "threads={threads}");
            for morsel in [128usize, 500, 4096] {
                let stolen = partition_parallel_morsel_swwc(&input, 0, 6, threads, morsel);
                assert_eq!(seq.data, stolen.data, "threads={threads} morsel={morsel}");
            }
        }
    }

    /// Flush-boundary cases: partition counts that are not a multiple of
    /// the line capacity, so every partial-drain path runs — a lone
    /// under-filled line, exactly one line, one line plus a remainder, and
    /// a chunk split mid-line across scatter slots.
    #[test]
    fn swwc_flushes_partial_lines_correctly() {
        use crate::swwc::SWWC_TUPLES_PER_LINE;
        let line = SWWC_TUPLES_PER_LINE as u32;
        for per_part in [1u32, 3, line - 1, line, line + 1, 3 * line + 5] {
            let input: Vec<Tuple> = (0..per_part)
                .flat_map(|i| (0..4u32).map(move |k| Tuple::new(k, i)))
                .collect();
            let plain = partition_seq(&input, 0, 2);
            let hist = histogram(&input, 0, 2);
            let plan = ScatterPlan::from_histograms(std::slice::from_ref(&hist), 0, 2);
            let out = SharedOut::new(input.len());
            let mut bufs = crate::swwc::SwwcBuffers::new(plan.fanout);
            plan.scatter_chunk_swwc(&input, 0, &out, &mut bufs);
            assert_eq!(out.into_vec(), plain.data, "per_part={per_part}");
        }
        // Reusing one worker's buffers across several chunks must leave no
        // residue: drive two slots back-to-back through the same buffers.
        let input = random_tuples(1000, 64, 13);
        let (a, b) = input.split_at(437); // splits mid-line for most partitions
        let hists = vec![histogram(a, 0, 4), histogram(b, 0, 4)];
        let plan = ScatterPlan::from_histograms(&hists, 0, 4);
        let out = SharedOut::new(input.len());
        let mut bufs = crate::swwc::SwwcBuffers::new(plan.fanout);
        plan.scatter_chunk_swwc(a, 0, &out, &mut bufs);
        plan.scatter_chunk_swwc(b, 1, &out, &mut bufs);
        assert!(bufs.line_flushes() > 0, "full lines must have flushed");
        assert_eq!(out.into_vec(), partition_seq(&input, 0, 4).data);
    }

    /// The Simd derivation kernel is pure bit math: histograms, sequential
    /// partitioning, and both scatter paths must be bitwise-identical to
    /// the scalar loops across block-boundary sizes.
    #[test]
    fn simd_derivation_is_bitwise_identical() {
        for n in [0usize, 1, 7, 8, 9, 16, 17, 1000, 4097] {
            let input = random_tuples(n, 1 << 12, n as u64 + 3);
            for (shift, bits) in [(0u32, 6u32), (4, 4), (6, 8)] {
                let scalar_hist = histogram(&input, shift, bits);
                let simd_hist = histogram_kernel(&input, shift, bits, KernelBackend::Simd);
                assert_eq!(scalar_hist, simd_hist, "n={n} shift={shift} bits={bits}");

                let scalar_part = partition_seq(&input, shift, bits);
                let simd_part = partition_seq_kernel(&input, shift, bits, KernelBackend::Simd);
                assert_eq!(scalar_part.bounds, simd_part.bounds);
                assert_eq!(scalar_part.data, simd_part.data);

                let plan =
                    ScatterPlan::from_histograms(std::slice::from_ref(&scalar_hist), shift, bits);
                let out = SharedOut::new(input.len());
                plan.scatter_chunk_kernel(&input, 0, &out, KernelBackend::Simd);
                assert_eq!(out.into_vec(), scalar_part.data, "direct scatter n={n}");

                let out = SharedOut::new(input.len());
                let mut bufs = crate::swwc::SwwcBuffers::new(plan.fanout);
                plan.scatter_chunk_swwc_kernel(&input, 0, &out, &mut bufs, KernelBackend::Simd);
                assert_eq!(out.into_vec(), scalar_part.data, "swwc scatter n={n}");
            }
        }
    }

    /// Every `_exec` variant on a pooled executor must be bitwise-identical
    /// to its spawn-mode (delegating) entry point — the executor is a pure
    /// performance knob.
    #[test]
    fn exec_variants_are_bitwise_identical_to_spawn() {
        use crate::executor::{ExecMode, Executor};
        use crate::topology::PinPolicy;
        let input = random_tuples(20_000, 1 << 14, 2);
        let threads = 4;
        for pin in [PinPolicy::None, PinPolicy::Compact, PinPolicy::Scatter] {
            let exec = Executor::new(ExecMode::Pool, pin, threads);
            let par = partition_parallel_exec(&input, 0, 6, threads, &exec);
            let base = partition_parallel(&input, 0, 6, threads);
            assert_eq!(base.bounds, par.bounds, "pin={pin}");
            assert_eq!(base.data, par.data, "pin={pin}");

            let swwc = partition_parallel_swwc_exec(&input, 0, 6, threads, &exec);
            assert_eq!(base.data, swwc.data, "swwc pin={pin}");

            let morsel = partition_parallel_morsel_exec(&input, 0, 6, threads, 512, &exec);
            assert_eq!(base.data, morsel.data, "morsel pin={pin}");

            let morsel_swwc =
                partition_parallel_morsel_swwc_exec(&input, 0, 6, threads, 512, &exec);
            assert_eq!(base.data, morsel_swwc.data, "morsel_swwc pin={pin}");

            let two = partition_two_pass_exec(&input, 4, 4, threads, &exec);
            let two_base = partition_two_pass(&input, 4, 4, threads);
            assert_eq!(two_base.bounds, two.bounds, "two-pass pin={pin}");
            assert_eq!(two_base.data, two.data, "two-pass pin={pin}");
        }
    }

    /// The first-touch arena and per-chunk touch pass are observationally
    /// invisible: untouched slots are zero (like `SharedOut::new`), touched
    /// slots stay zero, and a touched-then-scattered arena matches the
    /// sequential partitioner exactly.
    #[test]
    fn first_touch_arena_matches_eager_arena() {
        let eager = SharedOut::new(1000);
        let lazy = SharedOut::new_first_touch(1000);
        assert_eq!(lazy.len(), 1000);
        assert!(!lazy.is_empty());
        assert!(SharedOut::new_first_touch(0).is_empty());
        // SAFETY: no concurrent writers exist in this test.
        unsafe {
            lazy.touch(0..500);
            assert_eq!(eager.as_slice(), lazy.as_slice());
        }
        assert_eq!(eager.into_vec(), lazy.into_vec());

        // Touch-then-scatter through a real plan.
        let input = random_tuples(4096, 1 << 10, 77);
        let threads = 4;
        let hists: Vec<Vec<u32>> = (0..threads)
            .map(|t| {
                histogram(
                    &input[crate::pool::chunk_range(input.len(), threads, t)],
                    0,
                    6,
                )
            })
            .collect();
        let plan = ScatterPlan::from_histograms(&hists, 0, 6);
        assert_eq!(plan.slots(), threads);
        let out = SharedOut::new_first_touch(input.len());
        for t in 0..threads {
            // SAFETY: single-threaded here; ranges are disjoint per (t, p).
            unsafe { plan.touch_chunk(t, &out) };
            plan.scatter_chunk(
                &input[crate::pool::chunk_range(input.len(), threads, t)],
                t,
                &out,
            );
        }
        assert_eq!(out.into_vec(), partition_seq(&input, 0, 6).data);
    }

    #[test]
    fn histogram_counts() {
        let input = vec![Tuple::new(0, 0), Tuple::new(1, 0), Tuple::new(17, 0)];
        let h = histogram(&input, 0, 4);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2, "keys 1 and 17 share low nibble 1");
    }
}
