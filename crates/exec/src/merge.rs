//! Merging sorted runs: the k-way merge behind MWay, the successive
//! pairwise merging behind MPass, and the provenance-tagged merge PMJ's
//! merge phase relies on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merge two sorted slices into `out` (appended).
pub fn merge_two_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Branch-free variant of [`merge_two_into`]: the element selection and
/// cursor advances are arithmetic on the comparison result, compiling to
/// conditional moves — the stand-in for the AVX bitonic two-way merge used
/// by MPass when SIMD is enabled (Figure 21).
pub fn merge_two_into_branchless(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let av = a[i];
        let bv = b[j];
        let take_a = av <= bv;
        out.push(if take_a { av } else { bv });
        i += take_a as usize;
        j += !take_a as usize;
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Multi-way merge of sorted runs into one sorted vector (the MWay shuffle).
/// Uses a binary heap keyed on `(value, run)`; ties resolve to the lower run
/// index, making the output deterministic.
pub fn kway_merge(runs: &[&[u64]]) -> Vec<u64> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(ri, r)| Reverse((r[0], ri, 0)))
        .collect();
    while let Some(Reverse((v, ri, idx))) = heap.pop() {
        out.push(v);
        let next = idx + 1;
        if next < runs[ri].len() {
            heap.push(Reverse((runs[ri][next], ri, next)));
        }
    }
    out
}

/// Multi-way merge that also reports which run each output element came
/// from — PMJ's merge phase needs provenance to avoid re-emitting matches
/// its initial phase already produced.
pub fn kway_merge_tagged(runs: &[&[u64]]) -> (Vec<u64>, Vec<u32>) {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut tags = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(ri, r)| Reverse((r[0], ri, 0)))
        .collect();
    while let Some(Reverse((v, ri, idx))) = heap.pop() {
        out.push(v);
        tags.push(ri as u32);
        let next = idx + 1;
        if next < runs[ri].len() {
            heap.push(Reverse((runs[ri][next], ri, next)));
        }
    }
    (out, tags)
}

/// Successive two-way merging (the MPass shuffle): pairs of runs are merged
/// each pass until one run remains. Returns an empty vector for no runs.
pub fn pairwise_merge(mut runs: Vec<Vec<u64>>) -> Vec<u64> {
    if runs.is_empty() {
        return Vec::new();
    }
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let mut merged = Vec::new();
                    merge_two_into(&a, &b, &mut merged);
                    next.push(merged);
                }
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().expect("non-empty by construction")
}

/// The half-open segment of a sorted run whose values lie in `[lo, hi)` —
/// how MWay/MPass assign each thread a disjoint output key range.
pub fn run_segment(run: &[u64], lo: u64, hi: u64) -> &[u64] {
    let start = run.partition_point(|&v| v < lo);
    let end = run.partition_point(|&v| v < hi);
    &run[start..end]
}

/// Pick `n - 1` splitter values dividing the merged key space into `n`
/// roughly equal ranges, by sampling the runs. Returned splitters are
/// strictly increasing; together with `0` and `u64::MAX` they form the
/// half-open range bounds `[b[i], b[i+1])`.
pub fn choose_splitters(runs: &[&[u64]], n: usize) -> Vec<u64> {
    if n <= 1 {
        return Vec::new();
    }
    let mut sample: Vec<u64> = Vec::new();
    for r in runs {
        // Up to 64 evenly spaced samples per run.
        let step = (r.len() / 64).max(1);
        sample.extend(r.iter().step_by(step));
    }
    sample.sort_unstable();
    sample.dedup();
    if sample.is_empty() {
        return Vec::new();
    }
    let mut splitters = Vec::with_capacity(n - 1);
    for i in 1..n {
        let idx = i * sample.len() / n;
        let v = sample[idx.min(sample.len() - 1)];
        if splitters.last() != Some(&v) {
            splitters.push(v);
        }
    }
    splitters
}

/// Expand splitters into `len+1` half-open range bounds covering all of
/// `u64`: `[0, s0), [s0, s1), ..., [s_last, MAX]`.
pub fn splitter_bounds(splitters: &[u64]) -> Vec<(u64, u64)> {
    let mut bounds = Vec::with_capacity(splitters.len() + 1);
    let mut lo = 0u64;
    for &s in splitters {
        bounds.push((lo, s));
        lo = s;
    }
    bounds.push((lo, u64::MAX));
    bounds
}

/// A tournament loser tree over `k` sorted runs — the classic DBMS k-way
/// merge structure. Each pop costs ⌈log2 k⌉ comparisons against *losers*
/// only (a binary heap re-compares against winners too), which is why
/// multi-way merges in database engines use it. `kway_merge_loser` is the
/// drop-in counterpart of [`kway_merge`]; the `kernels` bench compares
/// them.
pub struct LoserTree<'a> {
    runs: Vec<&'a [u64]>,
    /// Cursor per run.
    pos: Vec<usize>,
    /// Internal nodes: index of the losing run at each tree node.
    tree: Vec<usize>,
    /// Current overall winner run, or `usize::MAX` when drained.
    winner: usize,
    k: usize,
}

impl<'a> LoserTree<'a> {
    /// Build the tree over the given sorted runs with one recursive
    /// tournament: each internal node keeps the *loser* of its subtrees'
    /// final, its winner moves up.
    pub fn new(runs: &[&'a [u64]]) -> Self {
        let k = runs.len().next_power_of_two().max(1);
        let mut t = LoserTree {
            runs: runs.to_vec(),
            pos: vec![0; runs.len()],
            tree: vec![usize::MAX; k],
            winner: usize::MAX,
            k,
        };
        t.winner = t.build(1);
        t
    }

    /// Play the subtree rooted at `node`; store losers, return the winner.
    fn build(&mut self, node: usize) -> usize {
        if node >= self.k {
            let leaf = node - self.k;
            return if leaf < self.runs.len() {
                leaf
            } else {
                usize::MAX
            };
        }
        let l = self.build(2 * node);
        let r = self.build(2 * node + 1);
        let (win, lose) = if self.beats(l, r) { (l, r) } else { (r, l) };
        self.tree[node] = lose;
        win
    }

    /// Current head value of run `r`, or `None` when exhausted.
    #[inline]
    fn head(&self, r: usize) -> Option<u64> {
        if r == usize::MAX {
            return None;
        }
        self.runs[r].get(self.pos[r]).copied()
    }

    /// Does run `a` beat (sort before) run `b`? Exhausted runs lose; ties
    /// resolve to the lower run index for determinism.
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => x < y || (x == y && a < b),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Pop the smallest value across all runs.
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        let w = self.winner;
        let value = self.head(w)?;
        self.pos[w] += 1;
        // Replay w's path from its leaf to the root.
        let mut contender = w;
        let mut node = (self.k + w) / 2;
        while node > 0 {
            if self.beats(self.tree[node], contender) {
                std::mem::swap(&mut self.tree[node], &mut contender);
            }
            node /= 2;
        }
        self.winner = contender;
        Some(value)
    }
}

/// K-way merge via a loser tree; output identical to [`kway_merge`].
pub fn kway_merge_loser(runs: &[&[u64]]) -> Vec<u64> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut tree = LoserTree::new(runs);
    while let Some(v) = tree.pop() {
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Rng;

    fn sorted_run(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng::new(seed);
        let mut v: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 20).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn merge_two_basic() {
        let mut out = Vec::new();
        merge_two_into(&[1, 3, 5], &[2, 4, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_two_with_empty() {
        let mut out = Vec::new();
        merge_two_into(&[], &[1, 2], &mut out);
        assert_eq!(out, vec![1, 2]);
        out.clear();
        merge_two_into(&[1, 2], &[], &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn kway_equals_sorted_concat() {
        let runs: Vec<Vec<u64>> = (0..5).map(|i| sorted_run(200 + i, i as u64)).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let merged = kway_merge(&refs);
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }

    #[test]
    fn kway_empty_and_single() {
        assert!(kway_merge(&[]).is_empty());
        let r = sorted_run(10, 9);
        assert_eq!(kway_merge(&[&r]), r);
        assert_eq!(kway_merge(&[&[][..], &r]), r);
    }

    #[test]
    fn tagged_merge_provenance_is_consistent() {
        let a = vec![1u64, 4, 7];
        let b = vec![2u64, 4, 9];
        let (vals, tags) = kway_merge_tagged(&[&a, &b]);
        assert_eq!(vals, vec![1, 2, 4, 4, 7, 9]);
        // Each tagged element must actually occur in its claimed run.
        for (&v, &t) in vals.iter().zip(tags.iter()) {
            let run = if t == 0 { &a } else { &b };
            assert!(run.contains(&v));
        }
        // Ties resolve to the lower run id first.
        assert_eq!(&tags[2..4], &[0, 1]);
    }

    #[test]
    fn loser_tree_equals_heap_merge() {
        for k in [0usize, 1, 2, 3, 5, 8, 13] {
            let runs: Vec<Vec<u64>> = (0..k).map(|i| sorted_run(37 * (i + 1), i as u64)).collect();
            let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            assert_eq!(kway_merge_loser(&refs), kway_merge(&refs), "k={k}");
        }
    }

    #[test]
    fn loser_tree_handles_empty_and_duplicate_runs() {
        let a = vec![1u64, 1, 1];
        let b: Vec<u64> = vec![];
        let c = vec![1u64, 2];
        let refs: Vec<&[u64]> = vec![&a, &b, &c];
        assert_eq!(kway_merge_loser(&refs), vec![1, 1, 1, 1, 2]);
    }

    #[test]
    fn pairwise_equals_kway() {
        let runs: Vec<Vec<u64>> = (0..7).map(|i| sorted_run(100, 100 + i as u64)).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let expect = kway_merge(&refs);
        assert_eq!(pairwise_merge(runs), expect);
    }

    #[test]
    fn pairwise_trivial_cases() {
        assert!(pairwise_merge(vec![]).is_empty());
        assert_eq!(pairwise_merge(vec![vec![3, 5]]), vec![3, 5]);
    }

    #[test]
    fn run_segments_tile_the_run() {
        let run = sorted_run(1000, 42);
        let refs = [run.as_slice()];
        let splitters = choose_splitters(&refs, 4);
        let bounds = splitter_bounds(&splitters);
        let total: usize = bounds
            .iter()
            .map(|&(lo, hi)| run_segment(&run, lo, hi).len())
            .sum();
        // [lo, u64::MAX) misses only values equal to u64::MAX, which the
        // >>20 shift in sorted_run rules out.
        assert_eq!(total, run.len());
        // Segments must be contiguous and ordered.
        let mut rebuilt = Vec::new();
        for &(lo, hi) in &bounds {
            rebuilt.extend_from_slice(run_segment(&run, lo, hi));
        }
        assert_eq!(rebuilt, run);
    }

    #[test]
    fn splitters_are_strictly_increasing() {
        let runs: Vec<Vec<u64>> = (0..4).map(|i| sorted_run(512, i as u64)).collect();
        let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
        let s = choose_splitters(&refs, 8);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        assert!(s.len() <= 7);
    }

    #[test]
    fn splitters_on_constant_data_collapse() {
        let run = vec![5u64; 100];
        let s = choose_splitters(&[&run], 4);
        // All sample values equal: at most one distinct splitter.
        assert!(s.len() <= 1);
        let bounds = splitter_bounds(&s);
        let total: usize = bounds
            .iter()
            .map(|&(lo, hi)| run_segment(&run, lo, hi).len())
            .sum();
        assert_eq!(total, 100);
    }
}
