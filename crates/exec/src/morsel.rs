//! Morsel-driven work stealing (Leis et al., SIGMOD 2014), the antidote to
//! the static-chunk skew collapse of the paper's Fig. 10: instead of handing
//! each worker one fixed [`chunk_range`](crate::pool::chunk_range), the input
//! index space is carved into fixed-size *morsels* and workers claim them
//! dynamically. Each worker owns a deque of contiguous morsels seeded from
//! its static chunk, so the uncontended fast path touches the same cache
//! lines as static scheduling; only when a worker drains its own deque does
//! it steal — half of the largest victim's remaining morsels in one atomic
//! claim.
//!
//! Exactly-once is by construction, not by protocol subtlety: every claim
//! (owner or thief) goes through the same per-deque `fetch_add` cursor
//! bounded by a fixed upper end, so two claimants can never receive
//! overlapping ranges and no CAS retry loop exists. With one worker the
//! driver degrades to an in-order scan of `0..len`, i.e. exactly the static
//! `chunk_range(len, 1, 0)` behaviour.

use crate::pool::chunk_range;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size in tuples. Large enough that the claim `fetch_add`
/// amortises to noise, small enough that a θ=0.99 Zipf straggler sheds
/// meaningful work.
pub const DEFAULT_MORSEL: usize = 1024;

/// Journal mark emitted when a worker claims a morsel from its own deque.
pub const MARK_CLAIM: &str = "morsel:claim";
/// Journal mark emitted when a worker processes a stolen morsel.
pub const MARK_STEAL: &str = "morsel:steal";

/// Which work-distribution policy a run uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// One fixed `chunk_range` per worker (the paper's baseline).
    #[default]
    Static,
    /// Morsel-driven work stealing via [`MorselQueue`].
    Steal,
}

impl Scheduler {
    /// All schedulers, for sweeps and differential tests.
    pub const ALL: [Scheduler; 2] = [Scheduler::Static, Scheduler::Steal];
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(Scheduler::Static),
            "steal" => Ok(Scheduler::Steal),
            other => Err(format!("unknown scheduler '{other}' (static|steal)")),
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scheduler::Static => "static",
            Scheduler::Steal => "steal",
        })
    }
}

/// One worker's claimable range. `lo..hi` is fixed at construction; `next`
/// is the shared claim cursor. Owners and thieves both advance `next` with
/// a single `fetch_add`, which is what makes every index claimable at most
/// once: the cursor can overshoot `hi` (a failed claim still advances it)
/// but can never hand the same sub-range to two callers.
struct Deque {
    hi: usize,
    next: AtomicUsize,
}

impl Deque {
    fn new(r: Range<usize>) -> Self {
        Deque {
            hi: r.end,
            next: AtomicUsize::new(r.start),
        }
    }

    /// Claim up to `n` indices; `None` once the deque is drained.
    fn claim(&self, n: usize) -> Option<Range<usize>> {
        debug_assert!(n > 0);
        let start = self.next.fetch_add(n, Ordering::Relaxed);
        if start >= self.hi {
            return None;
        }
        Some(start..(start + n).min(self.hi))
    }

    /// Indices not yet claimed (0 once drained, even if the cursor
    /// overshot).
    fn remaining(&self) -> usize {
        self.hi.saturating_sub(self.next.load(Ordering::Relaxed))
    }
}

/// A work-stealing queue over the index space `0..len`: one [`Deque`] per
/// worker, seeded from that worker's static `chunk_range` so locality
/// matches the static scheduler until the first steal.
pub struct MorselQueue {
    deques: Vec<Deque>,
    morsel: usize,
    len: usize,
}

impl MorselQueue {
    /// A queue over `0..len` for `workers` workers claiming `morsel`
    /// indices at a time (clamped to at least 1).
    pub fn new(len: usize, workers: usize, morsel: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let morsel = morsel.max(1);
        let deques = (0..workers)
            .map(|i| Deque::new(chunk_range(len, workers, i)))
            .collect();
        MorselQueue {
            deques,
            morsel,
            len,
        }
    }

    /// Total index space covered by the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the covered index space empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured morsel size.
    pub fn morsel(&self) -> usize {
        self.morsel
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Unclaimed indices across all deques (racy snapshot; exact once all
    /// workers have returned from [`for_each_morsel`]).
    pub fn remaining(&self) -> usize {
        self.deques.iter().map(Deque::remaining).sum()
    }
}

/// Counters returned by [`for_each_morsel`] for one worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MorselStats {
    /// Morsels this worker processed (own and stolen).
    pub claims: u64,
    /// Steal operations: claims taken from another worker's deque. One
    /// steal may cover several morsels; each still counts in `claims`.
    pub steals: u64,
}

impl MorselStats {
    /// Fold another worker's counters into this one.
    pub fn merge(&mut self, other: MorselStats) {
        self.claims += other.claims;
        self.steals += other.steals;
    }
}

/// Drive worker `tid` over `q`: drain the worker's own deque morsel by
/// morsel, then steal half of the largest victim's remaining morsels at a
/// time until every deque is empty. `f` receives each claimed range (at
/// most `q.morsel()` long) plus whether it was stolen. Ranges from one
/// worker's own deque arrive in ascending order; with `workers == 1` the
/// whole of `0..len` is visited in order, matching the static scheduler.
pub fn for_each_morsel<F>(q: &MorselQueue, tid: usize, mut f: F) -> MorselStats
where
    F: FnMut(Range<usize>, bool),
{
    let mut stats = MorselStats::default();
    let m = q.morsel;
    while let Some(r) = q.deques[tid].claim(m) {
        stats.claims += 1;
        f(r, false);
    }
    if q.deques.len() == 1 {
        return stats;
    }
    // Pick the victim with the most unclaimed work, until all are drained.
    while let Some((_, victim)) = q
        .deques
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != tid)
        .max_by_key(|(_, d)| d.remaining())
    {
        let left = victim.remaining();
        if left == 0 {
            break; // every other deque is drained too
        }
        // Steal half of the victim's remaining morsels in one claim.
        let take = (left.div_ceil(m) / 2).max(1) * m;
        let Some(r) = victim.claim(take) else {
            continue; // lost the race; rescan for a victim
        };
        stats.steals += 1;
        let mut lo = r.start;
        while lo < r.end {
            let hi = (lo + m).min(r.end);
            stats.claims += 1;
            f(lo..hi, true);
            lo = hi;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_workers;
    use std::sync::Mutex;

    #[test]
    fn scheduler_parses_and_prints() {
        assert_eq!("static".parse::<Scheduler>().unwrap(), Scheduler::Static);
        assert_eq!("steal".parse::<Scheduler>().unwrap(), Scheduler::Steal);
        assert!("morsel".parse::<Scheduler>().is_err());
        assert_eq!(Scheduler::Static.to_string(), "static");
        assert_eq!(Scheduler::Steal.to_string(), "steal");
        assert_eq!(Scheduler::default(), Scheduler::Static);
    }

    #[test]
    fn single_worker_visits_in_order() {
        let q = MorselQueue::new(1000, 1, 64);
        let mut seen = Vec::new();
        let stats = for_each_morsel(&q, 0, |r, stolen| {
            assert!(!stolen, "nobody to steal from");
            assert!(r.len() <= 64);
            seen.extend(r);
        });
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.claims, 16); // ceil(1000/64)
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = MorselQueue::new(0, 4, 8);
        assert!(q.is_empty());
        for tid in 0..4 {
            let stats = for_each_morsel(&q, tid, |_, _| panic!("no work exists"));
            assert_eq!(stats, MorselStats::default());
        }
    }

    #[test]
    fn lone_runner_steals_everything() {
        // Only worker 0 shows up; it must drain all four deques.
        let q = MorselQueue::new(997, 4, 10);
        let mut seen = vec![false; 997];
        let mut stolen_any = false;
        let stats = for_each_morsel(&q, 0, |r, stolen| {
            stolen_any |= stolen;
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        });
        assert!(seen.iter().all(|&b| b), "every index claimed");
        assert!(stolen_any && stats.steals >= 3, "must steal from 3 victims");
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn concurrent_workers_cover_exactly_once() {
        let len = 100_000;
        let q = MorselQueue::new(len, 8, 128);
        let claimed = Mutex::new(vec![0u8; len]);
        run_workers(8, |tid| {
            let mut local = Vec::new();
            for_each_morsel(&q, tid, |r, _| local.extend(r));
            let mut c = claimed.lock().unwrap();
            for i in local {
                c[i] += 1;
            }
        });
        let c = claimed.lock().unwrap();
        assert!(c.iter().all(|&n| n == 1), "each index exactly once");
    }

    #[test]
    fn morsel_size_is_clamped_to_one() {
        let q = MorselQueue::new(5, 2, 0);
        assert_eq!(q.morsel(), 1);
        let mut seen = Vec::new();
        for tid in 0..2 {
            for_each_morsel(&q, tid, |r, _| seen.extend(r));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
