//! Software write-combining (SWWC) scatter buffers — Kim/Balkesen-style
//! cache-conscious materialization for the radix scatter.
//!
//! The direct scatter writes every tuple straight to its destination range,
//! so with `F` partitions a worker touches up to `F` far-apart output lines
//! per `F` tuples: nearly every write is a cache-line *and* TLB miss once
//! the fan-out outgrows the L1D. The SWWC remedy stages tuples in a
//! per-worker, per-partition buffer of exactly one cache line and flushes a
//! whole line with one bulk copy when it fills. The buffers themselves are
//! compact (`fanout × 64` bytes) and stay cache-resident, so the scatter's
//! miss cost drops toward one output line per [`SWWC_TUPLES_PER_LINE`]
//! tuples. Output is bitwise-identical to the direct scatter, including
//! within-partition tuple order — the buffers only delay the writes, never
//! reorder them.
//!
//! [`simulate_scatter`] replays both variants through `iawj-cachesim` so the
//! claimed miss reduction is checked by a test, not a comment.

use crate::radix::{fanout, partition_of, SharedOut};
use iawj_common::Tuple;

/// Tuples per 64-byte cache line (the flush granule).
pub const SWWC_TUPLES_PER_LINE: usize = 8;

/// Journal mark emitted by engines when a worker drains its write-combining
/// buffers at a chunk/cell boundary.
pub const MARK_FLUSH: &str = "swwc:flush";

/// Which scatter path the radix partitioner uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScatterMode {
    /// Write each tuple straight to its destination slot (the baseline).
    #[default]
    Direct,
    /// Stage tuples in [`SwwcBuffers`] and flush a cache line at a time.
    Swwc,
}

impl ScatterMode {
    /// All scatter modes, for sweeps and differential tests.
    pub const ALL: [ScatterMode; 2] = [ScatterMode::Direct, ScatterMode::Swwc];
}

impl std::str::FromStr for ScatterMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "direct" => Ok(ScatterMode::Direct),
            "swwc" => Ok(ScatterMode::Swwc),
            other => Err(format!("unknown scatter mode '{other}' (direct|swwc)")),
        }
    }
}

impl std::fmt::Display for ScatterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScatterMode::Direct => "direct",
            ScatterMode::Swwc => "swwc",
        })
    }
}

/// One worker's write-combining state: a one-line staging buffer per
/// partition plus its fill level. Allocated once per worker and reused
/// across chunks/cells — [`SwwcBuffers::flush`] leaves every buffer empty,
/// so the same allocation serves the whole scatter pass.
pub struct SwwcBuffers {
    /// Flat staging storage, `fanout × SWWC_TUPLES_PER_LINE` tuples;
    /// partition `p` owns `bufs[p*LINE..(p+1)*LINE]`.
    bufs: Vec<Tuple>,
    /// Tuples currently staged per partition (each `< SWWC_TUPLES_PER_LINE`).
    fill: Vec<u8>,
    /// Full-line flushes performed since construction.
    line_flushes: u64,
    /// End-of-slot drains ([`SwwcBuffers::flush`] calls) since construction.
    drains: u64,
}

impl SwwcBuffers {
    /// Buffers for `fanout` partitions, all empty.
    pub fn new(fanout: usize) -> Self {
        SwwcBuffers {
            bufs: vec![Tuple::default(); fanout * SWWC_TUPLES_PER_LINE],
            fill: vec![0u8; fanout],
            line_flushes: 0,
            drains: 0,
        }
    }

    /// Buffers sized for a partitioning pass on `bits` radix bits.
    pub fn for_bits(bits: u32) -> Self {
        SwwcBuffers::new(fanout(bits))
    }

    /// Number of partitions the buffers cover.
    pub fn fanout(&self) -> usize {
        self.fill.len()
    }

    /// Full-line flushes performed so far (partial end-of-chunk drains are
    /// not counted — they are bounded by the fan-out, not the input size).
    pub fn line_flushes(&self) -> u64 {
        self.line_flushes
    }

    /// End-of-slot drains performed so far — one per scatter chunk/cell,
    /// the granularity engines journal as
    /// [`MARK_FLUSH`](crate::swwc::MARK_FLUSH) instants.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Stage one tuple for partition `p`, flushing a full line to `out` when
    /// the buffer fills. `cursor[p]` is the partition's next output slot and
    /// is advanced only on flush.
    ///
    /// # Safety
    /// Same contract as [`SharedOut::write`]: the `cursor[p]..` slots this
    /// call may flush into must be owned exclusively by this worker, stay in
    /// bounds, and no reader may run concurrently.
    #[inline]
    pub unsafe fn stage(&mut self, p: usize, t: Tuple, cursor: &mut [usize], out: &SharedOut) {
        let n = self.fill[p] as usize;
        let base = p * SWWC_TUPLES_PER_LINE;
        self.bufs[base + n] = t;
        if n + 1 == SWWC_TUPLES_PER_LINE {
            out.write_slice(cursor[p], &self.bufs[base..base + SWWC_TUPLES_PER_LINE]);
            cursor[p] += SWWC_TUPLES_PER_LINE;
            self.fill[p] = 0;
            self.line_flushes += 1;
        } else {
            self.fill[p] = (n + 1) as u8;
        }
    }

    /// Drain every partially-filled buffer to `out`, advancing the cursors.
    /// Afterwards all buffers are empty, ready for the next chunk.
    ///
    /// # Safety
    /// Same contract as [`SwwcBuffers::stage`].
    pub unsafe fn flush(&mut self, cursor: &mut [usize], out: &SharedOut) {
        self.drains += 1;
        for (p, fill) in self.fill.iter_mut().enumerate() {
            let n = *fill as usize;
            if n > 0 {
                let base = p * SWWC_TUPLES_PER_LINE;
                out.write_slice(cursor[p], &self.bufs[base..base + n]);
                cursor[p] += n;
                *fill = 0;
            }
        }
    }
}

/// Simulated miss counters of one scatter pass, via `iawj-cachesim`.
///
/// Replays the memory accesses a single worker makes scattering `tuples` on
/// `(shift, bits)` through a fresh Gold-6126 cache hierarchy: the streaming
/// input read, the per-partition cursor (direct) or fill-byte (SWWC)
/// bookkeeping, the staging-buffer writes, and the output-line writes. The
/// model is the same style as `iawj-core`'s replay profiler: regions are
/// page-aligned and disjoint, and every access is charged at cache-line
/// granularity.
///
/// Full-line SWWC flushes are modelled as non-temporal stores
/// ([`iawj_cachesim::CoreCaches::store_range_nt`]), as in Balkesen et al.'s
/// `movntdq` implementation — that bypass is where the technique's L1D/L2
/// relief comes from, since the staging buffers themselves occupy exactly as
/// many lines as the direct scatter's active output fronts. Our portable
/// scatter approximates the NT burst with a bulk `memcpy`; the simulator
/// charges the idealized hardware cost. Absolute counts are not
/// silicon-accurate (no prefetchers), but the *ordering* — SWWC incurring
/// strictly fewer L1D+L2 misses than direct at high fan-out — is exactly
/// what the A/B test asserts.
pub fn simulate_scatter(
    tuples: &[Tuple],
    shift: u32,
    bits: u32,
    mode: ScatterMode,
) -> iawj_cachesim::Counters {
    use iawj_cachesim::Hierarchy;

    const TUPLE_BYTES: u64 = std::mem::size_of::<Tuple>() as u64;
    const LINE_BYTES: u64 = 64;
    // Disjoint page-aligned regions, far enough apart that no two ever
    // share a line or page.
    const INPUT_BASE: u64 = 1 << 30;
    const OUTPUT_BASE: u64 = 1 << 32;
    const CURSOR_BASE: u64 = 1 << 34;
    const FILL_BASE: u64 = 1 << 35;
    const BUF_BASE: u64 = 1 << 36;

    let f = fanout(bits);
    // Replay needs real destination slots: histogram + exclusive prefix sum.
    let mut cursor = vec![0usize; f];
    for t in tuples {
        cursor[partition_of(t.key, shift, bits)] += 1;
    }
    let mut acc = 0usize;
    for c in cursor.iter_mut() {
        let n = *c;
        *c = acc;
        acc += n;
    }

    let mut sim = Hierarchy::new(1);
    let core = &mut sim.cores[0];
    let mut fill = vec![0u8; f];
    for (i, t) in tuples.iter().enumerate() {
        let p = partition_of(t.key, shift, bits);
        core.access_range(INPUT_BASE + i as u64 * TUPLE_BYTES, TUPLE_BYTES);
        match mode {
            ScatterMode::Direct => {
                // Read-modify-write of the cursor entry, then one tuple
                // store to wherever that partition's range currently ends.
                core.access_range(CURSOR_BASE + p as u64 * 8, 8);
                core.access_range(OUTPUT_BASE + cursor[p] as u64 * TUPLE_BYTES, TUPLE_BYTES);
                cursor[p] += 1;
            }
            ScatterMode::Swwc => {
                // Fill-byte check plus a store into the compact staging
                // line; a full line costs one 64-byte output burst and one
                // cursor bump.
                core.access_range(FILL_BASE + p as u64, 1);
                let n = fill[p] as usize;
                core.access_range(
                    BUF_BASE + (p * SWWC_TUPLES_PER_LINE + n) as u64 * TUPLE_BYTES,
                    TUPLE_BYTES,
                );
                if n + 1 == SWWC_TUPLES_PER_LINE {
                    core.access_range(CURSOR_BASE + p as u64 * 8, 8);
                    core.store_range_nt(OUTPUT_BASE + cursor[p] as u64 * TUPLE_BYTES, LINE_BYTES);
                    cursor[p] += SWWC_TUPLES_PER_LINE;
                    fill[p] = 0;
                } else {
                    fill[p] = (n + 1) as u8;
                }
            }
        }
    }
    if mode == ScatterMode::Swwc {
        // Partial tails cannot use full-line NT bursts; they drain through
        // ordinary stores, bounded by the fan-out rather than the input.
        for p in 0..f {
            let n = fill[p] as usize;
            if n > 0 {
                core.access_range(CURSOR_BASE + p as u64 * 8, 8);
                core.access_range(
                    OUTPUT_BASE + cursor[p] as u64 * TUPLE_BYTES,
                    n as u64 * TUPLE_BYTES,
                );
                cursor[p] += n;
            }
        }
    }
    sim.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Rng;

    #[test]
    fn scatter_mode_parses_and_prints() {
        assert_eq!(
            "direct".parse::<ScatterMode>().unwrap(),
            ScatterMode::Direct
        );
        assert_eq!("swwc".parse::<ScatterMode>().unwrap(), ScatterMode::Swwc);
        assert!("buffered".parse::<ScatterMode>().is_err());
        assert_eq!(ScatterMode::Direct.to_string(), "direct");
        assert_eq!(ScatterMode::Swwc.to_string(), "swwc");
        assert_eq!(ScatterMode::default(), ScatterMode::Direct);
    }

    fn random_tuples(n: usize, seed: u64) -> Vec<Tuple> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| Tuple::new(rng.next_u32(), i as u32))
            .collect()
    }

    /// The tentpole's acceptance criterion: at ≥10 radix bits the SWWC
    /// scatter must incur strictly fewer simulated L1D+L2 misses than the
    /// direct scatter. 2 MiB of input makes the output region overflow the
    /// 1 MiB L2, which is exactly the regime Figure 18 studies.
    #[test]
    fn swwc_beats_direct_on_simulated_misses() {
        let tuples = random_tuples(1 << 18, 42);
        for bits in [10u32, 12] {
            let direct = simulate_scatter(&tuples, 0, bits, ScatterMode::Direct);
            let swwc = simulate_scatter(&tuples, 0, bits, ScatterMode::Swwc);
            let d = direct.l1d_misses + direct.l2_misses;
            let s = swwc.l1d_misses + swwc.l2_misses;
            assert!(
                s < d,
                "swwc must miss less at {bits} bits: direct={d} swwc={s}"
            );
            // The output-side traffic should approach one line per
            // SWWC_TUPLES_PER_LINE tuples, so the gap is structural, not
            // marginal: require at least a 10% reduction.
            assert!(s * 10 < d * 9, "expected ≥10% reduction, got {s} vs {d}");
            assert!(
                swwc.dtlb_misses < direct.dtlb_misses,
                "line-at-a-time flushes must also cut TLB misses"
            );
        }
    }

    /// Below the L1D working-set knee the two paths are allowed to tie —
    /// the simulator must still count both without panicking.
    #[test]
    fn simulate_scatter_handles_tiny_inputs() {
        let tuples = random_tuples(100, 7);
        for mode in ScatterMode::ALL {
            let c = simulate_scatter(&tuples, 0, 4, mode);
            assert!(c.accesses > 0);
        }
        for mode in ScatterMode::ALL {
            let c = simulate_scatter(&[], 0, 4, mode);
            assert_eq!(c.l3_misses, 0);
            assert_eq!(c.accesses, 0);
        }
    }
}
