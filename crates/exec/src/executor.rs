//! The persistent worker-pool executor.
//!
//! [`run_workers`](crate::pool::run_workers) spawns and joins fresh OS
//! threads per call. For one multi-millisecond batch join that cost is
//! noise, but the streaming service runs an engine *per window close* —
//! thousands of times per second at sustained rates — and then thread
//! creation, cold stacks, and arbitrary OS placement become a measurable
//! tax. [`Executor`] amortizes all three: a pool of named, optionally
//! *pinned* workers is created once (per `RunConfig` / `StreamingJoin`)
//! and reused across phases, runs, and window closes.
//!
//! Dispatch protocol: workers park on a condvar guarding a generation
//! counter. A [`Executor::run`] call type-erases the job closure, bumps
//! the generation, and wakes everyone; workers with `tid < n` run the
//! job, the caller itself runs lane 0, and a completion count signals a
//! second condvar. Results land in tid order and worker panics are
//! re-raised on the caller — byte-for-byte the `run_workers` contract,
//! which is what makes `--executor {spawn,pool}` a pure performance knob
//! ([`Executor::run`] is differential-tested against `run_workers` across
//! every engine).
//!
//! Placement: an optional [`PinPolicy`] maps workers onto the CPUs of the
//! affinity mask ([`Topology::plan`]) and each pool worker pins itself
//! once at startup via raw `sched_setaffinity`. Pin failures and missing
//! topology degrade to unpinned workers with a journaled
//! [`MARK_EXEC_UNPINNED`] notice — never an error. The executor also
//! tracks the CPU each lane was last observed on and counts involuntary
//! migrations, which the Chrome-trace export surfaces per worker.
//!
//! This pool is deliberately the seam a future sharded (shared-nothing)
//! execution layer plugs into: one executor per shard, placement per
//! NUMA node.

use crate::pool::run_workers;
use crate::topology::{current_cpu, pin_to_cpu, PinPolicy, Topology};
use iawj_obs::journal::SpanJournal;
use iawj_obs::{MARK_EXEC_DISPATCH, MARK_EXEC_PARK, MARK_EXEC_UNPINNED};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Observed-CPU sentinel: lane never seen on any CPU yet.
const CPU_UNKNOWN: usize = usize::MAX;

/// How an [`Executor`] obtains its worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Fresh scoped threads per run (`run_workers`, the seed behaviour).
    Spawn,
    /// A persistent parked worker pool, reused across runs.
    #[default]
    Pool,
}

impl ExecMode {
    /// Both modes, for sweeps.
    pub const ALL: [ExecMode; 2] = [ExecMode::Spawn, ExecMode::Pool];
}

impl std::str::FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spawn" => Ok(ExecMode::Spawn),
            "pool" => Ok(ExecMode::Pool),
            other => Err(format!("unknown executor mode '{other}'")),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecMode::Spawn => "spawn",
            ExecMode::Pool => "pool",
        })
    }
}

/// A type-erased dispatched job: the wrapper closure of the current
/// generation plus its lane count.
///
/// The raw pointer is only dereferenced by workers between the generation
/// bump that published it and the `active == 0` handshake that retires it,
/// while the caller keeps the closure alive on its stack.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    n: usize,
}

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and outlives every dereference per the generation protocol above.
unsafe impl Send for Job {}

/// Dispatch state guarded by `Inner::state`.
struct PoolState {
    /// Bumped once per dispatched generation; workers park until it moves.
    generation: u64,
    /// The current generation's job, cleared once the generation retires.
    job: Option<Job>,
    /// Pool workers still running the current generation.
    active: usize,
    /// Set once by `Drop`; workers exit on observing it.
    shutdown: bool,
}

/// State shared between the executor handle and its pool workers.
struct Inner {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a generation bump (or shutdown).
    cv_dispatch: Condvar,
    /// The dispatching caller parks here waiting for `active == 0`.
    cv_done: Condvar,
    /// Planned CPU per lane (`None` = unpinned). Lane 0 is the caller and
    /// is never pinned — the executor must not hijack its host thread's
    /// affinity (it may be a streaming operator or a user thread).
    placement: Vec<Option<usize>>,
    /// CPU each lane was last observed on ([`CPU_UNKNOWN`] = never).
    observed: Vec<AtomicUsize>,
    /// Lane moved between CPUs across observations (for pinned lanes this
    /// means the kernel overrode the pin; for unpinned lanes, an ordinary
    /// scheduler migration).
    migrations: AtomicU64,
    /// Executor-lifecycle journal: dispatch/park instants and placement
    /// degradation notices.
    journal: Mutex<SpanJournal>,
}

impl Inner {
    fn mark(&self, name: &'static str) {
        let now = Instant::now();
        if let Ok(mut j) = self.journal.lock() {
            j.mark(name, now);
        }
    }

    /// Record the CPU lane `tid` is on right now; count a migration when
    /// it moved since the previous observation.
    fn note_observed(&self, tid: usize) {
        let Some(cpu) = current_cpu() else { return };
        let Some(slot) = self.observed.get(tid) else {
            return;
        };
        let prev = slot.swap(cpu, Ordering::Relaxed);
        if prev != CPU_UNKNOWN && prev != cpu {
            self.migrations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A reusable parallel-section runner: either a persistent pinned worker
/// pool or a thin wrapper over per-run spawning, selected by [`ExecMode`].
///
/// Created once per `RunConfig`/`StreamingJoin`; [`Executor::run`] has
/// exactly the `run_workers` contract (tid-ordered results, propagated
/// panics), so engines are agnostic to which mode drives them.
pub struct Executor {
    mode: ExecMode,
    pin: PinPolicy,
    threads: usize,
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Build an executor for up to `threads` concurrent lanes. Pool mode
    /// spawns `threads - 1` named (`iawj-worker-N`) parked workers and
    /// pins them per `pin`; spawn mode spawns nothing and `pin` is
    /// recorded but inert (per-run scoped threads are placed by the OS).
    ///
    /// Placement failures — empty topology, denied `sched_setaffinity` —
    /// degrade to unpinned workers with a [`MARK_EXEC_UNPINNED`] journal
    /// notice; construction itself never fails.
    pub fn new(mode: ExecMode, pin: PinPolicy, threads: usize) -> Executor {
        let threads = threads.max(1);
        let mut placement = match mode {
            ExecMode::Pool => Topology::detect().plan(pin, threads),
            ExecMode::Spawn => vec![None; threads],
        };
        if let Some(first) = placement.first_mut() {
            // Lane 0 is the calling thread: never pin it.
            *first = None;
        }
        let degraded = mode == ExecMode::Pool
            && pin != PinPolicy::None
            && placement.iter().all(|p| p.is_none());
        let inner = Arc::new(Inner {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            cv_dispatch: Condvar::new(),
            cv_done: Condvar::new(),
            placement,
            observed: (0..threads)
                .map(|_| AtomicUsize::new(CPU_UNKNOWN))
                .collect(),
            migrations: AtomicU64::new(0),
            // Spawn-mode executors are often short-lived delegate shims
            // (e.g. the plain `partition_parallel` entry points), so keep
            // their journal allocation small; pool journals are sized for
            // a long dispatch/park history.
            journal: Mutex::new(SpanJournal::with_capacity(
                Instant::now(),
                match mode {
                    ExecMode::Pool => 1024,
                    ExecMode::Spawn => 256,
                },
            )),
        });
        if degraded {
            inner.mark(MARK_EXEC_UNPINNED);
        }
        let mut handles = Vec::new();
        if mode == ExecMode::Pool {
            for w in 1..threads {
                let inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name(format!("iawj-worker-{w}"))
                    .spawn(move || worker_loop(w, inner));
                match handle {
                    Ok(h) => handles.push(h),
                    // Thread spawn failed (resource exhaustion): degrade
                    // to fewer pool workers; `run` falls back to scoped
                    // spawning when a job needs more lanes than the pool.
                    Err(_) => break,
                }
            }
        }
        Executor {
            mode,
            pin,
            threads,
            inner,
            handles,
        }
    }

    /// A plain spawn-mode executor (no pool, no pinning) — the drop-in
    /// stand-in wherever an `&Executor` is required but no long-lived
    /// pool exists.
    pub fn spawn_mode() -> Executor {
        Executor::new(ExecMode::Spawn, PinPolicy::None, 1)
    }

    /// Which mode drives parallel sections.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The placement policy this executor was built with.
    pub fn pin_policy(&self) -> PinPolicy {
        self.pin
    }

    /// The lane count the executor was sized for. Larger `run` requests
    /// still work (they fall back to per-run spawning).
    pub fn capacity(&self) -> usize {
        self.threads
    }

    /// True when at least one worker has a planned CPU — the gate for
    /// NUMA first-touch initialization in the engines (touching by chunk
    /// only helps when lanes stay where their pages were faulted in).
    pub fn pinned(&self) -> bool {
        self.inner.placement.iter().any(|p| p.is_some())
    }

    /// Number of generations dispatched through the pool so far.
    pub fn generations(&self) -> u64 {
        self.inner.state.lock().map(|s| s.generation).unwrap_or(0)
    }

    /// Observed lane-to-CPU moves since construction (see
    /// [`Executor::run`]'s per-dispatch observation points).
    pub fn migrations(&self) -> u64 {
        self.inner.migrations.load(Ordering::Relaxed)
    }

    /// The CPU planned for lane `tid` (`None`: unpinned or out of range).
    pub fn planned_core(&self, tid: usize) -> Option<usize> {
        self.inner.placement.get(tid).copied().flatten()
    }

    /// The CPU lane `tid` was last observed on (`None`: never observed,
    /// `getcpu` unavailable, or out of range).
    pub fn observed_core(&self, tid: usize) -> Option<usize> {
        self.inner
            .observed
            .get(tid)
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&c| c != CPU_UNKNOWN)
    }

    /// Number of retained executor-journal marks with this name
    /// (`exec:dispatch`, `exec:park`, `exec:unpinned`).
    pub fn count_marks(&self, name: &str) -> usize {
        self.inner
            .journal
            .lock()
            .map(|j| j.count_marks(name))
            .unwrap_or(0)
    }

    /// Run `f(tid)` for `tid` in `0..n` concurrently and return the
    /// results in tid order — the `run_workers` contract, including panic
    /// propagation. Lane 0 always runs on the calling thread.
    ///
    /// Pool mode dispatches onto the parked workers; `n == 1` runs
    /// inline, and `n > capacity` falls back to per-run spawning (engine
    /// jobs embed `Barrier(n)`, so all `n` lanes must truly run
    /// concurrently).
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        assert!(n > 0, "executor needs at least one lane");
        self.inner.note_observed(0);
        if n == 1 {
            return vec![f(0)];
        }
        if self.handles.len() + 1 < n {
            // Spawn mode, or a job wider than the pool.
            return run_workers(n, f);
        }
        self.dispatch(n, f)
    }

    fn dispatch<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let inner = &*self.inner;
        let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        {
            let f = &f;
            let results = &results;
            // Every lane runs through this wrapper: catch the panic so a
            // failing lane cannot unwind while other workers still hold
            // the type-erased closure pointer; re-raised in tid order
            // after the whole generation retires.
            let wrapper = move |tid: usize| {
                let r = catch_unwind(AssertUnwindSafe(|| f(tid)));
                if let Ok(mut slot) = results[tid].lock() {
                    *slot = Some(r);
                }
            };
            // SAFETY: only the lifetime is erased. The closure outlives
            // every dereference: workers release it by driving `active`
            // to 0, which the caller awaits below before `wrapper` drops.
            let job = Job {
                f: unsafe { erase_job(&wrapper) },
                n,
            };
            {
                let mut st = inner.state.lock().unwrap();
                debug_assert!(st.job.is_none(), "overlapping dispatch");
                st.job = Some(job);
                st.active = n - 1;
                st.generation += 1;
            }
            inner.cv_dispatch.notify_all();
            inner.mark(MARK_EXEC_DISPATCH);
            wrapper(0);
            let mut st = inner.state.lock().unwrap();
            while st.active != 0 {
                st = inner.cv_done.wait(st).unwrap();
            }
            st.job = None;
        }
        let mut first_panic = None;
        let mut out = Vec::with_capacity(n);
        for (tid, cell) in results.into_iter().enumerate() {
            match cell.into_inner().unwrap() {
                Some(Ok(v)) => out.push(v),
                Some(Err(p)) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
                None => unreachable!("executor lane {tid} retired without a result"),
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        out
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        if let Ok(mut st) = self.inner.state.lock() {
            st.shutdown = true;
        }
        self.inner.cv_dispatch.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("mode", &self.mode)
            .field("pin", &self.pin)
            .field("threads", &self.threads)
            .field("workers", &self.handles.len())
            .finish()
    }
}

/// Erase the lifetime of a job closure so it can sit in [`PoolState`].
///
/// # Safety
///
/// The caller must keep the closure alive, and only hand out the pointer
/// to lanes of a generation it retires (`active == 0`) before the closure
/// drops — which is exactly the [`Executor::dispatch`] protocol.
unsafe fn erase_job<'a>(
    f: &'a (dyn Fn(usize) + Sync + 'a),
) -> *const (dyn Fn(usize) + Sync + 'static) {
    // SAFETY: fat-pointer layout is lifetime-independent; validity of
    // later dereferences is the caller's contract above.
    let long: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&'a (dyn Fn(usize) + Sync + 'a), &'static (dyn Fn(usize) + Sync)>(f)
    };
    long as *const _
}

/// The parked pool worker: pin once, then loop on
/// park → observe generation bump → run lane (if `tid < n`) → report.
fn worker_loop(w: usize, inner: Arc<Inner>) {
    if let Some(cpu) = inner.placement.get(w).copied().flatten() {
        if pin_to_cpu(cpu) {
            inner.observed[w].store(cpu, Ordering::Relaxed);
        } else {
            inner.mark(MARK_EXEC_UNPINNED);
        }
    }
    let mut last_gen = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            if !st.shutdown && st.generation == last_gen {
                // About to park. The journal has its own lock, so step
                // outside the state lock to record the instant.
                drop(st);
                inner.mark(MARK_EXEC_PARK);
                st = inner.state.lock().unwrap();
                while !st.shutdown && st.generation == last_gen {
                    st = inner.cv_dispatch.wait(st).unwrap();
                }
            }
            if st.shutdown {
                return;
            }
            last_gen = st.generation;
            st.job
        };
        // `job` can be None only if the generation already retired before
        // this (non-participating) worker woke; nothing to do then.
        let Some(job) = job else { continue };
        if w < job.n {
            inner.note_observed(w);
            // SAFETY: `w < n` means this lane is a participant of the
            // still-open generation `last_gen`: the caller blocks on
            // `active == 0` and keeps the closure alive until after this
            // lane's decrement below.
            let f = unsafe { &*job.f };
            f(w);
            let mut st = inner.state.lock().unwrap();
            st.active -= 1;
            if st.active == 0 {
                inner.cv_done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{barrier, run_workers};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn exec_mode_parse_and_display() {
        for m in ExecMode::ALL {
            assert_eq!(m.to_string().parse::<ExecMode>().unwrap(), m);
        }
        assert_eq!("POOL".parse::<ExecMode>().unwrap(), ExecMode::Pool);
        assert!("fork".parse::<ExecMode>().is_err());
        assert_eq!(ExecMode::default(), ExecMode::Pool);
    }

    #[test]
    fn pool_matches_run_workers_in_tid_order() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
        let pooled = exec.run(4, |tid| tid * 10);
        assert_eq!(pooled, run_workers(4, |tid| tid * 10));
        assert_eq!(pooled, vec![0, 10, 20, 30]);
        assert_eq!(exec.generations(), 1);
    }

    #[test]
    fn single_lane_runs_inline() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
        let caller = std::thread::current().id();
        let ids = exec.run(1, |_| std::thread::current().id());
        assert_eq!(ids, vec![caller]);
        assert_eq!(exec.generations(), 0, "inline lanes skip the pool");
    }

    #[test]
    fn spawn_mode_matches_pool() {
        let spawn = Executor::new(ExecMode::Spawn, PinPolicy::None, 4);
        let pool = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
        for n in [1, 2, 3, 4] {
            assert_eq!(spawn.run(n, |tid| tid + 1), pool.run(n, |tid| tid + 1));
        }
    }

    #[test]
    fn reuse_across_heterogeneous_lane_counts() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
        for round in 0..100usize {
            let n = 1 + round % 4;
            let got = exec.run(n, |tid| round * 10 + tid);
            let want: Vec<usize> = (0..n).map(|tid| round * 10 + tid).collect();
            assert_eq!(got, want, "round {round} with {n} lanes");
        }
    }

    #[test]
    fn barrier_job_synchronises_all_lanes() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
        let gate = barrier(4);
        let after = AtomicUsize::new(0);
        exec.run(4, |_| {
            gate.wait();
            after.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(after.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn wider_than_pool_falls_back_to_spawning() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 2);
        // 6 lanes with a Barrier(6): only possible if all 6 truly run
        // concurrently, which the 2-lane pool cannot do by itself.
        let gate = barrier(6);
        let out = exec.run(6, |tid| {
            gate.wait();
            tid
        });
        assert_eq!(out, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            exec.run(4, |tid| {
                if tid == 2 {
                    panic!("injected failure");
                }
                tid
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_else(|| {
            payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .unwrap()
        });
        assert!(msg.contains("injected failure"), "{msg}");
        // The pool is not poisoned: the next generation runs normally.
        assert_eq!(exec.run(4, |tid| tid), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dispatch_and_park_marks_are_journaled() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 3);
        for _ in 0..5 {
            exec.run(3, |tid| tid);
        }
        assert_eq!(exec.count_marks(MARK_EXEC_DISPATCH), 5);
        assert!(
            exec.count_marks(MARK_EXEC_PARK) >= 2,
            "workers parked at least once"
        );
    }

    #[test]
    fn pinned_pool_still_computes_exactly() {
        // Pinning may or may not succeed on this host; either way results
        // are identical and nothing panics (degradation is journaled).
        for pin in [PinPolicy::Compact, PinPolicy::Scatter] {
            let exec = Executor::new(ExecMode::Pool, pin, 4);
            assert_eq!(exec.run(4, |tid| tid * 3), vec![0, 3, 6, 9]);
            for tid in 1..4 {
                if let (Some(planned), Some(observed)) =
                    (exec.planned_core(tid), exec.observed_core(tid))
                {
                    let _ = (planned, observed); // both queryable, no panic
                }
            }
            assert!(exec.planned_core(0).is_none(), "caller lane never pinned");
        }
    }

    #[cfg(target_os = "linux")]
    fn count_dir_entries(path: &str) -> usize {
        std::fs::read_dir(path).map(|d| d.count()).unwrap_or(0)
    }

    /// Unrelated tests in this binary run concurrently and spawn their
    /// own (short-lived) threads, so exact process-wide counts are racy.
    /// A genuine per-generation leak shows up as *thousands* of extra
    /// entries across a 10k-generation soak; this slack absorbs harness
    /// noise while keeping that signal unmistakable.
    #[cfg(target_os = "linux")]
    const LEAK_SLACK: usize = 64;

    /// The park/unpark soak: 10k generations through one pool must not
    /// leak threads or file descriptors.
    #[test]
    fn soak_10k_generations_leaks_nothing() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 3);
        exec.run(3, |tid| tid); // warm up: workers spawned and parked
        #[cfg(target_os = "linux")]
        let (threads_before, fds_before) = (
            count_dir_entries("/proc/self/task"),
            count_dir_entries("/proc/self/fd"),
        );
        let total = AtomicUsize::new(0);
        for gen in 0..10_000usize {
            let n = 2 + gen % 2;
            let parts = exec.run(n, |tid| tid + gen);
            total.fetch_add(parts.iter().sum::<usize>(), Ordering::Relaxed);
        }
        assert_eq!(exec.generations(), 10_001);
        #[cfg(target_os = "linux")]
        {
            let threads_after = count_dir_entries("/proc/self/task");
            let fds_after = count_dir_entries("/proc/self/fd");
            assert!(
                threads_after <= threads_before + LEAK_SLACK,
                "thread leak across generations: {threads_before} -> {threads_after}"
            );
            assert!(
                fds_after <= fds_before + LEAK_SLACK,
                "fd leak across generations: {fds_before} -> {fds_after}"
            );
        }
        assert!(total.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn drop_joins_all_workers() {
        #[cfg(target_os = "linux")]
        let before = count_dir_entries("/proc/self/task");
        // 50 pools × 3 workers: if Drop failed to shut the workers down,
        // ~150 threads would accumulate — far beyond the slack.
        for round in 0..50usize {
            let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 4);
            assert_eq!(exec.run(4, |tid| tid + round)[3], 3 + round);
        }
        #[cfg(target_os = "linux")]
        {
            let after = count_dir_entries("/proc/self/task");
            assert!(
                after <= before + LEAK_SLACK,
                "workers survived executor drop: {before} -> {after}"
            );
        }
    }

    #[test]
    fn worker_threads_are_named() {
        let exec = Executor::new(ExecMode::Pool, PinPolicy::None, 3);
        let names = exec.run(3, |_| std::thread::current().name().map(str::to_owned));
        // Lane 0 is the caller (test harness thread); lanes 1..n are pool
        // workers with stable names.
        assert_eq!(names[1].as_deref(), Some("iawj-worker-1"));
        assert_eq!(names[2].as_deref(), Some("iawj-worker-2"));
    }
}
