//! The evictable window index behind the IBWJ engine family.
//!
//! A bucket-chain hash index over `(key, ts)` entries that — unlike
//! [`crate::LocalTable`], whose arena is append-only — supports removing
//! entries as they leave the window ([`WindowIndex::evict_before`]).
//! Evicted slots go on a free list and are reused by later inserts, so the
//! arena's footprint tracks the *peak resident* window content rather than
//! the whole stream's history: the property that makes an index-based
//! engine viable on an unbounded stream.
//!
//! The batched probe pipeline of PR 8 is supported through the same
//! `mask` / `prefetch_bucket` / `insert_at` / `probe_at` surface as the
//! other tables, so engines derive bucket indices 8 keys at a time with
//! [`iawj_common::kernel::tuple_buckets_into`] and software-prefetch chain
//! heads ahead of the walk.
//!
//! ## Concurrency contract
//!
//! The index itself is single-writer: all mutation (`insert`,
//! `evict_before`) happens on one thread at a time. Concurrent *probing*
//! is safe by construction — `&WindowIndex` has no interior mutability, so
//! any number of workers may probe shared references in parallel, and the
//! executor's dispatch/join edges (or a barrier) provide the
//! happens-before ordering between a maintenance phase and the probe
//! phase that follows it. This is the same build-then-probe argument NPJ
//! relies on, applied to an index that lives across many probe phases.
//! Sharded multi-writer use wraps shards in a `Mutex` (see the IBWJ_PART
//! engine), keeping this type free of unsafe code.

use iawj_common::hash::{bucket_of, next_pow2_at_least};
use iawj_common::{prefetch_read, Key, Ts};

/// Chain terminator / free-list terminator.
const NIL: i32 = -1;

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: Key,
    ts: Ts,
    next: i32,
}

/// An evictable single-writer, multi-reader hash index over window
/// content. See the module docs for the concurrency contract.
#[derive(Debug)]
pub struct WindowIndex {
    mask: u64,
    heads: Vec<i32>,
    entries: Vec<Entry>,
    /// Head of the free list threaded through `entries[..].next`.
    free: i32,
    /// Entries currently linked into a bucket chain.
    live: usize,
}

impl WindowIndex {
    /// Index sized for roughly `expected` resident entries (2× buckets,
    /// minimum 16).
    pub fn with_capacity(expected: usize) -> Self {
        let buckets = next_pow2_at_least(expected * 2, 16);
        WindowIndex {
            mask: buckets as u64 - 1,
            heads: vec![NIL; buckets],
            entries: Vec::with_capacity(expected),
            free: NIL,
            live: 0,
        }
    }

    /// Number of resident (non-evicted) entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.heads.capacity() * std::mem::size_of::<i32>()
            + self.entries.capacity() * std::mem::size_of::<Entry>()
    }

    /// The power-of-two bucket mask, for batched bucket derivation
    /// (`iawj_common::kernel::tuple_buckets_into`).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Hint-prefetch the chain head of bucket `b` ahead of an
    /// [`WindowIndex::insert_at`]/[`WindowIndex::probe_at`] at distance.
    #[inline]
    pub fn prefetch_bucket(&self, b: usize) {
        if let Some(h) = self.heads.get(b) {
            prefetch_read(h);
        }
    }

    /// Insert an entry, doubling the bucket array whenever the load
    /// factor reaches 1 (amortized O(1); chains stay short no matter how
    /// far the resident set outgrows the initial capacity hint). Only
    /// this self-bucketing path rehashes — [`WindowIndex::insert_at`]
    /// trusts the caller's bucket indices, so batched pipelines derive
    /// them against a [`WindowIndex::mask`] that is stable for the whole
    /// batch.
    #[inline]
    pub fn insert(&mut self, key: Key, ts: Ts) {
        if self.live >= self.heads.len() {
            self.grow();
        }
        self.insert_at(bucket_of(key, self.mask), key, ts);
    }

    /// Double the bucket array and relink every resident entry.
    /// O(resident + buckets); free-listed slots are unreachable from any
    /// head, so exactly the live entries move.
    fn grow(&mut self) {
        let buckets = self.heads.len() * 2;
        let mask = buckets as u64 - 1;
        let mut heads = vec![NIL; buckets];
        for b in 0..self.heads.len() {
            let mut cur = self.heads[b];
            while cur != NIL {
                let next = self.entries[cur as usize].next;
                let nb = bucket_of(self.entries[cur as usize].key, mask);
                self.entries[cur as usize].next = heads[nb];
                heads[nb] = cur;
                cur = next;
            }
        }
        self.heads = heads;
        self.mask = mask;
    }

    /// [`WindowIndex::insert`] with the bucket index already derived
    /// (batched pipelines).
    #[inline]
    pub fn insert_at(&mut self, b: usize, key: Key, ts: Ts) {
        let slot = if self.free != NIL {
            let slot = self.free as usize;
            self.free = self.entries[slot].next;
            slot
        } else {
            self.entries.push(Entry {
                key: 0,
                ts: 0,
                next: NIL,
            });
            self.entries.len() - 1
        };
        self.entries[slot] = Entry {
            key,
            ts,
            next: self.heads[b],
        };
        self.heads[b] = slot as i32;
        self.live += 1;
    }

    /// Visit the timestamp of every resident entry with `key`.
    #[inline]
    pub fn probe(&self, key: Key, f: impl FnMut(Ts)) {
        self.probe_at(bucket_of(key, self.mask), key, f);
    }

    /// [`WindowIndex::probe`] with the bucket index already derived
    /// (batched pipelines).
    #[inline]
    pub fn probe_at(&self, b: usize, key: Key, mut f: impl FnMut(Ts)) {
        let mut cur = self.heads[b];
        while cur != NIL {
            let e = &self.entries[cur as usize];
            if e.key == key {
                f(e.ts);
            }
            cur = e.next;
        }
    }

    /// Visit the timestamp of every resident entry with `key` whose ts
    /// lies in `[lo, hi)` — the range filter of a windowed probe against
    /// an index that also holds content beyond the probed window.
    #[inline]
    pub fn probe_range_at(&self, b: usize, key: Key, lo: Ts, hi: Ts, mut f: impl FnMut(Ts)) {
        self.probe_at(b, key, |ts| {
            if ts >= lo && ts < hi {
                f(ts);
            }
        });
    }

    /// Unlink every entry with `ts < horizon` and recycle its slot.
    /// Returns how many entries were evicted. O(resident + buckets); meant
    /// to run at window-close cadence, not per tuple.
    pub fn evict_before(&mut self, horizon: Ts) -> usize {
        let mut evicted = 0usize;
        for b in 0..self.heads.len() {
            let mut cur = self.heads[b];
            let mut prev = NIL;
            while cur != NIL {
                let next = self.entries[cur as usize].next;
                if self.entries[cur as usize].ts < horizon {
                    if prev == NIL {
                        self.heads[b] = next;
                    } else {
                        self.entries[prev as usize].next = next;
                    }
                    self.entries[cur as usize].next = self.free;
                    self.free = cur;
                    evicted += 1;
                } else {
                    prev = cur;
                }
                cur = next;
            }
        }
        self.live -= evicted;
        evicted
    }

    /// Count resident entries with `key` (tests and diagnostics).
    pub fn count(&self, key: Key) -> usize {
        let mut n = 0;
        self.probe(key, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_probe_roundtrip() {
        let mut ix = WindowIndex::with_capacity(8);
        for i in 0..100u32 {
            ix.insert(i % 10, i);
        }
        assert_eq!(ix.len(), 100);
        assert_eq!(ix.count(3), 10);
        let mut got = Vec::new();
        ix.probe(7, |ts| got.push(ts));
        got.sort_unstable();
        assert_eq!(got, vec![7, 17, 27, 37, 47, 57, 67, 77, 87, 97]);
    }

    #[test]
    fn eviction_unlinks_and_reuses_slots() {
        let mut ix = WindowIndex::with_capacity(8);
        for i in 0..100u32 {
            ix.insert(i % 10, i);
        }
        let arena_before = ix.entries.len();
        assert_eq!(ix.evict_before(50), 50);
        assert_eq!(ix.len(), 50);
        assert_eq!(ix.count(3), 5, "ts 3,13,23,33,43 evicted");
        // Freed slots are recycled: the arena must not grow.
        for i in 100..150u32 {
            ix.insert(i % 10, i);
        }
        assert_eq!(ix.entries.len(), arena_before, "free list reuses slots");
        assert_eq!(ix.len(), 100);
        // Evicting everything empties the index but keeps it usable.
        assert_eq!(ix.evict_before(1000), 100);
        assert!(ix.is_empty());
        ix.insert(1, 1);
        assert_eq!(ix.count(1), 1);
    }

    #[test]
    fn evict_below_everything_is_a_noop() {
        let mut ix = WindowIndex::with_capacity(4);
        ix.insert(1, 10);
        ix.insert(2, 20);
        assert_eq!(ix.evict_before(0), 0);
        assert_eq!(ix.evict_before(10), 0, "horizon is exclusive");
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn range_probe_filters_both_ends() {
        let mut ix = WindowIndex::with_capacity(8);
        for ts in [5u32, 10, 15, 20, 25] {
            ix.insert(9, ts);
        }
        let b = bucket_of(9, ix.mask());
        let mut got = Vec::new();
        ix.probe_range_at(b, 9, 10, 25, |ts| got.push(ts));
        got.sort_unstable();
        assert_eq!(got, vec![10, 15, 20], "lo inclusive, hi exclusive");
    }

    #[test]
    fn matches_local_table_on_shared_hash() {
        // Same bucket derivation as every other table: the batched kernel's
        // bucket indices are valid for WindowIndex too.
        use crate::LocalTable;
        let lt = LocalTable::with_capacity(100);
        let ix = WindowIndex::with_capacity(100);
        assert_eq!(lt.mask(), ix.mask());
    }

    #[test]
    fn batched_surface_agrees_with_scalar() {
        use iawj_common::kernel::tuple_buckets_into;
        use iawj_common::{KernelBackend, Tuple};
        let tuples: Vec<Tuple> = (0..300).map(|i| Tuple::new(i * 7 % 31, i)).collect();
        let mut scalar = WindowIndex::with_capacity(tuples.len());
        let mut batched = WindowIndex::with_capacity(tuples.len());
        for t in &tuples {
            scalar.insert(t.key, t.ts);
        }
        let mut buckets = Vec::new();
        tuple_buckets_into(KernelBackend::Scalar, &tuples, batched.mask(), &mut buckets);
        for (i, t) in tuples.iter().enumerate() {
            if let Some(&ahead) = buckets.get(i + 4) {
                batched.prefetch_bucket(ahead);
            }
            batched.insert_at(buckets[i], t.key, t.ts);
        }
        for key in 0..31 {
            assert_eq!(scalar.count(key), batched.count(key), "key {key}");
        }
    }

    #[test]
    fn growth_keeps_chains_short_and_content_exact() {
        // Outgrow a tiny capacity hint 1000x: the bucket array must keep
        // pace (load factor <= 1) and every entry must stay probeable.
        let mut ix = WindowIndex::with_capacity(8);
        for i in 0..16_000u32 {
            ix.insert(i % 40, i);
        }
        assert_eq!(ix.len(), 16_000);
        assert!(
            ix.heads.len() >= 16_000,
            "bucket array did not grow: {} buckets",
            ix.heads.len()
        );
        for key in 0..40 {
            assert_eq!(ix.count(key), 400, "key {key}");
        }
        // Growth must not disturb eviction or slot reuse.
        assert_eq!(ix.evict_before(8_000), 8_000);
        let arena = ix.entries.len();
        for i in 16_000..20_000u32 {
            ix.insert(i % 40, i);
        }
        assert_eq!(ix.entries.len(), arena, "free list reuses slots");
        assert_eq!(ix.len(), 12_000);
    }

    #[test]
    fn interleaved_evict_insert_stays_exact() {
        // Differential check against a naive Vec model under a random
        // insert/evict schedule.
        let mut ix = WindowIndex::with_capacity(4);
        let mut model: Vec<(Key, Ts)> = Vec::new();
        let mut state = 0x2545F491u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ts = 0u32;
        for _ in 0..2000 {
            if rng() % 4 == 0 && ts > 20 {
                let horizon = ts - 20;
                let expect = model.iter().filter(|(_, t)| *t < horizon).count();
                assert_eq!(ix.evict_before(horizon), expect);
                model.retain(|(_, t)| *t >= horizon);
            } else {
                let key = (rng() % 13) as Key;
                ix.insert(key, ts);
                model.push((key, ts));
                ts += (rng() % 3) as u32;
            }
        }
        assert_eq!(ix.len(), model.len());
        for key in 0..13 {
            let expect = model.iter().filter(|(k, _)| *k == key).count();
            assert_eq!(ix.count(key), expect, "key {key}");
        }
    }
}
