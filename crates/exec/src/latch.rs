//! A minimal test-and-test-and-set spin latch.
//!
//! The study's tables only hold their latches for a handful of
//! instructions (push a pair into a bucket chain, scan a short chain), so
//! a word-sized spin latch is the faithful model — it is what the original
//! C++ study uses for NPJ's per-bucket latches, and it keeps the workspace
//! free of external lock crates. Not a general-purpose mutex: waiters
//! spin (with backoff and `yield_now`), there is no fairness, and
//! poisoning is not tracked (a panic while holding the latch leaves it
//! locked, matching spin-lock semantics).

use std::cell::UnsafeCell;
use std::hint;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A spin latch protecting a `T`, API-compatible with the subset of
/// `Mutex` the kernels use: `new` + infallible `lock` returning a guard.
#[derive(Debug, Default)]
pub struct Latch<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the latch provides the required mutual exclusion; `T: Send` is
// enough because only one thread can reach the value at a time.
unsafe impl<T: Send> Send for Latch<T> {}
unsafe impl<T: Send> Sync for Latch<T> {}

impl<T> Latch<T> {
    /// A new unlocked latch holding `value`.
    pub const fn new(value: T) -> Self {
        Latch {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquire the latch, spinning until it is free.
    #[inline]
    pub fn lock(&self) -> LatchGuard<'_, T> {
        self.lock_counting().0
    }

    /// Acquire the latch and report how many spin-wait episodes it took:
    /// 0 for an uncontended acquire, otherwise one per round in which the
    /// latch was observed held (or the acquiring CAS lost a race) before
    /// this thread finally won it. The NPJ build/probe paths surface each
    /// episode as a `latch:wait` journal instant, which is what makes the
    /// §5.3.2 bucket-contention pathology directly observable in traces.
    #[inline]
    pub fn lock_counting(&self) -> (LatchGuard<'_, T>, u32) {
        // Fast path: uncontended acquire.
        let waits = if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            0
        } else {
            self.lock_contended()
        };
        (LatchGuard { latch: self }, waits)
    }

    #[cold]
    fn lock_contended(&self) -> u32 {
        let mut waits = 0u32;
        let mut spins = 0u32;
        loop {
            waits = waits.saturating_add(1);
            // Test before test-and-set: spin on a read-only load so the
            // cache line stays shared until the latch actually frees.
            while self.locked.load(Ordering::Relaxed) {
                if spins < 6 {
                    for _ in 0..1 << spins {
                        hint::spin_loop();
                    }
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return waits;
            }
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Consume the latch, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard; releases the latch on drop.
pub struct LatchGuard<'a, T> {
    latch: &'a Latch<T>,
}

impl<T> Deref for LatchGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves the latch is held.
        unsafe { &*self.latch.value.get() }
    }
}

impl<T> DerefMut for LatchGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves the latch is held.
        unsafe { &mut *self.latch.value.get() }
    }
}

impl<T> Drop for LatchGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.latch.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_workers;

    #[test]
    fn guards_exclusive_access() {
        let latch = Latch::new(0u64);
        run_workers(8, |_| {
            for _ in 0..10_000 {
                *latch.lock() += 1;
            }
        });
        assert_eq!(*latch.lock(), 80_000);
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut latch = Latch::new(vec![1, 2]);
        latch.get_mut().push(3);
        assert_eq!(latch.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn uncontended_lock_counts_zero_waits() {
        let latch = Latch::new(0u32);
        let (guard, waits) = latch.lock_counting();
        assert_eq!(waits, 0);
        drop(guard);
        assert_eq!(latch.lock_counting().1, 0);
    }

    #[test]
    fn contended_lock_counts_at_least_one_wait() {
        let latch = Latch::new(());
        let started = AtomicBool::new(false);
        std::thread::scope(|s| {
            let guard = latch.lock();
            let waiter = s.spawn(|| {
                started.store(true, Ordering::Release);
                latch.lock_counting().1
            });
            // Hold the latch until the waiter has certainly reached its
            // acquire attempt, so it must observe the latch held.
            while !started.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(guard);
            assert!(waiter.join().unwrap() >= 1);
        });
    }

    #[test]
    fn reentrant_sequences_work() {
        let latch = Latch::new(String::new());
        latch.lock().push('a');
        latch.lock().push('b');
        assert_eq!(&*latch.lock(), "ab");
    }
}
