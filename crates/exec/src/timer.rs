//! Per-thread phase timing.
//!
//! The paper uses RDTSC for low-overhead timestamps (§4.2.2) and reports
//! costs in cycles at the machine's 2.6 GHz nominal clock. We use
//! `std::time::Instant` (vDSO-backed on Linux, tens of nanoseconds per call
//! — well under the paper's 5% overhead budget) and convert to cycles at the
//! same nominal frequency so the harness axes are comparable.

use iawj_common::{Phase, PhaseBreakdown};
use iawj_obs::SpanJournal;
use std::time::Instant;

/// Nominal clock of the paper's Xeon Gold 6126, for ns → cycle conversion.
pub const NOMINAL_GHZ: f64 = 2.6;

/// Accumulates wall time into the six breakdown phases. One per worker
/// thread; exactly one phase is "open" at any moment.
///
/// When constructed with [`PhaseTimer::with_journal`], every closed phase
/// interval is also recorded as a span in the worker's [`SpanJournal`]
/// (and [`PhaseTimer::instant`] records point events), which is what the
/// Chrome-trace exporter visualises. The plain [`PhaseTimer::start`]
/// constructor carries a disabled journal, whose record calls are a
/// single branch — nothing is allocated and the hot path is unchanged.
#[derive(Debug)]
pub struct PhaseTimer {
    breakdown: PhaseBreakdown,
    current: Phase,
    since: Instant,
    journal: SpanJournal,
}

impl PhaseTimer {
    /// Start timing in the given phase, without journaling.
    pub fn start(initial: Phase) -> Self {
        let now = Instant::now();
        PhaseTimer {
            breakdown: PhaseBreakdown::zero(),
            current: initial,
            since: now,
            journal: SpanJournal::disabled(now),
        }
    }

    /// Start timing in the given phase, recording phase spans into
    /// `journal` as they close.
    pub fn with_journal(initial: Phase, journal: SpanJournal) -> Self {
        PhaseTimer {
            breakdown: PhaseBreakdown::zero(),
            current: initial,
            since: Instant::now(),
            journal,
        }
    }

    /// Close the current phase and open `next`. Switching to the phase that
    /// is already open is a cheap no-op semantically (time keeps
    /// accumulating there).
    #[inline]
    pub fn switch_to(&mut self, next: Phase) {
        if next == self.current {
            return;
        }
        let now = Instant::now();
        self.breakdown
            .add_ns(self.current, (now - self.since).as_nanos() as u64);
        self.journal
            .record_span(self.current.label(), self.since, now);
        self.current = next;
        self.since = now;
    }

    /// Record an instant event (barrier release, merge-pass boundary,
    /// window flush) in the journal. No-op without a journal.
    #[inline]
    pub fn instant(&mut self, name: &'static str) {
        if self.journal.enabled() {
            self.journal.mark(name, Instant::now());
        }
    }

    /// The phase currently being timed.
    pub fn current(&self) -> Phase {
        self.current
    }

    /// Close the open phase and return the final breakdown.
    pub fn finish(self) -> PhaseBreakdown {
        self.finish_parts().0
    }

    /// Close the open phase and return both the breakdown and the journal
    /// (empty and disabled unless built via [`PhaseTimer::with_journal`]).
    pub fn finish_parts(mut self) -> (PhaseBreakdown, SpanJournal) {
        let now = Instant::now();
        self.breakdown
            .add_ns(self.current, (now - self.since).as_nanos() as u64);
        self.journal
            .record_span(self.current.label(), self.since, now);
        (self.breakdown, self.journal)
    }

    /// Time `f` against a specific phase, then return to the previous phase.
    #[inline]
    pub fn in_phase<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let prev = self.current;
        self.switch_to(phase);
        let out = f();
        self.switch_to(prev);
        out
    }
}

/// Convert nanoseconds to nominal cycles.
#[inline]
pub fn ns_to_cycles(ns: u64) -> f64 {
    ns as f64 * NOMINAL_GHZ
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accumulates_into_phases() {
        let mut t = PhaseTimer::start(Phase::Wait);
        std::thread::sleep(Duration::from_millis(5));
        t.switch_to(Phase::Probe);
        std::thread::sleep(Duration::from_millis(5));
        let b = t.finish();
        assert!(b[Phase::Wait] >= 4_000_000, "wait={}", b[Phase::Wait]);
        assert!(b[Phase::Probe] >= 4_000_000, "probe={}", b[Phase::Probe]);
        assert_eq!(b[Phase::Merge], 0);
    }

    #[test]
    fn switch_to_same_phase_is_noop() {
        let mut t = PhaseTimer::start(Phase::BuildSort);
        t.switch_to(Phase::BuildSort);
        assert_eq!(t.current(), Phase::BuildSort);
        let b = t.finish();
        assert_eq!(b.total_ns(), b[Phase::BuildSort]);
    }

    #[test]
    fn in_phase_restores_previous() {
        let mut t = PhaseTimer::start(Phase::Other);
        let v = t.in_phase(Phase::Merge, || 7);
        assert_eq!(v, 7);
        assert_eq!(t.current(), Phase::Other);
    }

    #[test]
    fn cycles_conversion() {
        assert!((ns_to_cycles(1000) - 2600.0).abs() < 1e-9);
    }

    #[test]
    fn journaled_timer_emits_one_span_per_phase_interval() {
        use iawj_obs::SpanJournal;
        let epoch = Instant::now();
        let mut t = PhaseTimer::with_journal(Phase::Wait, SpanJournal::with_capacity(epoch, 64));
        t.switch_to(Phase::BuildSort);
        t.instant("barrier:build_done");
        t.switch_to(Phase::Probe);
        let (breakdown, journal) = t.finish_parts();
        let spans = journal.spans();
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["wait", "build/sort", "probe"]
        );
        // Spans tile the run: each begins where the previous ended.
        for w in spans.windows(2) {
            assert_eq!(w[0].end_ns, w[1].begin_ns);
        }
        assert_eq!(journal.marks().len(), 1);
        assert!(breakdown.total_ns() > 0);
    }

    #[test]
    fn plain_timer_journal_stays_empty() {
        let mut t = PhaseTimer::start(Phase::Wait);
        t.switch_to(Phase::Probe);
        t.instant("ignored");
        let (_, journal) = t.finish_parts();
        assert!(!journal.enabled());
        assert_eq!(journal.span_count(), 0);
        assert_eq!(journal.mark_count(), 0);
    }
}
