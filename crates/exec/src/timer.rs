//! Per-thread phase timing.
//!
//! The paper uses RDTSC for low-overhead timestamps (§4.2.2) and reports
//! costs in cycles at the machine's 2.6 GHz nominal clock. We use
//! `std::time::Instant` (vDSO-backed on Linux, tens of nanoseconds per call
//! — well under the paper's 5% overhead budget) and convert to cycles at the
//! same nominal frequency so the harness axes are comparable.

use iawj_common::{Phase, PhaseBreakdown};
use std::time::Instant;

/// Nominal clock of the paper's Xeon Gold 6126, for ns → cycle conversion.
pub const NOMINAL_GHZ: f64 = 2.6;

/// Accumulates wall time into the six breakdown phases. One per worker
/// thread; exactly one phase is "open" at any moment.
#[derive(Debug)]
pub struct PhaseTimer {
    breakdown: PhaseBreakdown,
    current: Phase,
    since: Instant,
}

impl PhaseTimer {
    /// Start timing in the given phase.
    pub fn start(initial: Phase) -> Self {
        PhaseTimer {
            breakdown: PhaseBreakdown::zero(),
            current: initial,
            since: Instant::now(),
        }
    }

    /// Close the current phase and open `next`. Switching to the phase that
    /// is already open is a cheap no-op semantically (time keeps
    /// accumulating there).
    #[inline]
    pub fn switch_to(&mut self, next: Phase) {
        if next == self.current {
            return;
        }
        let now = Instant::now();
        self.breakdown
            .add_ns(self.current, (now - self.since).as_nanos() as u64);
        self.current = next;
        self.since = now;
    }

    /// The phase currently being timed.
    pub fn current(&self) -> Phase {
        self.current
    }

    /// Close the open phase and return the final breakdown.
    pub fn finish(mut self) -> PhaseBreakdown {
        let now = Instant::now();
        self.breakdown
            .add_ns(self.current, (now - self.since).as_nanos() as u64);
        self.breakdown
    }

    /// Time `f` against a specific phase, then return to the previous phase.
    #[inline]
    pub fn in_phase<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let prev = self.current;
        self.switch_to(phase);
        let out = f();
        self.switch_to(prev);
        out
    }
}

/// Convert nanoseconds to nominal cycles.
#[inline]
pub fn ns_to_cycles(ns: u64) -> f64 {
    ns as f64 * NOMINAL_GHZ
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accumulates_into_phases() {
        let mut t = PhaseTimer::start(Phase::Wait);
        std::thread::sleep(Duration::from_millis(5));
        t.switch_to(Phase::Probe);
        std::thread::sleep(Duration::from_millis(5));
        let b = t.finish();
        assert!(b[Phase::Wait] >= 4_000_000, "wait={}", b[Phase::Wait]);
        assert!(b[Phase::Probe] >= 4_000_000, "probe={}", b[Phase::Probe]);
        assert_eq!(b[Phase::Merge], 0);
    }

    #[test]
    fn switch_to_same_phase_is_noop() {
        let mut t = PhaseTimer::start(Phase::BuildSort);
        t.switch_to(Phase::BuildSort);
        assert_eq!(t.current(), Phase::BuildSort);
        let b = t.finish();
        assert_eq!(b.total_ns(), b[Phase::BuildSort]);
    }

    #[test]
    fn in_phase_restores_previous() {
        let mut t = PhaseTimer::start(Phase::Other);
        let v = t.in_phase(Phase::Merge, || 7);
        assert_eq!(v, 7);
        assert_eq!(t.current(), Phase::Other);
    }

    #[test]
    fn cycles_conversion() {
        assert!((ns_to_cycles(1000) - 2600.0).abs() < 1e-9);
    }
}
