//! Per-thread phase timing and hardware-counter sampling.
//!
//! The paper uses RDTSC for low-overhead timestamps (§4.2.2) and reports
//! costs in cycles at the machine's 2.6 GHz nominal clock. We use
//! `std::time::Instant` (vDSO-backed on Linux, tens of nanoseconds per call
//! — well under the paper's 5% overhead budget) and convert to cycles at a
//! calibrated clock: `IAWJ_CPU_GHZ` when set, a perf-measured frequency
//! when the cycle counter is readable, and the paper's 2.6 GHz nominal
//! otherwise — see [`cpu_clock`]. Tables label which source was used.
//!
//! When built with [`PhaseTimer::with_perf`], the timer also snapshots
//! hardware-counter deltas (cycles, instructions, cache/TLB misses, branch
//! mispredicts) at every [`PhaseTimer::switch_to`], attributing each delta
//! to the phase that just closed — the §6.2 microarchitectural breakdown,
//! measured rather than simulated.

use iawj_common::{Phase, PhaseBreakdown, PhaseCounters};
use iawj_obs::perf::{self, CounterSource, PerfSampler};
use iawj_obs::SpanJournal;
use std::sync::OnceLock;
use std::time::Instant;

/// Nominal clock of the paper's Xeon Gold 6126, the ns → cycle fallback
/// when no better source is available.
pub const NOMINAL_GHZ: f64 = 2.6;

/// Where the ns → cycles conversion frequency came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockSource {
    /// `IAWJ_CPU_GHZ` environment override.
    Env,
    /// Measured against the hardware cycle counter at startup.
    Measured,
    /// The paper's 2.6 GHz nominal (no override, no perf access).
    Assumed,
}

impl ClockSource {
    /// Short label for table headers and snapshots.
    pub fn label(self) -> &'static str {
        match self {
            ClockSource::Env => "env",
            ClockSource::Measured => "measured",
            ClockSource::Assumed => "assumed",
        }
    }
}

/// The frequency used to convert wall time to cycles, with provenance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuClock {
    /// Clock frequency in GHz.
    pub ghz: f64,
    /// Where the frequency came from.
    pub source: ClockSource,
}

impl CpuClock {
    /// Parse an `IAWJ_CPU_GHZ`-style override. Rejects non-numeric,
    /// non-finite and non-positive values.
    pub fn from_env_str(s: &str) -> Option<CpuClock> {
        let ghz: f64 = s.trim().parse().ok()?;
        if ghz.is_finite() && ghz > 0.0 {
            Some(CpuClock {
                ghz,
                source: ClockSource::Env,
            })
        } else {
            None
        }
    }

    /// Resolve the clock: env override, then perf measurement, then the
    /// nominal fallback. Called once per process via [`cpu_clock`].
    fn detect() -> CpuClock {
        if let Ok(s) = std::env::var("IAWJ_CPU_GHZ") {
            if let Some(clock) = CpuClock::from_env_str(&s) {
                return clock;
            }
        }
        if let Some(ghz) = perf::measure_ghz(10) {
            return CpuClock {
                ghz,
                source: ClockSource::Measured,
            };
        }
        CpuClock {
            ghz: NOMINAL_GHZ,
            source: ClockSource::Assumed,
        }
    }
}

/// The process-wide calibrated CPU clock (resolved once, then cached).
pub fn cpu_clock() -> CpuClock {
    static CLOCK: OnceLock<CpuClock> = OnceLock::new();
    *CLOCK.get_or_init(CpuClock::detect)
}

/// Everything a finished [`PhaseTimer`] measured for one worker.
#[derive(Debug)]
pub struct TimerParts {
    /// Wall time per phase.
    pub breakdown: PhaseBreakdown,
    /// The worker's span journal (disabled and empty unless the timer was
    /// built with one).
    pub journal: SpanJournal,
    /// Hardware-counter deltas per phase (all-zero without perf access).
    pub counters: PhaseCounters,
    /// Whether `counters` came from real hardware counters.
    pub counter_source: CounterSource,
}

/// Accumulates wall time into the six breakdown phases. One per worker
/// thread; exactly one phase is "open" at any moment.
///
/// When constructed with [`PhaseTimer::with_journal`], every closed phase
/// interval is also recorded as a span in the worker's [`SpanJournal`]
/// (and [`PhaseTimer::instant`] records point events), which is what the
/// Chrome-trace exporter visualises. [`PhaseTimer::with_perf`] adds
/// per-phase hardware counters on top. The plain [`PhaseTimer::start`]
/// constructor carries a disabled journal and no sampler, whose record
/// calls are a single branch — nothing is allocated and the hot path is
/// unchanged.
#[derive(Debug)]
pub struct PhaseTimer {
    breakdown: PhaseBreakdown,
    current: Phase,
    since: Instant,
    journal: SpanJournal,
    counters: PhaseCounters,
    sampler: Option<PerfSampler>,
}

impl PhaseTimer {
    /// Start timing in the given phase, without journaling.
    pub fn start(initial: Phase) -> Self {
        let now = Instant::now();
        Self::build(initial, SpanJournal::disabled(now), false)
    }

    /// Start timing in the given phase, recording phase spans into
    /// `journal` as they close.
    pub fn with_journal(initial: Phase, journal: SpanJournal) -> Self {
        Self::build(initial, journal, false)
    }

    /// Start timing with journaling *and* hardware-counter sampling.
    ///
    /// Must be called on the worker thread whose counters should be read:
    /// the sampler binds to the calling thread. When the kernel refuses
    /// (`perf_event_paranoid`, seccomp, non-Linux) the timer silently
    /// degrades to [`PhaseTimer::with_journal`] behaviour — counters stay
    /// zero and [`TimerParts::counter_source`] says so.
    pub fn with_perf(initial: Phase, journal: SpanJournal) -> Self {
        Self::build(initial, journal, true)
    }

    fn build(initial: Phase, journal: SpanJournal, perf: bool) -> Self {
        let sampler = if perf {
            PerfSampler::open().ok().map(|mut s| {
                s.sample(); // discard the open→now delta
                s
            })
        } else {
            None
        };
        PhaseTimer {
            breakdown: PhaseBreakdown::zero(),
            current: initial,
            since: Instant::now(),
            journal,
            counters: PhaseCounters::zero(),
            sampler,
        }
    }

    /// Close the current phase and open `next`. Switching to the phase that
    /// is already open is a cheap no-op semantically (time keeps
    /// accumulating there).
    #[inline]
    pub fn switch_to(&mut self, next: Phase) {
        if next == self.current {
            return;
        }
        self.close_current();
        self.current = next;
    }

    /// Close the open phase interval at `now`, attributing its wall time
    /// and (when sampling) its counter delta, and start a new interval.
    fn close_current(&mut self) {
        let now = Instant::now();
        self.breakdown
            .add_ns(self.current, (now - self.since).as_nanos() as u64);
        let delta = self.sampler.as_mut().map(|s| s.sample());
        if let Some(d) = delta {
            self.counters.record(self.current, d);
        }
        self.journal
            .record_span_with(self.current.label(), self.since, now, delta);
        self.since = now;
    }

    /// Record an instant event (barrier release, merge-pass boundary,
    /// window flush) in the journal. No-op without a journal.
    #[inline]
    pub fn instant(&mut self, name: &'static str) {
        if self.journal.enabled() {
            self.journal.mark(name, Instant::now());
        }
    }

    /// The phase currently being timed.
    pub fn current(&self) -> Phase {
        self.current
    }

    /// Is this timer reading real hardware counters?
    pub fn sampling(&self) -> bool {
        self.sampler.is_some()
    }

    /// Close the open phase and return the final breakdown.
    pub fn finish(self) -> PhaseBreakdown {
        self.finish_parts().breakdown
    }

    /// Close the open phase and return everything measured.
    pub fn finish_parts(mut self) -> TimerParts {
        self.close_current();
        let counter_source = if self.sampler.is_some() {
            CounterSource::Perf
        } else {
            CounterSource::Unavailable
        };
        TimerParts {
            breakdown: self.breakdown,
            journal: self.journal,
            counters: self.counters,
            counter_source,
        }
    }

    /// Time `f` against a specific phase, then return to the previous phase.
    #[inline]
    pub fn in_phase<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let prev = self.current;
        self.switch_to(phase);
        let out = f();
        self.switch_to(prev);
        out
    }
}

/// Convert nanoseconds to cycles at the calibrated process clock.
#[inline]
pub fn ns_to_cycles(ns: u64) -> f64 {
    ns as f64 * cpu_clock().ghz
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accumulates_into_phases() {
        let mut t = PhaseTimer::start(Phase::Wait);
        std::thread::sleep(Duration::from_millis(5));
        t.switch_to(Phase::Probe);
        std::thread::sleep(Duration::from_millis(5));
        let b = t.finish();
        assert!(b[Phase::Wait] >= 4_000_000, "wait={}", b[Phase::Wait]);
        assert!(b[Phase::Probe] >= 4_000_000, "probe={}", b[Phase::Probe]);
        assert_eq!(b[Phase::Merge], 0);
    }

    #[test]
    fn switch_to_same_phase_is_noop() {
        let mut t = PhaseTimer::start(Phase::BuildSort);
        t.switch_to(Phase::BuildSort);
        assert_eq!(t.current(), Phase::BuildSort);
        let b = t.finish();
        assert_eq!(b.total_ns(), b[Phase::BuildSort]);
    }

    #[test]
    fn in_phase_restores_previous() {
        let mut t = PhaseTimer::start(Phase::Other);
        let v = t.in_phase(Phase::Merge, || 7);
        assert_eq!(v, 7);
        assert_eq!(t.current(), Phase::Other);
    }

    #[test]
    fn cycles_conversion_tracks_calibrated_clock() {
        let clock = cpu_clock();
        assert!(clock.ghz > 0.1 && clock.ghz < 10.0, "ghz={}", clock.ghz);
        assert!((ns_to_cycles(1000) - 1000.0 * clock.ghz).abs() < 1e-9);
    }

    #[test]
    fn env_clock_parsing() {
        let c = CpuClock::from_env_str("3.25").unwrap();
        assert_eq!(c.ghz, 3.25);
        assert_eq!(c.source, ClockSource::Env);
        assert_eq!(c.source.label(), "env");
        assert_eq!(CpuClock::from_env_str(" 2.0 ").map(|c| c.ghz), Some(2.0));
        assert!(CpuClock::from_env_str("fast").is_none());
        assert!(CpuClock::from_env_str("0").is_none());
        assert!(CpuClock::from_env_str("-1.5").is_none());
        assert!(CpuClock::from_env_str("inf").is_none());
        assert!(CpuClock::from_env_str("NaN").is_none());
    }

    #[test]
    fn journaled_timer_emits_one_span_per_phase_interval() {
        use iawj_obs::SpanJournal;
        let epoch = Instant::now();
        let mut t = PhaseTimer::with_journal(Phase::Wait, SpanJournal::with_capacity(epoch, 64));
        t.switch_to(Phase::BuildSort);
        t.instant("barrier:build_done");
        t.switch_to(Phase::Probe);
        let parts = t.finish_parts();
        let spans = parts.journal.spans();
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["wait", "build/sort", "probe"]
        );
        // Spans tile the run: each begins where the previous ended.
        for w in spans.windows(2) {
            assert_eq!(w[0].end_ns, w[1].begin_ns);
        }
        assert_eq!(parts.journal.marks().len(), 1);
        assert!(parts.breakdown.total_ns() > 0);
        // No perf requested: counters stay zero and say so.
        assert!(parts.counters.is_zero());
        assert_eq!(parts.counter_source, CounterSource::Unavailable);
        assert!(spans.iter().all(|s| s.counters.is_none()));
    }

    #[test]
    fn plain_timer_journal_stays_empty() {
        let mut t = PhaseTimer::start(Phase::Wait);
        t.switch_to(Phase::Probe);
        t.instant("ignored");
        let parts = t.finish_parts();
        assert!(!parts.journal.enabled());
        assert_eq!(parts.journal.span_count(), 0);
        assert_eq!(parts.journal.mark_count(), 0);
    }

    #[test]
    fn perf_timer_degrades_gracefully_or_measures() {
        // Must never panic regardless of perf availability; with perf the
        // busy phase must show nonzero cycles and instructions.
        let epoch = Instant::now();
        let mut t = PhaseTimer::with_perf(Phase::Wait, SpanJournal::with_capacity(epoch, 64));
        let sampling = t.sampling();
        t.switch_to(Phase::Probe);
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert_ne!(acc, 1); // keep the loop alive
        let parts = t.finish_parts();
        if sampling {
            assert_eq!(parts.counter_source, CounterSource::Perf);
            let probe = parts.counters[Phase::Probe];
            assert!(probe.cycles() > 0, "cycles={}", probe.cycles());
            assert!(probe.instructions() > 0);
            // Spans carry the same attribution.
            let probe_span = parts
                .journal
                .spans()
                .into_iter()
                .find(|s| s.name == "probe")
                .unwrap();
            assert!(probe_span.counters.unwrap().instructions() > 0);
        } else {
            assert_eq!(parts.counter_source, CounterSource::Unavailable);
            assert!(parts.counters.is_zero());
        }
    }
}
