//! CPU topology discovery and worker placement.
//!
//! The paper's multicore focus (CPU mapping §5.2, scalability Figs. 13/19)
//! is ultimately about where threads and memory land. This module answers
//! both questions without adding a dependency:
//!
//! - **Which CPUs may we use?** [`affinity_mask`] reads the calling
//!   thread's `sched_getaffinity` mask through a raw syscall (the same
//!   inline-assembly pattern as `iawj_obs::perf`), so cgroup cpusets and
//!   `taskset` restrictions are respected — unlike a bare
//!   `available_parallelism`, which on some kernels reports the machine,
//!   not the allowance.
//! - **How are they arranged?** [`Topology::detect`] folds in
//!   `/sys/devices/system/cpu` (SMT siblings, physical core ids) and
//!   `/sys/devices/system/node` (NUMA node per CPU), restricted to the
//!   affinity mask.
//! - **Where should worker `i` go?** [`Topology::plan`] turns a
//!   [`PinPolicy`] into a per-worker CPU assignment; [`pin_to_cpu`]
//!   applies one via raw `sched_setaffinity`.
//!
//! Design constraint, inherited from the perf module: **never panic,
//! never fail a run**. Topology is a host property (masked cpusets,
//! denied syscalls, missing sysfs, non-Linux targets); every function
//! here degrades — empty topology, `false` from a pin, `None` from a
//! query — and the executor journals the degradation instead of dying.

use std::path::Path;

/// Maximum CPUs representable in a [`CpuSet`] (16 × 64 bits).
pub const MAX_CPUS: usize = 1024;

/// A fixed-size CPU bitmask, layout-compatible with the kernel's
/// `cpu_set_t` for the first [`MAX_CPUS`] CPUs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuSet {
    bits: [u64; MAX_CPUS / 64],
}

impl CpuSet {
    /// The empty set.
    pub const fn empty() -> CpuSet {
        CpuSet {
            bits: [0; MAX_CPUS / 64],
        }
    }

    /// Is `cpu` in the set? CPUs ≥ [`MAX_CPUS`] are reported absent.
    pub fn contains(&self, cpu: usize) -> bool {
        cpu < MAX_CPUS && self.bits[cpu / 64] & (1 << (cpu % 64)) != 0
    }

    /// Add `cpu` to the set; CPUs ≥ [`MAX_CPUS`] are ignored.
    pub fn set(&mut self, cpu: usize) {
        if cpu < MAX_CPUS {
            self.bits[cpu / 64] |= 1 << (cpu % 64);
        }
    }

    /// Number of CPUs in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// CPUs in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..MAX_CPUS).filter(move |&c| self.contains(c))
    }

    /// Lowest CPU in the set, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

// ---------------------------------------------------------------------------
// Raw syscalls (sched_getaffinity / sched_setaffinity / getcpu)
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const SCHED_SETAFFINITY: i64 = 203;
    pub const SCHED_GETAFFINITY: i64 = 204;
    pub const GETCPU: i64 = 309;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const SCHED_SETAFFINITY: i64 = 122;
    pub const SCHED_GETAFFINITY: i64 = 123;
    pub const GETCPU: i64 = 168;
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod nr {
    pub const SCHED_SETAFFINITY: i64 = 0;
    pub const SCHED_GETAFFINITY: i64 = 0;
    pub const GETCPU: i64 = 0;
}

/// Three-argument syscall shim. Returns the raw kernel result (negative
/// errno on failure).
///
/// # Safety
///
/// Pointer-typed arguments must point to memory valid for the kernel's
/// documented access pattern for the given syscall number.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
unsafe fn syscall3(num: i64, a1: i64, a2: i64, a3: i64) -> i64 {
    let ret: i64;
    // SAFETY: caller upholds the pointer contract; rcx/r11 are declared
    // clobbered per the x86_64 syscall ABI.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") num => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64", not(miri)))]
unsafe fn syscall3(num: i64, a1: i64, a2: i64, a3: i64) -> i64 {
    let ret: i64;
    // SAFETY: caller upholds the pointer contract; aarch64 passes the
    // number in x8, args in x0..x2.
    unsafe {
        std::arch::asm!(
            "svc 0",
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x8") num,
            options(nostack),
        );
    }
    ret
}

// Miri cannot execute inline assembly, so under it — as on unsupported
// targets — the shim reports ENOSYS and every caller degrades (no mask,
// no pinning, no getcpu), exercising exactly the graceful-fallback path.
#[cfg(any(
    miri,
    not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
))]
unsafe fn syscall3(_num: i64, _a1: i64, _a2: i64, _a3: i64) -> i64 {
    -38 // -ENOSYS
}

/// The calling thread's affinity mask via raw `sched_getaffinity`.
/// `None` when the syscall is unavailable or fails — callers degrade to
/// [`std::thread::available_parallelism`].
pub fn affinity_mask() -> Option<CpuSet> {
    let mut set = CpuSet::empty();
    let bytes = std::mem::size_of_val(&set.bits) as i64;
    // SAFETY: the kernel writes at most `bytes` into `set.bits`, which is
    // live and exactly that large; pid 0 targets the calling thread.
    let ret = unsafe {
        syscall3(
            nr::SCHED_GETAFFINITY,
            0,
            bytes,
            set.bits.as_mut_ptr() as i64,
        )
    };
    // Raw sched_getaffinity returns the size of the kernel cpumask copied
    // out (positive) on success, unlike the glibc wrapper's 0.
    (ret > 0).then_some(set)
}

/// How many CPUs this thread is *allowed* to run on: the cardinality of
/// the `sched_getaffinity` mask (cgroup/`taskset`-correct), falling back
/// to `available_parallelism` where the syscall is unavailable. Never
/// less than 1.
pub fn affinity_core_count() -> usize {
    affinity_mask()
        .map(|m| m.count())
        .filter(|&n| n > 0)
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
}

/// Pin the calling thread to a single CPU via raw `sched_setaffinity`.
/// Returns `false` — never panics — when the syscall is unavailable,
/// denied (seccomp), or the CPU is outside the allowed mask.
pub fn pin_to_cpu(cpu: usize) -> bool {
    if cpu >= MAX_CPUS {
        return false;
    }
    let mut set = CpuSet::empty();
    set.set(cpu);
    set_affinity(&set)
}

/// Set the calling thread's affinity to `mask` (used by [`pin_to_cpu`]
/// and by tests to restore the original mask). Returns success.
pub fn set_affinity(mask: &CpuSet) -> bool {
    let bytes = std::mem::size_of_val(&mask.bits) as i64;
    // SAFETY: the kernel reads `bytes` from `mask.bits`, live for the call.
    let ret = unsafe { syscall3(nr::SCHED_SETAFFINITY, 0, bytes, mask.bits.as_ptr() as i64) };
    ret == 0
}

/// The CPU the calling thread is running on right now (raw `getcpu`),
/// `None` where unavailable.
pub fn current_cpu() -> Option<usize> {
    let mut cpu: u32 = 0;
    // SAFETY: the kernel writes one u32 through the first pointer; the
    // node and cache pointers are null (documented as optional).
    let ret = unsafe { syscall3(nr::GETCPU, &mut cpu as *mut u32 as i64, 0, 0) };
    (ret == 0).then_some(cpu as usize)
}

// ---------------------------------------------------------------------------
// Placement policy and topology
// ---------------------------------------------------------------------------

/// Where the executor places its workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PinPolicy {
    /// No pinning: the OS scheduler places workers freely (the seed
    /// behaviour, and the fallback wherever pinning is unavailable).
    #[default]
    None,
    /// Pack workers onto the fewest NUMA nodes: fill every hardware
    /// context of one node (physical cores with their SMT siblings
    /// adjacent) before spilling to the next. Maximizes cache/memory
    /// locality for small thread counts.
    Compact,
    /// Round-robin workers across NUMA nodes, physical cores before SMT
    /// siblings within each node. Maximizes aggregate memory bandwidth.
    Scatter,
}

impl PinPolicy {
    /// All policies, for sweeps.
    pub const ALL: [PinPolicy; 3] = [PinPolicy::None, PinPolicy::Compact, PinPolicy::Scatter];
}

impl std::str::FromStr for PinPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Ok(PinPolicy::None),
            "compact" => Ok(PinPolicy::Compact),
            "scatter" => Ok(PinPolicy::Scatter),
            other => Err(format!("unknown pin policy '{other}'")),
        }
    }
}

impl std::fmt::Display for PinPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PinPolicy::None => "none",
            PinPolicy::Compact => "compact",
            PinPolicy::Scatter => "scatter",
        })
    }
}

/// One allowed CPU and its position in the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreInfo {
    /// Logical CPU number (the `sched_setaffinity` target).
    pub cpu: usize,
    /// NUMA node this CPU belongs to (0 when unknown).
    pub node: usize,
    /// Physical core id within the package (the CPU's own number when
    /// sysfs is unavailable).
    pub core_id: usize,
    /// Rank among this physical core's SMT siblings: 0 for the first
    /// hardware thread, 1 for its hyperthread twin, and so on.
    pub smt_rank: usize,
}

/// The CPUs this process may use, annotated with SMT and NUMA structure.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// One entry per allowed CPU, ascending by CPU number.
    pub cores: Vec<CoreInfo>,
}

impl Topology {
    /// Discover the topology of the CPUs in the calling thread's affinity
    /// mask. Degrades, never panics: without the affinity syscall the
    /// topology is empty (and every placement plan is unpinned); without
    /// sysfs each CPU gets defaults (node 0, `core_id = cpu`,
    /// `smt_rank = 0`), which still yields a usable compact order.
    pub fn detect() -> Topology {
        match affinity_mask() {
            Some(mask) => Topology::from_sysfs(Path::new("/sys/devices/system"), &mask),
            None => Topology::default(),
        }
    }

    /// Build a topology for `mask` from a sysfs-shaped directory tree
    /// (`{root}/cpu/cpu{N}/topology/*`, `{root}/node/node{N}/cpulist`).
    /// Split out from [`Topology::detect`] so tests can point it at a
    /// synthetic tree.
    pub fn from_sysfs(root: &Path, mask: &CpuSet) -> Topology {
        // NUMA node per CPU: scan node*/cpulist once.
        let mut node_of = std::collections::HashMap::new();
        if let Ok(entries) = std::fs::read_dir(root.join("node")) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(num) = name
                    .strip_prefix("node")
                    .and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                if let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) {
                    for cpu in parse_cpulist(&list) {
                        node_of.insert(cpu, num);
                    }
                }
            }
        }
        let mut cores = Vec::with_capacity(mask.count());
        for cpu in mask.iter() {
            let topo = root.join(format!("cpu/cpu{cpu}/topology"));
            let core_id = std::fs::read_to_string(topo.join("core_id"))
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(cpu);
            let smt_rank = std::fs::read_to_string(topo.join("thread_siblings_list"))
                .ok()
                .map(|s| {
                    let mut siblings = parse_cpulist(&s);
                    siblings.sort_unstable();
                    siblings.iter().position(|&c| c == cpu).unwrap_or(0)
                })
                .unwrap_or(0);
            cores.push(CoreInfo {
                cpu,
                node: node_of.get(&cpu).copied().unwrap_or(0),
                core_id,
                smt_rank,
            });
        }
        Topology { cores }
    }

    /// Number of distinct NUMA nodes among the allowed CPUs.
    pub fn nodes(&self) -> usize {
        let mut nodes: Vec<usize> = self.cores.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Plan CPU assignments for `n` workers under `policy`.
    ///
    /// Returns one entry per worker tid: `Some(cpu)` to pin there, `None`
    /// to leave the worker unpinned. [`PinPolicy::None`] — or an empty
    /// topology — yields all-`None`; with fewer CPUs than workers the
    /// assignment wraps around, oversubscribing in plan order.
    pub fn plan(&self, policy: PinPolicy, n: usize) -> Vec<Option<usize>> {
        if policy == PinPolicy::None || self.cores.is_empty() {
            return vec![None; n];
        }
        let order: Vec<usize> = match policy {
            PinPolicy::None => unreachable!(),
            PinPolicy::Compact => {
                // Fill one node completely (SMT siblings adjacent to
                // their physical core) before moving to the next.
                let mut cores = self.cores.clone();
                cores.sort_by_key(|c| (c.node, c.core_id, c.smt_rank, c.cpu));
                cores.iter().map(|c| c.cpu).collect()
            }
            PinPolicy::Scatter => {
                // Round-robin across nodes; within a node, physical cores
                // before SMT siblings.
                let mut by_node: Vec<(usize, Vec<CoreInfo>)> = Vec::new();
                let mut cores = self.cores.clone();
                cores.sort_by_key(|c| (c.smt_rank, c.core_id, c.cpu));
                for c in cores {
                    match by_node.iter_mut().find(|(n, _)| *n == c.node) {
                        Some((_, v)) => v.push(c),
                        None => by_node.push((c.node, vec![c])),
                    }
                }
                by_node.sort_by_key(|(n, _)| *n);
                let mut out = Vec::with_capacity(self.cores.len());
                let mut rank = 0;
                while out.len() < self.cores.len() {
                    for (_, v) in &by_node {
                        if let Some(c) = v.get(rank) {
                            out.push(c.cpu);
                        }
                    }
                    rank += 1;
                }
                out
            }
        };
        (0..n).map(|i| Some(order[i % order.len()])).collect()
    }
}

/// Parse a sysfs CPU list (`"0-3,8,10-11"`) into CPU numbers. Malformed
/// tokens are skipped rather than failing the whole list.
pub fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for tok in s.trim().split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = tok.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi && hi - lo < MAX_CPUS {
                    out.extend(lo..=hi);
                }
            }
        } else if let Ok(cpu) = tok.parse::<usize>() {
            out.push(cpu);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuset_set_contains_count() {
        let mut s = CpuSet::empty();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(0));
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(MAX_CPUS - 1);
        s.set(MAX_CPUS + 5); // ignored, not a panic
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(s.contains(MAX_CPUS - 1));
        assert!(!s.contains(MAX_CPUS + 5));
        assert_eq!(s.count(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, MAX_CPUS - 1]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(CpuSet::empty().first(), None);
    }

    #[test]
    fn cpulist_parses_ranges_and_skips_junk() {
        assert_eq!(parse_cpulist("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist("2-1"), Vec::<usize>::new()); // inverted
        assert_eq!(parse_cpulist("x,3,y-2,4-4"), vec![3, 4]);
        assert_eq!(parse_cpulist(" 1 - 2 , 7 "), vec![1, 2, 7]);
    }

    #[test]
    fn pin_policy_parse_and_display() {
        for p in PinPolicy::ALL {
            assert_eq!(p.to_string().parse::<PinPolicy>().unwrap(), p);
        }
        assert_eq!("COMPACT".parse::<PinPolicy>().unwrap(), PinPolicy::Compact);
        assert!("firstcore".parse::<PinPolicy>().is_err());
        assert_eq!(PinPolicy::default(), PinPolicy::None);
    }

    /// Two nodes × two physical cores × two SMT threads:
    /// node0 = {0,1,4,5}, node1 = {2,3,6,7}; cpu N and N+4 are siblings.
    fn synthetic() -> Topology {
        let mut cores = Vec::new();
        for cpu in 0..8usize {
            cores.push(CoreInfo {
                cpu,
                node: (cpu % 4) / 2,
                core_id: cpu % 4,
                smt_rank: cpu / 4,
            });
        }
        Topology { cores }
    }

    #[test]
    fn plan_none_is_unpinned() {
        let t = synthetic();
        assert_eq!(t.plan(PinPolicy::None, 4), vec![None; 4]);
        assert_eq!(
            Topology::default().plan(PinPolicy::Compact, 3),
            vec![None; 3]
        );
        assert_eq!(t.nodes(), 2);
    }

    #[test]
    fn plan_compact_packs_one_node_first() {
        let t = synthetic();
        let plan = t.plan(PinPolicy::Compact, 8);
        // Node 0 filled first (core 0 + its sibling, then core 1 + its
        // sibling), then node 1.
        assert_eq!(plan, [0, 4, 1, 5, 2, 6, 3, 7].map(Some).to_vec());
    }

    #[test]
    fn plan_scatter_alternates_nodes_physical_first() {
        let t = synthetic();
        let plan = t.plan(PinPolicy::Scatter, 8);
        // Alternate node0/node1; all physical cores before any sibling.
        assert_eq!(plan, [0, 2, 1, 3, 4, 6, 5, 7].map(Some).to_vec());
    }

    #[test]
    fn plan_wraps_when_oversubscribed() {
        let t = synthetic();
        let plan = t.plan(PinPolicy::Compact, 10);
        assert_eq!(plan.len(), 10);
        assert_eq!(plan[8], plan[0]);
        assert_eq!(plan[9], plan[1]);
    }

    #[test]
    fn from_sysfs_reads_synthetic_tree() {
        let root = std::env::temp_dir().join(format!("iawj-topo-{}", std::process::id()));
        let mk = |rel: &str, content: &str| {
            let p = root.join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, content).unwrap();
        };
        mk("node/node0/cpulist", "0-1\n");
        mk("node/node1/cpulist", "2-3\n");
        for cpu in 0..4 {
            mk(
                &format!("cpu/cpu{cpu}/topology/core_id"),
                &format!("{}\n", cpu % 2),
            );
            // cpu and cpu^1 are SMT siblings within their node.
            let (a, b) = (cpu & !1, cpu | 1);
            mk(
                &format!("cpu/cpu{cpu}/topology/thread_siblings_list"),
                &format!("{a},{b}\n"),
            );
        }
        let mut mask = CpuSet::empty();
        for cpu in 0..4 {
            mask.set(cpu);
        }
        let t = Topology::from_sysfs(&root, &mask);
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(t.cores.len(), 4);
        assert_eq!(
            t.cores[0],
            CoreInfo {
                cpu: 0,
                node: 0,
                core_id: 0,
                smt_rank: 0
            }
        );
        assert_eq!(
            t.cores[1],
            CoreInfo {
                cpu: 1,
                node: 0,
                core_id: 1,
                smt_rank: 1
            }
        );
        assert_eq!(
            t.cores[2],
            CoreInfo {
                cpu: 2,
                node: 1,
                core_id: 0,
                smt_rank: 0
            }
        );
        assert_eq!(
            t.cores[3],
            CoreInfo {
                cpu: 3,
                node: 1,
                core_id: 1,
                smt_rank: 1
            }
        );
        assert_eq!(t.nodes(), 2);
    }

    #[test]
    fn from_sysfs_defaults_without_tree() {
        // A root that does not exist: every CPU in the mask still gets an
        // entry with usable defaults.
        let mut mask = CpuSet::empty();
        mask.set(3);
        mask.set(5);
        let t = Topology::from_sysfs(Path::new("/nonexistent-iawj-sysfs"), &mask);
        assert_eq!(t.cores.len(), 2);
        assert_eq!(
            t.cores[0],
            CoreInfo {
                cpu: 3,
                node: 0,
                core_id: 3,
                smt_rank: 0
            }
        );
        assert_eq!(t.plan(PinPolicy::Compact, 2), vec![Some(3), Some(5)]);
    }

    /// The graceful-degradation contract: detection and planning work (or
    /// degrade) on every host, and the per-thread affinity calls either
    /// succeed and are observable or fail without panicking.
    #[test]
    fn detect_and_pin_never_panic() {
        let t = Topology::detect();
        let plan = t.plan(PinPolicy::Compact, 4);
        assert_eq!(plan.len(), 4);
        assert!(affinity_core_count() >= 1);
        let Some(mask) = affinity_mask() else {
            // Syscall unavailable: pinning must simply report failure.
            assert!(!pin_to_cpu(0));
            return;
        };
        assert!(mask.count() >= 1);
        // The topology is restricted to the mask.
        for c in &t.cores {
            assert!(mask.contains(c.cpu), "cpu {} outside mask", c.cpu);
        }
        let target = mask.first().unwrap();
        if pin_to_cpu(target) {
            assert_eq!(current_cpu(), Some(target));
            // Restore the original mask so this test thread does not stay
            // pinned for later tests.
            assert!(set_affinity(&mask));
        }
        assert!(!pin_to_cpu(MAX_CPUS + 1));
    }
}
