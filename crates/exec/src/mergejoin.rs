//! Sorted-merge join kernels.
//!
//! All sort-based algorithms in the study end in a single-pass merge join of
//! two `(key, ts)`-sorted inputs. High key duplication — Rovio's 17960
//! duplicates per key — makes the duplicate-group handling the hot path, so
//! the kernel advances over equal-key *groups* and emits their cross
//! product, which is also what makes sort joins cache-friendly on such
//! workloads (§5.4, Figure 11).

use iawj_common::{Key, Ts};

/// Extract the key from a packed value (see `Tuple::pack`).
#[inline(always)]
fn key_of(packed: u64) -> Key {
    (packed >> 32) as Key
}

/// Extract the timestamp from a packed value.
#[inline(always)]
fn ts_of(packed: u64) -> Ts {
    packed as Ts
}

/// Length of the equal-key group starting at `start`.
#[inline]
fn group_len(data: &[u64], start: usize) -> usize {
    let k = key_of(data[start]);
    let mut end = start + 1;
    while end < data.len() && key_of(data[end]) == k {
        end += 1;
    }
    end - start
}

/// Merge-join two sorted packed arrays, emitting `(key, r_ts, s_ts)` for
/// every matching pair.
///
/// ```
/// use iawj_common::Tuple;
/// use iawj_exec::mergejoin::merge_join;
///
/// let r = vec![Tuple::new(1, 0).pack(), Tuple::new(2, 5).pack()];
/// let s = vec![Tuple::new(2, 7).pack(), Tuple::new(3, 1).pack()];
/// let mut out = Vec::new();
/// merge_join(&r, &s, |k, rts, sts| out.push((k, rts, sts)));
/// assert_eq!(out, vec![(2, 5, 7)]);
/// ```
pub fn merge_join(r: &[u64], s: &[u64], mut emit: impl FnMut(Key, Ts, Ts)) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        let rk = key_of(r[i]);
        let sk = key_of(s[j]);
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            let rl = group_len(r, i);
            let sl = group_len(s, j);
            for &rv in &r[i..i + rl] {
                let rts = ts_of(rv);
                for &sv in &s[j..j + sl] {
                    emit(rk, rts, ts_of(sv));
                }
            }
            i += rl;
            j += sl;
        }
    }
}

/// Merge-join with run provenance: emit only pairs whose run tags differ.
///
/// PMJ's initial phase joins run `k` of R against run `k` of S as soon as
/// both are sorted; its merge phase must then join everything *except*
/// those same-run pairs. `r_tags[i]` / `s_tags[j]` give the originating run
/// of each element.
pub fn merge_join_cross_runs(
    r: &[u64],
    r_tags: &[u32],
    s: &[u64],
    s_tags: &[u32],
    mut emit: impl FnMut(Key, Ts, Ts),
) {
    debug_assert_eq!(r.len(), r_tags.len());
    debug_assert_eq!(s.len(), s_tags.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        let rk = key_of(r[i]);
        let sk = key_of(s[j]);
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            let rl = group_len(r, i);
            let sl = group_len(s, j);
            for (ri, &rv) in r[i..i + rl].iter().enumerate() {
                let rts = ts_of(rv);
                let rtag = r_tags[i + ri];
                for (si, &sv) in s[j..j + sl].iter().enumerate() {
                    if s_tags[j + si] != rtag {
                        emit(rk, rts, ts_of(sv));
                    }
                }
            }
            i += rl;
            j += sl;
        }
    }
}

/// Count matches without emitting (sizing, tests).
pub fn count_matches(r: &[u64], s: &[u64]) -> u64 {
    let mut n = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < r.len() && j < s.len() {
        let rk = key_of(r[i]);
        let sk = key_of(s[j]);
        if rk < sk {
            i += 1;
        } else if rk > sk {
            j += 1;
        } else {
            let rl = group_len(r, i) as u64;
            let sl = group_len(s, j) as u64;
            n += rl * sl;
            i += group_len(r, i);
            j += group_len(s, j);
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use iawj_common::Tuple;

    fn packed(pairs: &[(u32, u32)]) -> Vec<u64> {
        let mut v: Vec<u64> = pairs
            .iter()
            .map(|&(k, t)| Tuple::new(k, t).pack())
            .collect();
        v.sort_unstable();
        v
    }

    fn collect(r: &[u64], s: &[u64]) -> Vec<(Key, Ts, Ts)> {
        let mut out = Vec::new();
        merge_join(r, s, |k, rt, st| out.push((k, rt, st)));
        out.sort_unstable();
        out
    }

    #[test]
    fn unique_keys_join_one_to_one() {
        let r = packed(&[(1, 10), (2, 20), (4, 40)]);
        let s = packed(&[(2, 21), (3, 31), (4, 41)]);
        assert_eq!(collect(&r, &s), vec![(2, 20, 21), (4, 40, 41)]);
    }

    #[test]
    fn duplicates_cross_product() {
        let r = packed(&[(7, 1), (7, 2)]);
        let s = packed(&[(7, 3), (7, 4), (7, 5)]);
        let out = collect(&r, &s);
        assert_eq!(out.len(), 6);
        assert!(out.contains(&(7, 2, 5)));
        assert_eq!(count_matches(&r, &s), 6);
    }

    #[test]
    fn disjoint_keys_no_matches() {
        let r = packed(&[(1, 0), (3, 0)]);
        let s = packed(&[(2, 0), (4, 0)]);
        assert!(collect(&r, &s).is_empty());
        assert_eq!(count_matches(&r, &s), 0);
    }

    #[test]
    fn empty_inputs() {
        assert!(collect(&[], &[]).is_empty());
        assert!(collect(&packed(&[(1, 1)]), &[]).is_empty());
        assert!(collect(&[], &packed(&[(1, 1)])).is_empty());
    }

    #[test]
    fn matches_nested_loop_reference() {
        use iawj_common::Rng;
        let mut rng = Rng::new(77);
        let r_t: Vec<Tuple> = (0..200)
            .map(|i| Tuple::new(rng.next_u32() % 32, i))
            .collect();
        let s_t: Vec<Tuple> = (0..300)
            .map(|i| Tuple::new(rng.next_u32() % 32, i))
            .collect();
        let mut expect = Vec::new();
        for rt in &r_t {
            for st in &s_t {
                if rt.key == st.key {
                    expect.push((rt.key, rt.ts, st.ts));
                }
            }
        }
        expect.sort_unstable();
        let mut r: Vec<u64> = r_t.iter().map(|t| t.pack()).collect();
        let mut s: Vec<u64> = s_t.iter().map(|t| t.pack()).collect();
        r.sort_unstable();
        s.sort_unstable();
        assert_eq!(collect(&r, &s), expect);
        assert_eq!(count_matches(&r, &s), expect.len() as u64);
    }

    #[test]
    fn cross_run_join_skips_same_run_pairs() {
        // R: key 5 from runs 0 and 1; S: key 5 from runs 0 and 1.
        let r = packed(&[(5, 1), (5, 2)]);
        let r_tags = vec![0u32, 1];
        let s = packed(&[(5, 3), (5, 4)]);
        let s_tags = vec![0u32, 1];
        let mut out = Vec::new();
        merge_join_cross_runs(&r, &r_tags, &s, &s_tags, |k, rt, st| out.push((k, rt, st)));
        out.sort_unstable();
        // Same-run pairs (1,3) [run 0] and (2,4) [run 1] are skipped.
        assert_eq!(out, vec![(5, 1, 4), (5, 2, 3)]);
    }

    #[test]
    fn cross_run_plus_same_run_equals_full_join() {
        use iawj_common::Rng;
        let mut rng = Rng::new(9);
        // Two runs per side.
        let mk = |rng: &mut Rng, n: usize| -> Vec<Tuple> {
            (0..n)
                .map(|i| Tuple::new(rng.next_u32() % 8, i as u32))
                .collect()
        };
        let r0 = mk(&mut rng, 40);
        let r1 = mk(&mut rng, 40);
        let s0 = mk(&mut rng, 40);
        let s1 = mk(&mut rng, 40);
        // Full join of concatenations.
        let all_r: Vec<Tuple> = r0.iter().chain(&r1).copied().collect();
        let all_s: Vec<Tuple> = s0.iter().chain(&s1).copied().collect();
        let mut full = Vec::new();
        for rt in &all_r {
            for st in &all_s {
                if rt.key == st.key {
                    full.push((rt.key, rt.ts, st.ts));
                }
            }
        }
        full.sort_unstable();
        // Same-run joins (initial phase).
        let mut got = Vec::new();
        for (rr, ss) in [(&r0, &s0), (&r1, &s1)] {
            for rt in rr.iter() {
                for st in ss.iter() {
                    if rt.key == st.key {
                        got.push((rt.key, rt.ts, st.ts));
                    }
                }
            }
        }
        // Cross-run join (merge phase).
        let tag_sorted = |a: &[Tuple], b: &[Tuple]| -> (Vec<u64>, Vec<u32>) {
            let mut pairs: Vec<(u64, u32)> = a
                .iter()
                .map(|t| (t.pack(), 0u32))
                .chain(b.iter().map(|t| (t.pack(), 1u32)))
                .collect();
            pairs.sort_unstable();
            (
                pairs.iter().map(|p| p.0).collect(),
                pairs.iter().map(|p| p.1).collect(),
            )
        };
        let (r, rt) = tag_sorted(&r0, &r1);
        let (s, st) = tag_sorted(&s0, &s1);
        merge_join_cross_runs(&r, &rt, &s, &st, |k, a, b| got.push((k, a, b)));
        got.sort_unstable();
        assert_eq!(
            got, full,
            "initial + merge phases must cover the full join exactly once"
        );
    }
}
