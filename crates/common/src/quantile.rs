//! Streaming quantile estimation (the P² algorithm of Jain & Chlamtac).
//!
//! The paper reports 95th-percentile worst-case latency (§4.1). The
//! default harness computes quantiles exactly over sampled matches; this
//! estimator is the constant-memory alternative for deployments where even
//! sampling is too much state — five markers track the target quantile of
//! an unbounded stream with no buffering, which is how production stream
//! processors expose their latency percentiles.

/// P² single-quantile estimator: five markers, O(1) per observation.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, used to initialise the markers.
    warmup: [f64; 5],
}

impl P2Quantile {
    /// Estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    /// Panics when `q` is outside the open unit interval.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: [0.0; 5],
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.warmup[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.warmup.sort_by(|a, b| a.total_cmp(b));
                self.heights = self.warmup;
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is within the marker span")
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }

        // Adjust the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let s = d.signum();
                let parabolic = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, s)
                    };
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (qm, qi, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, ni, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        qi + s / (np - nm)
            * ((ni - nm + s) * (qp - qi) / (np - ni) + (np - ni - s) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        let dn = self.positions[j] - self.positions[i];
        // Coincident markers would divide to ±inf/NaN and poison every
        // later estimate; the marker has nowhere to move, so keep its
        // height.
        if dn == 0.0 {
            return self.heights[i];
        }
        self.heights[i] + s * (self.heights[j] - self.heights[i]) / dn
    }

    /// Current estimate; `None` until five observations have arrived
    /// (before that an exact small-sample quantile is returned).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n @ 1..=4 => {
                // `estimate` may be polled per observation (latency
                // dashboards do); a stack copy + in-place sort keeps the
                // warmup path allocation-free.
                let mut v = [0.0f64; 4];
                v[..n].copy_from_slice(&self.warmup[..n]);
                let v = &mut v[..n];
                v.sort_unstable_by(|a, b| a.total_cmp(b));
                let idx = ((n - 1) as f64 * self.q).round() as usize;
                Some(v[idx])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn exact_quantile(mut v: Vec<f64>, q: f64) -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[((v.len() - 1) as f64 * q).round() as usize]
    }

    #[test]
    fn uniform_stream_p95() {
        let mut rng = Rng::new(1);
        let mut est = P2Quantile::new(0.95);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.next_f64() * 1000.0;
            est.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(all, 0.95);
        let got = est.estimate().unwrap();
        assert!(
            (got - exact).abs() < exact * 0.03,
            "P2 {got} vs exact {exact}"
        );
    }

    #[test]
    fn heavy_tail_median() {
        // Exponential-ish tail via inverse transform.
        let mut rng = Rng::new(2);
        let mut est = P2Quantile::new(0.5);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = -(1.0 - rng.next_f64()).ln() * 10.0;
            est.observe(x);
            all.push(x);
        }
        let exact = exact_quantile(all, 0.5);
        let got = est.estimate().unwrap();
        assert!(
            (got - exact).abs() < exact * 0.05,
            "P2 {got} vs exact {exact}"
        );
    }

    #[test]
    fn small_counts_are_exact() {
        let mut est = P2Quantile::new(0.95);
        assert!(est.estimate().is_none());
        est.observe(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.observe(1.0);
        est.observe(2.0);
        // 3 observations, q=0.95 -> highest.
        assert_eq!(est.estimate(), Some(3.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn monotone_input_converges() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000 {
            est.observe(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!((got - 9000.0).abs() < 250.0, "got {got}");
    }

    #[test]
    fn constant_stream() {
        let mut est = P2Quantile::new(0.75);
        for _ in 0..100 {
            est.observe(42.0);
        }
        assert_eq!(est.estimate(), Some(42.0));
    }

    /// Degenerate streams — long constant plateaus broken by jumps, values
    /// pinned to the extremes — are where marker positions can collide and
    /// the unguarded linear interpolation used to return NaN. Every
    /// intermediate estimate must stay finite.
    #[test]
    fn degenerate_streams_never_produce_nan() {
        let streams: Vec<Vec<f64>> = vec![
            std::iter::repeat_n(5.0, 500)
                .chain(std::iter::repeat_n(9.0, 7))
                .chain(std::iter::repeat_n(5.0, 500))
                .collect(),
            (0..600)
                .map(|i| if i % 97 == 0 { 1e9 } else { 0.0 })
                .collect(),
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1.0],
        ];
        for (si, s) in streams.iter().enumerate() {
            for &q in &[0.05, 0.5, 0.95] {
                let mut est = P2Quantile::new(q);
                for (i, &x) in s.iter().enumerate() {
                    est.observe(x);
                    let e = est.estimate().unwrap();
                    assert!(
                        e.is_finite(),
                        "stream {si} q={q}: estimate became {e} at obs {i}"
                    );
                }
            }
        }
    }

    /// Direct regression for the equal-positions guard: force coincident
    /// marker positions and check linear() keeps the height finite.
    #[test]
    fn linear_interpolation_guards_equal_positions() {
        let mut est = P2Quantile::new(0.5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            est.observe(x);
        }
        est.positions = [1.0, 3.0, 3.0, 4.0, 6.0];
        let up = est.linear(1, 1.0);
        assert!(up.is_finite(), "linear(1,+1) with equal positions: {up}");
        assert_eq!(up, est.heights[1], "height held in place");
        est.positions = [1.0, 2.0, 2.0, 4.0, 6.0];
        let down = est.linear(2, -1.0);
        assert!(down.is_finite());
        assert_eq!(down, est.heights[2]);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn rejects_out_of_range_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
