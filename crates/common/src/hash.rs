//! The integer hash shared by every hash-based join in the study.
//!
//! The paper's codebase uses a simple multiplicative/bitmask bucket function
//! over 32-bit keys; we use the 64-bit finalizer from Murmur3 (a.k.a.
//! `fmix64`), which is a few cycles, passes avalanche tests, and — unlike
//! SipHash — does not dominate the probe loop (see the performance guide's
//! hashing chapter). All tables in `iawj-exec` derive bucket indices from
//! this one function so the algorithms are comparable.

use crate::tuple::Key;

/// Murmur3 64-bit finalizer over the key.
#[inline]
pub fn hash_key(key: Key) -> u64 {
    let mut h = key as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// Bucket index for a table with a power-of-two bucket count.
#[inline]
pub fn bucket_of(key: Key, mask: u64) -> usize {
    (hash_key(key) & mask) as usize
}

/// Round up to the next power of two, at least `min`.
#[inline]
pub fn next_pow2_at_least(n: usize, min: usize) -> usize {
    n.max(min).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_key(12345), hash_key(12345));
    }

    #[test]
    fn hash_differs_for_nearby_keys() {
        // Sequential keys must not collide in the low bits (the bucket bits).
        let mask = 1023u64;
        let mut buckets = std::collections::HashSet::new();
        for k in 0..100u32 {
            buckets.insert(bucket_of(k, mask));
        }
        assert!(
            buckets.len() > 90,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip ~32 of the 64 output bits.
        let base = hash_key(0xABCD_EF01);
        for bit in 0..32 {
            let flipped = hash_key(0xABCD_EF01 ^ (1 << bit));
            let diff = (base ^ flipped).count_ones();
            assert!((16..=48).contains(&diff), "bit {bit}: {diff} bits changed");
        }
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(next_pow2_at_least(0, 16), 16);
        assert_eq!(next_pow2_at_least(16, 16), 16);
        assert_eq!(next_pow2_at_least(17, 16), 32);
        assert_eq!(next_pow2_at_least(5, 1), 8);
    }
}
