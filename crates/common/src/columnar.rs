//! Column-oriented stream storage.
//!
//! The paper's dataset structure (§4.2.2) follows Balkesen et al.'s
//! column-oriented model: a relation is stored as parallel key and payload
//! arrays rather than an array of records. For the 8-byte `<key, ts>`
//! tuples of this study the two layouts are close, but the columnar form
//! halves the bytes touched by key-only passes (radix histograms, bucket
//! hashing) — the `kernels` bench quantifies it. Algorithms operate on the
//! row form ([`Tuple`] slices); this module provides the conversions and a
//! zero-copy cursor so columnar data sources can feed the runner.

use crate::tuple::{Key, Ts, Tuple};

/// A stream stored column-wise: `keys[i]` and `ts[i]` form tuple `i`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnarStream {
    /// Join keys, arrival order.
    pub keys: Vec<Key>,
    /// Arrival timestamps, arrival order.
    pub ts: Vec<Ts>,
}

impl ColumnarStream {
    /// Empty stream with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        ColumnarStream {
            keys: Vec::with_capacity(n),
            ts: Vec::with_capacity(n),
        }
    }

    /// Split a row-form stream into columns.
    pub fn from_tuples(tuples: &[Tuple]) -> Self {
        ColumnarStream {
            keys: tuples.iter().map(|t| t.key).collect(),
            ts: tuples.iter().map(|t| t.ts).collect(),
        }
    }

    /// Materialise the row form.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.keys
            .iter()
            .zip(self.ts.iter())
            .map(|(&k, &t)| Tuple::new(k, t))
            .collect()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.keys.len(), self.ts.len());
        self.keys.len()
    }

    /// True when the stream holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Append one tuple.
    #[inline]
    pub fn push(&mut self, key: Key, ts: Ts) {
        self.keys.push(key);
        self.ts.push(ts);
    }

    /// Tuple `i` (panics when out of bounds).
    #[inline]
    pub fn get(&self, i: usize) -> Tuple {
        Tuple::new(self.keys[i], self.ts[i])
    }

    /// Iterate tuples without materialising them.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.keys
            .iter()
            .zip(self.ts.iter())
            .map(|(&k, &t)| Tuple::new(k, t))
    }
}

impl FromIterator<Tuple> for ColumnarStream {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut s = ColumnarStream::default();
        for t in iter {
            s.push(t.key, t.ts);
        }
        s
    }
}

impl From<&[Tuple]> for ColumnarStream {
    fn from(tuples: &[Tuple]) -> Self {
        ColumnarStream::from_tuples(tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Tuple> {
        (0..100).map(|i| Tuple::new(i * 3, i)).collect()
    }

    #[test]
    fn round_trip() {
        let rows = sample();
        let cols = ColumnarStream::from_tuples(&rows);
        assert_eq!(cols.len(), 100);
        assert_eq!(cols.to_tuples(), rows);
    }

    #[test]
    fn push_and_get() {
        let mut s = ColumnarStream::with_capacity(4);
        assert!(s.is_empty());
        s.push(7, 9);
        s.push(8, 10);
        assert_eq!(s.get(1), Tuple::new(8, 10));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_matches_rows() {
        let rows = sample();
        let cols: ColumnarStream = rows.iter().copied().collect();
        let back: Vec<Tuple> = cols.iter().collect();
        assert_eq!(back, rows);
        let via_from: ColumnarStream = rows.as_slice().into();
        assert_eq!(via_from, cols);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        ColumnarStream::default().get(0);
    }
}
