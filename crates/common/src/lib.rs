#![warn(missing_docs)]

//! Shared foundations of the intra-window-join (IaWJ) study.
//!
//! This crate defines the data model of the paper's §2 — tuples, streams, and
//! time-based windows — together with the deterministic random-number and
//! Zipf-distribution machinery every workload generator is built on, and the
//! integer hash function shared by all hash-based join algorithms.
//!
//! Everything here is dependency-free and deterministic: two runs with the
//! same seed produce byte-identical streams, which is what makes the
//! correctness tests of the eight join algorithms meaningful.

pub mod arena;
pub mod columnar;
pub mod hash;
pub mod kernel;
pub mod phase;
pub mod quantile;
pub mod rate;
pub mod rng;
pub mod sink;
pub mod spsc;
pub mod tuple;
pub mod window;
pub mod zipf;

pub use arena::ChunkedVec;
pub use columnar::ColumnarStream;
pub use hash::hash_key;
pub use kernel::{prefetch_read, KernelBackend, DEFAULT_PREFETCH_DIST};
pub use phase::{Phase, PhaseBreakdown, PhaseCounters, PHASES};
pub use quantile::P2Quantile;
pub use rate::Rate;
pub use rng::Rng;
pub use sink::{CollectingSink, CountingSink, MatchRecord, Sink};
pub use spsc::{stream_channel, RecvError, StreamReceiver, StreamSender};
pub use tuple::{Key, Ts, Tuple};
pub use window::Window;
pub use zipf::Zipf;
