//! Bounded single-producer/single-consumer channel with *blocking*
//! backpressure.
//!
//! The streaming join operator ingests each side of the join through one of
//! these queues: a source thread pushes timestamp-ordered tuples, the
//! operator thread drains them. When the consumer falls behind (a window
//! close is running an engine), the queue fills and `send` blocks — that is
//! the backpressure contract: a slow operator throttles its sources instead
//! of buffering unboundedly or dropping data.
//!
//! Every blocking episode is counted in a shared atomic so the operator can
//! observe backpressure without instrumenting the producer: the receiver
//! exposes [`StreamReceiver::blocked_sends`], and the streaming layer turns
//! increments into `stream:backpressure` journal instants.
//!
//! Implementation notes: a `Mutex<VecDeque>` plus two condvars. This is not
//! a lock-free ring — ingress parsing is never the bottleneck next to a
//! join, and the blocking semantics (including the capacity-1 case exercised
//! by the property tests) are much easier to make airtight this way.
//! Disconnect semantics mirror `std::sync::mpsc`: dropping the sender lets
//! the receiver drain what is buffered and then observe end-of-stream;
//! dropping the receiver makes further sends fail fast, returning the tuple.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    buf: VecDeque<T>,
    tx_alive: bool,
    rx_alive: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
    blocked_sends: AtomicU64,
}

/// Producer half of a bounded SPSC channel; see the module docs.
pub struct StreamSender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of a bounded SPSC channel; see the module docs.
pub struct StreamReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Why a receive did not produce an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The queue is currently empty but the producer is still alive.
    Empty,
    /// The producer is gone and everything buffered has been drained.
    Disconnected,
}

/// Create a bounded SPSC channel holding at most `cap` items (`cap >= 1`).
pub fn stream_channel<T>(cap: usize) -> (StreamSender<T>, StreamReceiver<T>) {
    assert!(cap >= 1, "stream_channel capacity must be >= 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: VecDeque::with_capacity(cap),
            tx_alive: true,
            rx_alive: true,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        cap,
        blocked_sends: AtomicU64::new(0),
    });
    (
        StreamSender {
            shared: Arc::clone(&shared),
        },
        StreamReceiver { shared },
    )
}

impl<T> StreamSender<T> {
    /// Push one item, blocking while the queue is full.
    ///
    /// Returns `Ok(blocked)` where `blocked` reports whether this call had
    /// to wait for space (a backpressure episode), or `Err(item)` if the
    /// receiver is gone.
    pub fn send(&self, item: T) -> Result<bool, T> {
        let mut inner = self.shared.inner.lock().unwrap();
        let mut blocked = false;
        while inner.buf.len() >= self.shared.cap {
            if !inner.rx_alive {
                return Err(item);
            }
            if !blocked {
                blocked = true;
                self.shared.blocked_sends.fetch_add(1, Ordering::Relaxed);
            }
            inner = self.shared.not_full.wait(inner).unwrap();
        }
        if !inner.rx_alive {
            return Err(item);
        }
        inner.buf.push_back(item);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(blocked)
    }
}

impl<T> Drop for StreamSender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.tx_alive = false;
        drop(inner);
        self.shared.not_empty.notify_all();
    }
}

impl<T> StreamReceiver<T> {
    /// Pop one item without blocking.
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.buf.pop_front() {
            Some(item) => {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(item)
            }
            None if inner.tx_alive => Err(RecvError::Empty),
            None => Err(RecvError::Disconnected),
        }
    }

    /// Pop one item, waiting up to `timeout` for the producer.
    ///
    /// The wait is against a fixed deadline, not a per-wakeup budget: each
    /// wakeup (a send that raced another drain of the buffer, or a spurious
    /// condvar wake) resumes waiting only for the *remaining* time, so the
    /// call returns within `timeout` of entry no matter how often it is
    /// woken.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.buf.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if !inner.tx_alive {
                return Err(RecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Empty);
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if res.timed_out() && inner.buf.is_empty() {
                return if inner.tx_alive {
                    Err(RecvError::Empty)
                } else {
                    Err(RecvError::Disconnected)
                };
            }
        }
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().buf.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity bound.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }

    /// Cumulative count of `send` calls that had to block for space.
    pub fn blocked_sends(&self) -> u64 {
        self.shared.blocked_sends.load(Ordering::Relaxed)
    }
}

impl<T> Drop for StreamReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.rx_alive = false;
        inner.buf.clear();
        drop(inner);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn in_order_delivery_and_drain_after_sender_drop() {
        let (tx, rx) = stream_channel::<u32>(4);
        for v in 0..4 {
            tx.send(v).unwrap();
        }
        drop(tx);
        for v in 0..4 {
            assert_eq!(rx.try_recv(), Ok(v));
        }
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn capacity_one_round_trip_counts_backpressure() {
        let (tx, rx) = stream_channel::<u64>(1);
        let producer = thread::spawn(move || {
            for v in 0..1000u64 {
                tx.send(v).unwrap();
            }
        });
        let mut got = 0u64;
        while got < 1000 {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, got);
                    got += 1;
                }
                Err(RecvError::Empty) => thread::yield_now(),
                Err(RecvError::Disconnected) => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(got, 1000);
        // With cap 1 and a spinning producer, at least one send must have
        // found the slot occupied.
        assert!(rx.blocked_sends() >= 1);
    }

    #[test]
    fn send_fails_fast_after_receiver_drop() {
        let (tx, rx) = stream_channel::<u8>(1);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(2));
    }

    /// Regression test for the timeout-restart bug: `recv_timeout` used to
    /// hand the *full* timeout back to `wait_timeout` after every wakeup,
    /// so a stream of wakeups that never leaves an item for this caller
    /// (spurious wakes, or sends raced by another drain) pushed the return
    /// arbitrarily far past the requested bound. With the deadline-based
    /// wait, ~1 s of 5 ms-spaced wakeups must not stretch an 80 ms timeout:
    /// the buggy version returns only after the wakeups stop (>1 s).
    #[test]
    fn recv_timeout_deadline_survives_repeated_wakeups() {
        use std::sync::atomic::AtomicBool;
        use std::time::Instant;

        let (tx, rx) = stream_channel::<u8>(2);
        let done = AtomicBool::new(false);
        thread::scope(|s| {
            // Wakeup source: notifies the receiver's condvar every 5 ms
            // without ever enqueueing an item — the in-module stand-in for
            // spurious wakes, which cannot be forced portably.
            s.spawn(|| {
                for _ in 0..200 {
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    rx.shared.not_empty.notify_all();
                    thread::sleep(Duration::from_millis(5));
                }
            });
            let start = Instant::now();
            let res = rx.recv_timeout(Duration::from_millis(80));
            let elapsed = start.elapsed();
            done.store(true, Ordering::Relaxed);
            assert_eq!(res, Err(RecvError::Empty));
            assert!(
                elapsed >= Duration::from_millis(75),
                "returned before the deadline: {elapsed:?}"
            );
            assert!(
                elapsed < Duration::from_millis(700),
                "wakeups must not restart the timeout: {elapsed:?}"
            );
        });
        drop(tx);
    }

    /// A slow-drip producer: items keep the receiver busy, and once the
    /// drip stops the final `recv_timeout` still spans ≈ its own timeout.
    #[test]
    fn recv_timeout_slow_drip_total_elapsed_tracks_timeout() {
        use std::time::Instant;

        let (tx, rx) = stream_channel::<u32>(4);
        let producer = thread::spawn(move || {
            for v in 0..3u32 {
                thread::sleep(Duration::from_millis(10));
                tx.send(v).unwrap();
            }
            // Keep tx alive past the consumer's last timed wait so the
            // final result is Empty, not Disconnected.
            thread::sleep(Duration::from_millis(300));
        });
        for v in 0..3u32 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(v));
        }
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(60)),
            Err(RecvError::Empty)
        );
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(55) && elapsed < Duration::from_millis(400),
            "timed-out wait should span ≈ the timeout, got {elapsed:?}"
        );
        producer.join().unwrap();
    }

    #[test]
    fn recv_timeout_sees_empty_then_item() {
        let (tx, rx) = stream_channel::<u8>(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_micros(200)),
            Err(RecvError::Empty)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(7));
    }
}
