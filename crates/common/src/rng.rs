//! Deterministic pseudo-random number generation.
//!
//! The study's workload generators must be reproducible across runs and
//! platforms, so we implement our own small PRNG rather than depending on a
//! crate whose stream could change between versions: SplitMix64 for seeding
//! and xoshiro256** for the main stream (public-domain algorithms by
//! Blackman & Vigna).

/// SplitMix64 step — used to expand a single `u64` seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** PRNG. Not cryptographic; fast and with a 2^256-1 period,
/// which is far more than any workload sweep in the study needs.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Two `Rng`s with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be degenerate; splitmix64 cannot produce four
        // zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derive an independent generator for a sub-stream (e.g. one per worker
    /// thread or per generated stream) without correlating the streams.
    pub fn split(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value (high bits of the 64-bit output, which are the
    /// better-mixed ones).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction
    /// (unbiased enough for workload generation; exact rejection is not worth
    /// the branch here).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
        // bound of 1 must always yield 0
        for _ in 0..10 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.below(8) as usize] += 1;
        }
        let expected = n / 8;
        for &c in &counts {
            // 10% tolerance: far looser than 5-sigma for n=80k.
            assert!((c as i64 - expected as i64).unsigned_abs() < expected as u64 / 10);
        }
    }

    #[test]
    fn split_streams_are_independent_looking() {
        let mut root = Rng::new(5);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle left the slice sorted");
    }
}
