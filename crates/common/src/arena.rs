//! Chunked output arena: append-only storage that never reallocates.
//!
//! `Vec::push` amortises to O(1) but pays for it with doubling reallocations
//! — every growth step is an allocator round-trip plus a full `memcpy` of
//! everything recorded so far, right on the match hot path. For a
//! high-selectivity workload (Rovio produces orders of magnitude more
//! matches than inputs) those copies re-stream the entire result set through
//! the cache hierarchy several times over. [`ChunkedVec`] instead keeps a
//! list of fixed-capacity chunks: `push` writes into the tail chunk and, at
//! worst, allocates a fresh chunk — existing elements are never moved, so
//! the write side stays one store per match and the cache footprint is the
//! tail chunk, not the whole history.

/// Default elements per chunk. At 24-byte match records this is ~24 KiB per
/// chunk — below the L1D, above allocator-churn territory.
pub const DEFAULT_CHUNK: usize = 1024;

/// An append-only, indexable container that grows by whole fixed-size
/// chunks instead of reallocating. All chunks except the last are exactly
/// `chunk_cap` long, which is what makes O(1) indexing possible.
#[derive(Clone, Debug)]
pub struct ChunkedVec<T> {
    chunks: Vec<Vec<T>>,
    chunk_cap: usize,
}

impl<T> ChunkedVec<T> {
    /// Empty arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_CHUNK)
    }

    /// Empty arena growing `chunk_cap` elements at a time (clamped to ≥1).
    pub fn with_chunk_capacity(chunk_cap: usize) -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            chunk_cap: chunk_cap.max(1),
        }
    }

    /// Elements stored.
    pub fn len(&self) -> usize {
        match self.chunks.last() {
            None => 0,
            Some(tail) => (self.chunks.len() - 1) * self.chunk_cap + tail.len(),
        }
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// The configured chunk capacity.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_cap
    }

    /// Append one element. Never moves previously stored elements; at most
    /// allocates one fresh chunk.
    #[inline]
    pub fn push(&mut self, value: T) {
        match self.chunks.last_mut() {
            Some(tail) if tail.len() < self.chunk_cap => tail.push(value),
            _ => {
                let mut chunk = Vec::with_capacity(self.chunk_cap);
                chunk.push(value);
                self.chunks.push(chunk);
            }
        }
    }

    /// Iterate over the elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flatten()
    }

    /// Drop all elements, keeping nothing allocated.
    pub fn clear(&mut self) {
        self.chunks.clear();
    }

    /// Flatten into a plain `Vec` (one final copy, off the hot path).
    pub fn into_vec(self) -> Vec<T> {
        let mut v = Vec::with_capacity(self.len());
        v.extend(self.chunks.into_iter().flatten());
        v
    }
}

impl<T> Default for ChunkedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::ops::Index<usize> for ChunkedVec<T> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.chunks[i / self.chunk_cap][i % self.chunk_cap]
    }
}

impl<T> Extend<T> for ChunkedVec<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T> FromIterator<T> for ChunkedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut c = ChunkedVec::new();
        c.extend(iter);
        c
    }
}

impl<T> IntoIterator for ChunkedVec<T> {
    type Item = T;
    type IntoIter = std::iter::Flatten<std::vec::IntoIter<Vec<T>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.chunks.into_iter().flatten()
    }
}

impl<'a, T> IntoIterator for &'a ChunkedVec<T> {
    type Item = &'a T;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Vec<T>>>;

    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter().flatten()
    }
}

impl<T: PartialEq> PartialEq for ChunkedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index_across_chunk_boundaries() {
        let mut c = ChunkedVec::with_chunk_capacity(4);
        for i in 0..11 {
            c.push(i);
        }
        assert_eq!(c.len(), 11);
        assert!(!c.is_empty());
        for i in 0..11 {
            assert_eq!(c[i], i);
        }
        assert_eq!(
            c.iter().copied().collect::<Vec<_>>(),
            (0..11).collect::<Vec<_>>()
        );
        assert_eq!(c.into_vec(), (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn elements_never_move_once_pushed() {
        // The arena's whole point: record each element's address at push
        // time and verify every one is still there after 10k more pushes.
        let mut c = ChunkedVec::with_chunk_capacity(64);
        let mut addrs = Vec::new();
        for i in 0..10_000usize {
            c.push(i);
            addrs.push(&c[i] as *const usize);
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(unsafe { *a }, i, "element {i} moved");
            assert_eq!(&c[i] as *const usize, a);
        }
    }

    #[test]
    fn owned_and_borrowed_iteration_agree() {
        let c: ChunkedVec<u32> = (0..100).collect();
        let borrowed: Vec<u32> = (&c).into_iter().copied().collect();
        let owned: Vec<u32> = c.into_iter().collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn extend_clear_and_equality() {
        let mut a = ChunkedVec::with_chunk_capacity(3);
        a.extend([1, 2, 3, 4, 5]);
        // Equality is element-wise, independent of chunk capacity.
        let b: ChunkedVec<i32> = (1..=5).collect();
        assert_eq!(a, b);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_chunk_capacity_is_clamped() {
        let mut c = ChunkedVec::with_chunk_capacity(0);
        assert_eq!(c.chunk_capacity(), 1);
        c.push('x');
        c.push('y');
        assert_eq!(c.len(), 2);
        assert_eq!(c[1], 'y');
    }
}
