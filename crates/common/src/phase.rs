//! The six execution phases of the paper's time breakdown (§5.3):
//! Wait, Partition, Build/Sort, Merge, Probe, Others.

use iawj_obs::perf::CounterDelta;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// Execution phase of a join run, for per-phase time accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Waiting for input to arrive (window length for lazy algorithms;
    /// stream-starvation stalls for eager ones).
    Wait = 0,
    /// Distributing workload among threads (radix partitioning, stream
    /// dispatch, JB status maintenance).
    Partition = 1,
    /// Hash-table construction or tuple sorting.
    BuildSort = 2,
    /// Merging sorted runs (sort-based algorithms only).
    Merge = 3,
    /// Matching tuples: hash probe or sorted-merge matching.
    Probe = 4,
    /// Everything else (thread management, bookkeeping).
    Other = 5,
}

/// All phases in breakdown order.
pub const PHASES: [Phase; 6] = [
    Phase::Wait,
    Phase::Partition,
    Phase::BuildSort,
    Phase::Merge,
    Phase::Probe,
    Phase::Other,
];

impl Phase {
    /// Short label matching the paper's Figure 7 legend.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Wait => "wait",
            Phase::Partition => "partition",
            Phase::BuildSort => "build/sort",
            Phase::Merge => "merge",
            Phase::Probe => "probe",
            Phase::Other => "others",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Nanoseconds spent per phase. Addable across threads and runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    ns: [u64; 6],
}

impl PhaseBreakdown {
    /// An all-zero breakdown.
    pub const fn zero() -> Self {
        PhaseBreakdown { ns: [0; 6] }
    }

    /// Record `ns` nanoseconds against a phase.
    #[inline]
    pub fn add_ns(&mut self, phase: Phase, ns: u64) {
        self.ns[phase as usize] += ns;
    }

    /// Total nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Total excluding the wait phase — the paper's "execution cost".
    pub fn busy_ns(&self) -> u64 {
        self.total_ns() - self.ns[Phase::Wait as usize]
    }

    /// Fraction of total time in a phase (0 when the total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.ns[phase as usize] as f64 / total as f64
        }
    }

    /// Convert a phase's time to CPU cycles at a nominal frequency —
    /// the study reports "cycles per input tuple" assuming the evaluation
    /// machine's 2.6 GHz clock.
    pub fn cycles(&self, phase: Phase, ghz: f64) -> f64 {
        self.ns[phase as usize] as f64 * ghz
    }
}

/// Hardware-counter deltas per phase — the microarchitectural companion
/// to [`PhaseBreakdown`]'s wall time. All-zero when the run had no
/// `perf_event` access. Addable across threads and runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounters {
    counters: [CounterDelta; 6],
}

impl PhaseCounters {
    /// An all-zero set.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Accumulate a counter delta against a phase.
    #[inline]
    pub fn record(&mut self, phase: Phase, delta: CounterDelta) {
        self.counters[phase as usize] += delta;
    }

    /// Sum across all phases.
    pub fn total(&self) -> CounterDelta {
        self.counters
            .iter()
            .fold(CounterDelta::zero(), |acc, c| acc + *c)
    }

    /// True when no phase recorded any event (perf unavailable or never
    /// sampled).
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(CounterDelta::is_zero)
    }
}

impl Index<Phase> for PhaseCounters {
    type Output = CounterDelta;
    fn index(&self, phase: Phase) -> &CounterDelta {
        &self.counters[phase as usize]
    }
}

impl AddAssign for PhaseCounters {
    fn add_assign(&mut self, rhs: PhaseCounters) {
        for (a, b) in self.counters.iter_mut().zip(rhs.counters.iter()) {
            *a += *b;
        }
    }
}

impl Add for PhaseCounters {
    type Output = PhaseCounters;
    fn add(mut self, rhs: PhaseCounters) -> PhaseCounters {
        self += rhs;
        self
    }
}

impl Index<Phase> for PhaseBreakdown {
    type Output = u64;
    fn index(&self, phase: Phase) -> &u64 {
        &self.ns[phase as usize]
    }
}

impl IndexMut<Phase> for PhaseBreakdown {
    fn index_mut(&mut self, phase: Phase) -> &mut u64 {
        &mut self.ns[phase as usize]
    }
}

impl Add for PhaseBreakdown {
    type Output = PhaseBreakdown;
    fn add(mut self, rhs: PhaseBreakdown) -> PhaseBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for PhaseBreakdown {
    fn add_assign(&mut self, rhs: PhaseBreakdown) {
        for (a, b) in self.ns.iter_mut().zip(rhs.ns.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_total() {
        let mut b = PhaseBreakdown::zero();
        b.add_ns(Phase::Wait, 100);
        b.add_ns(Phase::Probe, 300);
        b.add_ns(Phase::Probe, 100);
        assert_eq!(b.total_ns(), 500);
        assert_eq!(b.busy_ns(), 400);
        assert_eq!(b[Phase::Probe], 400);
    }

    #[test]
    fn fractions() {
        let mut b = PhaseBreakdown::zero();
        assert_eq!(b.fraction(Phase::Wait), 0.0);
        b.add_ns(Phase::Wait, 750);
        b.add_ns(Phase::Merge, 250);
        assert!((b.fraction(Phase::Wait) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn addition_is_elementwise() {
        let mut a = PhaseBreakdown::zero();
        a.add_ns(Phase::Partition, 10);
        let mut b = PhaseBreakdown::zero();
        b.add_ns(Phase::Partition, 5);
        b.add_ns(Phase::Other, 1);
        let c = a + b;
        assert_eq!(c[Phase::Partition], 15);
        assert_eq!(c[Phase::Other], 1);
    }

    #[test]
    fn cycles_conversion() {
        let mut b = PhaseBreakdown::zero();
        b.add_ns(Phase::BuildSort, 1000);
        // 1000 ns at 2.6 GHz = 2600 cycles.
        assert!((b.cycles(Phase::BuildSort, 2.6) - 2600.0).abs() < 1e-9);
    }

    #[test]
    fn phase_counters_accumulate_and_merge() {
        let mut delta = CounterDelta::zero();
        delta.vals[0] = 100;
        delta.vals[1] = 250;
        let mut a = PhaseCounters::zero();
        assert!(a.is_zero());
        a.record(Phase::Probe, delta);
        a.record(Phase::Probe, delta);
        assert!(!a.is_zero());
        assert_eq!(a[Phase::Probe].vals[0], 200);
        assert_eq!(a[Phase::Wait].vals[0], 0);
        let mut b = PhaseCounters::zero();
        b.record(Phase::Wait, delta);
        let c = a + b;
        assert_eq!(c[Phase::Probe].vals[1], 500);
        assert_eq!(c[Phase::Wait].vals[1], 250);
        assert_eq!(c.total().vals[0], 300);
    }

    #[test]
    fn labels_match_paper_legend() {
        let labels: Vec<_> = PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "wait",
                "partition",
                "build/sort",
                "merge",
                "probe",
                "others"
            ]
        );
    }
}
