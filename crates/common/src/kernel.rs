//! Batched, runtime-selectable kernel primitives shared by the join
//! algorithms: multi-key hashing, bucket/partition derivation over 8-key
//! blocks, and software prefetch.
//!
//! The paper's §6.2 microarchitectural analysis attributes most hot cycles
//! to scalar hashing and pointer-chasing bucket probes; its codebase (after
//! Balkesen et al.) answers with hand-vectorized kernels and explicit
//! software prefetch. This module is our equivalent: every primitive has a
//! portable scalar path that is the *definition* of correctness, and an
//! x86_64 AVX2 path that must be bitwise-identical to it (the property
//! tests in `iawj-exec/tests/kernel_props.rs` enforce this). Selection is
//! at runtime via [`KernelBackend`] so a single binary can A/B the two
//! (`--kernel {scalar,simd}`, Figure 21).
//!
//! Dispatch rules: the SIMD path is taken only when the backend says so,
//! the CPU reports AVX2 (`is_x86_feature_detected!`, cached by std), and
//! the build is not under Miri (Miri cannot execute vendor intrinsics —
//! the scalar path keeps the whole module Miri-checkable). On aarch64 the
//! *hash* path deliberately stays scalar: NEON has no 64-bit integer
//! multiply, so a vectorized fmix64 would be emulation without profit;
//! the win there is the `prfm` prefetch, which [`prefetch_read`] issues.

use crate::hash::{bucket_of, hash_key};
use crate::tuple::{Key, Tuple};
use std::fmt;
use std::str::FromStr;

/// How many keys a batched kernel consumes per block.
pub const HASH_BLOCK: usize = 8;

/// Default lookahead (in tuples) for the prefetched probe pipelines: far
/// enough that a DRAM load (~60-100 ns) completes before the drain reaches
/// the bucket, near enough that the line is still in L1 when it does.
pub const DEFAULT_PREFETCH_DIST: usize = 8;

/// Runtime-selectable implementation of the batched kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable one-key-at-a-time loops; the correctness reference.
    Scalar,
    /// 8-key blocks through AVX2 where available, plus software prefetch;
    /// falls back to the scalar path on CPUs without AVX2 and under Miri.
    #[default]
    Simd,
}

impl KernelBackend {
    /// Both backends, for sweeps and differential tests.
    pub const ALL: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Simd];

    /// Short label used in tables, run keys, and CLI parsing.
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Simd => "simd",
        }
    }

    /// Whether this backend should issue software prefetches and take the
    /// intrinsic paths. (The decision of *whether the CPU can* is made per
    /// call site; this is only the user's selection.)
    #[inline]
    pub fn is_simd(self) -> bool {
        matches!(self, KernelBackend::Simd)
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for KernelBackend {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelBackend::Scalar),
            "simd" => Ok(KernelBackend::Simd),
            _ => Err(()),
        }
    }
}

/// Is the AVX2 fast path actually available at runtime?
#[inline]
fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        false
    }
}

/// Hash one 8-key block. Bitwise-identical to eight [`hash_key`] calls on
/// every backend; the SIMD path evaluates the same fmix64 finalizer over
/// two 4×64-bit AVX2 registers.
#[inline]
pub fn hash_batch8(backend: KernelBackend, keys: &[Key; HASH_BLOCK]) -> [u64; HASH_BLOCK] {
    let mut out = [0u64; HASH_BLOCK];
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if backend.is_simd() && avx2_available() {
        // SAFETY: AVX2 presence was just verified.
        unsafe { avx2::hash8(keys, &mut out) };
        return out;
    }
    let _ = backend;
    for (o, &k) in out.iter_mut().zip(keys.iter()) {
        *o = hash_key(k);
    }
    out
}

/// Hash an arbitrary key slice into `out` (same length), 8-key blocks with
/// a scalar tail. Bitwise-identical across backends.
pub fn hash_keys_into(backend: KernelBackend, keys: &[Key], out: &mut [u64]) {
    assert_eq!(keys.len(), out.len(), "hash_keys_into length mismatch");
    let mut chunks = keys.chunks_exact(HASH_BLOCK);
    let mut outs = out.chunks_exact_mut(HASH_BLOCK);
    for (kc, oc) in (&mut chunks).zip(&mut outs) {
        let block: &[Key; HASH_BLOCK] = kc.try_into().unwrap();
        oc.copy_from_slice(&hash_batch8(backend, block));
    }
    for (o, &k) in outs.into_remainder().iter_mut().zip(chunks.remainder()) {
        *o = hash_key(k);
    }
}

/// Derive hash-table bucket indices for a tuple slice into `out` (cleared
/// and refilled), using the batched hash. `mask` is the table's
/// power-of-two bucket mask, as in [`bucket_of`].
pub fn tuple_buckets_into(
    backend: KernelBackend,
    tuples: &[Tuple],
    mask: u64,
    out: &mut Vec<usize>,
) {
    out.clear();
    out.reserve(tuples.len());
    let mut chunks = tuples.chunks_exact(HASH_BLOCK);
    for chunk in &mut chunks {
        // Gather the strided keys into a contiguous block for the SIMD load.
        let mut keys = [0 as Key; HASH_BLOCK];
        for (k, t) in keys.iter_mut().zip(chunk.iter()) {
            *k = t.key;
        }
        let hashes = hash_batch8(backend, &keys);
        out.extend(hashes.iter().map(|&h| (h & mask) as usize));
    }
    out.extend(chunks.remainder().iter().map(|t| bucket_of(t.key, mask)));
}

/// Derive radix partitions (raw key bits, no hashing — see
/// `iawj_exec::radix::partition_of`) for one 8-key block:
/// `(key >> shift) & mask32` per lane. Bitwise-identical across backends.
#[inline]
pub fn partition_batch8(
    backend: KernelBackend,
    keys: &[Key; HASH_BLOCK],
    shift: u32,
    mask32: u32,
) -> [usize; HASH_BLOCK] {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if backend.is_simd() && avx2_available() {
        // SAFETY: AVX2 presence was just verified.
        return unsafe { avx2::partition8(keys, shift, mask32) };
    }
    let _ = backend;
    let mut out = [0usize; HASH_BLOCK];
    for (o, &k) in out.iter_mut().zip(keys.iter()) {
        *o = ((k >> shift) & mask32) as usize;
    }
    out
}

/// Issue a read prefetch for the cache line holding `ptr` into L1.
///
/// Architecturally a hint: never faults, never changes program state, and
/// compiles to nothing on targets without a prefetch instruction and under
/// Miri (which cannot model it).
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    // SAFETY: PREFETCHT0 is a hint; it cannot fault even on invalid
    // addresses and performs no observable memory access.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    // SAFETY: PRFM PLDL1KEEP is a hint with no architectural side effects.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr as usize,
            options(nostack, preserves_flags, readonly),
        );
    }
    #[cfg(any(miri, not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        let _ = ptr;
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod avx2 {
    //! The AVX2 fast paths. AVX2 has no 64-bit integer multiply, so the
    //! fmix64 constant multiplications are assembled exactly from 32-bit
    //! partial products: with `a = a_hi·2³² + a_lo` and likewise `b`,
    //! `a·b mod 2⁶⁴ = a_lo·b_lo + ((a_lo·b_hi + a_hi·b_lo) << 32)` — three
    //! `vpmuludq` and two adds per multiply, bit-exact.

    use super::{Key, HASH_BLOCK};
    use core::arch::x86_64::*;

    /// Exact 64-bit product (mod 2⁶⁴) per lane from 32-bit multiplies.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo = _mm256_mul_epu32(a, b);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi), _mm256_mul_epu32(a_hi, b));
        _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross))
    }

    /// The murmur3 fmix64 finalizer over four 64-bit lanes; mirrors
    /// `hash::hash_key` operation for operation.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fmix64x4(mut h: __m256i) -> __m256i {
        h = _mm256_xor_si256(h, _mm256_srli_epi64::<33>(h));
        h = mul64(h, _mm256_set1_epi64x(0xFF51_AFD7_ED55_8CCDu64 as i64));
        h = _mm256_xor_si256(h, _mm256_srli_epi64::<33>(h));
        h = mul64(h, _mm256_set1_epi64x(0xC4CE_B9FE_1A85_EC53u64 as i64));
        _mm256_xor_si256(h, _mm256_srli_epi64::<33>(h))
    }

    /// Hash 8 keys: two zero-extending loads, two fmix64x4 evaluations.
    #[target_feature(enable = "avx2")]
    pub unsafe fn hash8(keys: &[Key; HASH_BLOCK], out: &mut [u64; HASH_BLOCK]) {
        let lo = _mm_loadu_si128(keys.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(keys.as_ptr().add(4) as *const __m128i);
        let h0 = fmix64x4(_mm256_cvtepu32_epi64(lo));
        let h1 = fmix64x4(_mm256_cvtepu32_epi64(hi));
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, h0);
        _mm256_storeu_si256(out.as_mut_ptr().add(4) as *mut __m256i, h1);
    }

    /// Radix partition derivation for 8 keys: variable right shift + mask
    /// over eight 32-bit lanes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn partition8(
        keys: &[Key; HASH_BLOCK],
        shift: u32,
        mask32: u32,
    ) -> [usize; HASH_BLOCK] {
        let k = _mm256_loadu_si256(keys.as_ptr() as *const __m256i);
        let shifted = _mm256_srl_epi32(k, _mm_cvtsi32_si128(shift as i32));
        let masked = _mm256_and_si256(shifted, _mm256_set1_epi32(mask32 as i32));
        let mut tmp = [0u32; HASH_BLOCK];
        _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, masked);
        let mut out = [0usize; HASH_BLOCK];
        for (o, &v) in out.iter_mut().zip(tmp.iter()) {
            *o = v as usize;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_hash_matches_scalar_reference() {
        for backend in KernelBackend::ALL {
            let keys: [Key; HASH_BLOCK] =
                [0, 1, 2, 0xDEAD_BEEF, u32::MAX, 42, 7_777_777, 123_456_789];
            let got = hash_batch8(backend, &keys);
            for (g, &k) in got.iter().zip(keys.iter()) {
                assert_eq!(*g, hash_key(k), "backend={backend} key={k}");
            }
        }
    }

    #[test]
    fn slice_hash_covers_tails() {
        for backend in KernelBackend::ALL {
            for n in [0usize, 1, 7, 8, 9, 16, 17, 100] {
                let keys: Vec<Key> = (0..n as u32)
                    .map(|i| i.wrapping_mul(2_654_435_761))
                    .collect();
                let mut out = vec![0u64; n];
                hash_keys_into(backend, &keys, &mut out);
                for (o, &k) in out.iter().zip(keys.iter()) {
                    assert_eq!(*o, hash_key(k), "backend={backend} n={n}");
                }
            }
        }
    }

    #[test]
    fn tuple_buckets_match_bucket_of() {
        let mask = 1023u64;
        for backend in KernelBackend::ALL {
            for n in [0usize, 1, 7, 8, 9, 4097] {
                let tuples: Vec<Tuple> = (0..n as u32)
                    .map(|i| Tuple {
                        key: i.wrapping_mul(0x9E37_79B9),
                        ts: i,
                    })
                    .collect();
                let mut out = Vec::new();
                tuple_buckets_into(backend, &tuples, mask, &mut out);
                assert_eq!(out.len(), n);
                for (b, t) in out.iter().zip(tuples.iter()) {
                    assert_eq!(*b, bucket_of(t.key, mask), "backend={backend} n={n}");
                }
            }
        }
    }

    #[test]
    fn partition_batch_matches_scalar_shift_and() {
        let keys: [Key; HASH_BLOCK] = [0, 1, 255, 256, 65_535, 65_536, u32::MAX, 0x1234_5678];
        for backend in KernelBackend::ALL {
            for (shift, bits) in [(0u32, 10u32), (6, 8), (12, 14), (0, 1)] {
                let mask32 = (1u32 << bits) - 1;
                let got = partition_batch8(backend, &keys, shift, mask32);
                for (g, &k) in got.iter().zip(keys.iter()) {
                    assert_eq!(*g, ((k >> shift) & mask32) as usize, "backend={backend}");
                }
            }
        }
    }

    #[test]
    fn backend_parse_and_labels() {
        assert_eq!("scalar".parse::<KernelBackend>(), Ok(KernelBackend::Scalar));
        assert_eq!("simd".parse::<KernelBackend>(), Ok(KernelBackend::Simd));
        assert!("avx512".parse::<KernelBackend>().is_err());
        assert_eq!(KernelBackend::default(), KernelBackend::Simd);
        assert_eq!(KernelBackend::Scalar.to_string(), "scalar");
        assert_eq!(KernelBackend::Simd.label(), "simd");
    }

    #[test]
    fn prefetch_is_a_harmless_hint() {
        // Null, dangling, unaligned: a prefetch must never fault.
        prefetch_read::<u8>(std::ptr::null());
        prefetch_read(0xDEAD_BEEFusize as *const u64);
        let v = [1u64, 2, 3];
        prefetch_read(v.as_ptr());
    }
}
