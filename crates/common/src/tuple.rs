//! The tuple model of §2 / §4.2.2 of the paper.
//!
//! A tuple is `x = {t, k, v}`; the benchmark stores it in the narrow 64-bit
//! `<key, payload>` layout of Balkesen et al., with the arrival timestamp
//! carried as the payload. Keys and timestamps are both 32 bits, so a whole
//! tuple packs into a single `u64`, which the sort-based algorithms exploit.

/// Join key (4 bytes, per the paper's column layout).
pub type Key = u32;

/// Arrival timestamp in stream milliseconds since the start of the window's
/// input (4 bytes; stored as the tuple payload, per §4.2.2).
pub type Ts = u32;

/// A stream tuple: 64 bits total, `<key, payload=timestamp>`.
///
/// ```
/// use iawj_common::Tuple;
///
/// let t = Tuple::new(42, 7);
/// assert_eq!(Tuple::unpack(t.pack()), t);
/// // Packed ordering is (key, ts):
/// assert!(Tuple::new(1, 999).pack() < Tuple::new(2, 0).pack());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(C)]
pub struct Tuple {
    /// Join key.
    pub key: Key,
    /// Arrival timestamp (doubles as the payload).
    pub ts: Ts,
}

impl Tuple {
    /// Construct a tuple from key and timestamp.
    #[inline]
    pub const fn new(key: Key, ts: Ts) -> Self {
        Tuple { key, ts }
    }

    /// Pack into a `u64` ordered by `(key, ts)`: the key occupies the high
    /// 32 bits so that an ordinary integer sort of packed values is exactly a
    /// sort by key with ties broken by timestamp.
    #[inline]
    pub const fn pack(self) -> u64 {
        ((self.key as u64) << 32) | self.ts as u64
    }

    /// Inverse of [`Tuple::pack`].
    #[inline]
    pub const fn unpack(raw: u64) -> Self {
        Tuple {
            key: (raw >> 32) as u32,
            ts: raw as u32,
        }
    }
}

/// Sort a slice of tuples by `(key, ts)` — the canonical order every
/// sort-based join in the study works with.
pub fn sort_by_key(tuples: &mut [Tuple]) {
    tuples.sort_unstable_by_key(|t| t.pack());
}

/// True if the slice is sorted by `(key, ts)`.
pub fn is_sorted_by_key(tuples: &[Tuple]) -> bool {
    tuples.windows(2).all(|w| w[0].pack() <= w[1].pack())
}

/// True if the slice is sorted by arrival timestamp — the invariant every
/// generated input stream must satisfy (§2: tuples arrive chronologically).
pub fn is_sorted_by_ts(tuples: &[Tuple]) -> bool {
    tuples.windows(2).all(|w| w[0].ts <= w[1].ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_is_64_bits() {
        assert_eq!(std::mem::size_of::<Tuple>(), 8);
    }

    #[test]
    fn pack_roundtrip() {
        let t = Tuple::new(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(Tuple::unpack(t.pack()), t);
    }

    #[test]
    fn pack_orders_by_key_then_ts() {
        let a = Tuple::new(1, 999);
        let b = Tuple::new(2, 0);
        assert!(a.pack() < b.pack());
        let c = Tuple::new(2, 1);
        assert!(b.pack() < c.pack());
    }

    #[test]
    fn sort_by_key_sorts() {
        let mut v = vec![
            Tuple::new(3, 0),
            Tuple::new(1, 5),
            Tuple::new(1, 2),
            Tuple::new(2, 9),
        ];
        sort_by_key(&mut v);
        assert!(is_sorted_by_key(&v));
        assert_eq!(v[0], Tuple::new(1, 2));
        assert_eq!(v[1], Tuple::new(1, 5));
    }

    #[test]
    fn sortedness_predicates() {
        let v = vec![Tuple::new(5, 0), Tuple::new(1, 1), Tuple::new(2, 1)];
        assert!(is_sorted_by_ts(&v));
        assert!(!is_sorted_by_key(&v));
        assert!(is_sorted_by_ts(&[]));
        assert!(is_sorted_by_key(&[]));
    }
}
