//! Input arrival rate `v` (tuples per millisecond, Table 1). The DEBS
//! workload and the YSB campaigns table are "data at rest": their rate is
//! infinite and every tuple is available immediately.

use std::fmt;

/// Arrival rate of one input stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Rate {
    /// Finite rate in tuples per millisecond.
    PerMs(f64),
    /// Data at rest: all tuples arrive instantly at the window start.
    Infinite,
}

impl Rate {
    /// The finite rate, if any.
    pub fn per_ms(self) -> Option<f64> {
        match self {
            Rate::PerMs(v) => Some(v),
            Rate::Infinite => None,
        }
    }

    /// Number of tuples this rate yields over a window of `w` milliseconds;
    /// `None` for an infinite rate (cardinality must be given explicitly).
    /// Takes the window width as `u64` so timestamp-width windows never
    /// truncate, and saturates at `usize::MAX` on overflow (an `as` cast
    /// from a finite `f64` is already saturating; NaN from `v * inf` cannot
    /// occur since `v` is finite here).
    pub fn tuples_over(self, window_ms: u64) -> Option<usize> {
        self.per_ms()
            .map(|v| (v * window_ms as f64).round() as usize)
    }

    /// Qualitative band used by the decision tree of Figure 4. The
    /// thresholds are relative to machine capability; these defaults follow
    /// the paper's Micro sweep where ≈1600/ms reads "low" and ≥25600/ms reads
    /// "high" on the evaluation machine.
    pub fn band(self, low_cut: f64, high_cut: f64) -> RateBand {
        match self {
            Rate::Infinite => RateBand::High,
            Rate::PerMs(v) if v < low_cut => RateBand::Low,
            Rate::PerMs(v) if v >= high_cut => RateBand::High,
            Rate::PerMs(_) => RateBand::Medium,
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rate::PerMs(v) => write!(f, "{v}/ms"),
            Rate::Infinite => write!(f, "inf"),
        }
    }
}

/// Qualitative arrival-rate band (decision-tree input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateBand {
    /// Well below machine capacity; hardware idles.
    Low,
    /// Within capacity, but high enough that efficiency matters.
    Medium,
    /// At or beyond capacity (includes data at rest).
    High,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_over_window() {
        assert_eq!(Rate::PerMs(61.0).tuples_over(1000), Some(61_000));
        assert_eq!(Rate::Infinite.tuples_over(1000), None);
        assert_eq!(Rate::PerMs(0.5).tuples_over(10), Some(5));
    }

    /// Regression: the parameter used to be `u32`, silently truncating
    /// timestamp-width windows. A window wider than `u32::MAX` ms must
    /// yield the full (rounded) product, and absurd products must saturate
    /// rather than wrap.
    #[test]
    fn tuples_over_wide_windows_do_not_truncate() {
        let w = u32::MAX as u64 + 10; // would wrap to 9 as u32
        assert_eq!(Rate::PerMs(1.0).tuples_over(w), Some(w as usize));
        assert_eq!(Rate::PerMs(0.0).tuples_over(w), Some(0));
        assert_eq!(Rate::Infinite.tuples_over(w), None);
        assert_eq!(
            Rate::PerMs(f64::MAX).tuples_over(u64::MAX),
            Some(usize::MAX),
            "overflowing products saturate"
        );
    }

    #[test]
    fn banding() {
        assert_eq!(Rate::PerMs(100.0).band(1600.0, 25600.0), RateBand::Low);
        assert_eq!(Rate::PerMs(6400.0).band(1600.0, 25600.0), RateBand::Medium);
        assert_eq!(Rate::PerMs(25600.0).band(1600.0, 25600.0), RateBand::High);
        assert_eq!(Rate::Infinite.band(1600.0, 25600.0), RateBand::High);
    }

    #[test]
    fn display() {
        assert_eq!(Rate::Infinite.to_string(), "inf");
        assert_eq!(Rate::PerMs(61.0).to_string(), "61/ms");
    }
}
