//! Match sinks: where join results go.
//!
//! Each worker thread owns one sink, so recording a match is contention-free;
//! the runner merges per-thread sinks afterwards. Workloads like Rovio
//! produce orders of magnitude more matches than inputs, so the default sink
//! counts every match but only *records* every `sample_every`-th one — enough
//! for quantile latency and progressiveness curves without materialising
//! gigabytes (the paper's harness batches its RDTSC stamps for the same
//! reason).

use crate::arena::ChunkedVec;
use crate::tuple::{Key, Ts};
use iawj_obs::LogHistogram;

/// One recorded join match: the result tuple of Definition 2 plus the
/// stream-time moment it was emitted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchRecord {
    /// Join key shared by both sides.
    pub key: Key,
    /// Arrival timestamp of the R-side tuple.
    pub r_ts: Ts,
    /// Arrival timestamp of the S-side tuple.
    pub s_ts: Ts,
    /// Stream time (ms, fractional) at which the match was produced.
    pub emit_ms: f64,
}

impl MatchRecord {
    /// Result-tuple timestamp per Definition 2: `max(r.ts, s.ts)`.
    #[inline]
    pub fn result_ts(&self) -> Ts {
        self.r_ts.max(self.s_ts)
    }

    /// Processing latency (§4.1): emission time minus the arrival of the
    /// later of the two inputs. Clamped at zero against clock skew.
    #[inline]
    pub fn latency_ms(&self) -> f64 {
        (self.emit_ms - self.result_ts() as f64).max(0.0)
    }
}

/// Destination for join matches. Implementations must be cheap: `push` sits
/// in the innermost loop of every algorithm.
pub trait Sink: Send {
    /// Record one match emitted at stream time `emit_ms`.
    fn push(&mut self, key: Key, r_ts: Ts, s_ts: Ts, emit_ms: f64);

    /// Total matches pushed so far.
    fn count(&self) -> u64;
}

/// Collects every match. For correctness tests and small inputs only.
#[derive(Debug, Default)]
pub struct CollectingSink {
    /// All matches, in emission order of this worker.
    pub matches: Vec<MatchRecord>,
}

impl CollectingSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The matches as `(key, r_ts, s_ts)` triples sorted canonically —
    /// the multiset equality form the correctness tests compare.
    pub fn canonical(&self) -> Vec<(Key, Ts, Ts)> {
        let mut v: Vec<_> = self
            .matches
            .iter()
            .map(|m| (m.key, m.r_ts, m.s_ts))
            .collect();
        v.sort_unstable();
        v
    }
}

impl Sink for CollectingSink {
    #[inline]
    fn push(&mut self, key: Key, r_ts: Ts, s_ts: Ts, emit_ms: f64) {
        self.matches.push(MatchRecord {
            key,
            r_ts,
            s_ts,
            emit_ms,
        });
    }

    fn count(&self) -> u64 {
        self.matches.len() as u64
    }
}

/// Counts all matches, records every `sample_every`-th *and always the
/// first* (so progressiveness curves start at the true first emission),
/// and feeds every match's latency into a log-bucketed histogram so tail
/// quantiles cover the full population, not just the sampled subset.
/// `sample_every = 1` records everything.
#[derive(Debug)]
pub struct CountingSink {
    count: u64,
    sample_every: u64,
    /// Sampled matches (the first, then every `sample_every`-th), in a
    /// chunked arena so recording never reallocates mid-run.
    pub samples: ChunkedVec<MatchRecord>,
    /// Emission time of the last match seen, for end-to-end throughput.
    pub last_emit_ms: f64,
    /// Exact latency distribution over *all* matches (ns resolution).
    pub hist: LogHistogram,
}

impl CountingSink {
    /// Sink sampling one in `sample_every` matches.
    pub fn new(sample_every: u64) -> Self {
        CountingSink {
            count: 0,
            sample_every: sample_every.max(1),
            samples: ChunkedVec::new(),
            last_emit_ms: 0.0,
            hist: LogHistogram::new(),
        }
    }
}

impl Sink for CountingSink {
    #[inline]
    fn push(&mut self, key: Key, r_ts: Ts, s_ts: Ts, emit_ms: f64) {
        self.count += 1;
        let m = MatchRecord {
            key,
            r_ts,
            s_ts,
            emit_ms,
        };
        self.hist.record_ms(m.latency_ms());
        if self.count == 1 || self.count.is_multiple_of(self.sample_every) {
            self.samples.push(m);
        }
        if emit_ms > self.last_emit_ms {
            self.last_emit_ms = emit_ms;
        }
    }

    fn count(&self) -> u64 {
        self.count
    }
}

/// Discards matches entirely (kernel microbenchmarks).
#[derive(Debug, Default)]
pub struct NullSink {
    count: u64,
}

impl Sink for NullSink {
    #[inline]
    fn push(&mut self, _key: Key, _r_ts: Ts, _s_ts: Ts, _emit_ms: f64) {
        self.count += 1;
    }

    fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_uses_later_input() {
        let m = MatchRecord {
            key: 1,
            r_ts: 100,
            s_ts: 400,
            emit_ms: 450.0,
        };
        assert_eq!(m.result_ts(), 400);
        assert!((m.latency_ms() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn latency_clamped_at_zero() {
        let m = MatchRecord {
            key: 1,
            r_ts: 100,
            s_ts: 400,
            emit_ms: 399.0,
        };
        assert_eq!(m.latency_ms(), 0.0);
    }

    #[test]
    fn collecting_sink_canonical_sorts() {
        let mut s = CollectingSink::new();
        s.push(2, 1, 1, 0.0);
        s.push(1, 9, 9, 0.0);
        assert_eq!(s.canonical(), vec![(1, 9, 9), (2, 1, 1)]);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn counting_sink_samples() {
        let mut s = CountingSink::new(10);
        for i in 0..100 {
            s.push(1, 0, 0, i as f64);
        }
        assert_eq!(s.count(), 100);
        // Matches #1 (always) plus #10, #20, ..., #100.
        assert_eq!(s.samples.len(), 11);
        assert!((s.last_emit_ms - 99.0).abs() < 1e-9);
    }

    #[test]
    fn counting_sink_always_records_first_match() {
        let mut s = CountingSink::new(1000);
        s.push(7, 3, 4, 10.0);
        assert_eq!(s.samples.len(), 1);
        assert_eq!(s.samples[0].key, 7);
        // The first match is not double-recorded when sample_every = 1.
        let mut dense = CountingSink::new(1);
        dense.push(1, 0, 0, 0.5);
        assert_eq!(dense.samples.len(), 1);
    }

    #[test]
    fn counting_sink_histogram_covers_every_match() {
        let mut s = CountingSink::new(100);
        for i in 0..250u32 {
            // emit at result_ts + i ms → latency i ms.
            s.push(1, 0, 0, i as f64);
        }
        assert_eq!(s.hist.count(), 250);
        assert_eq!(s.hist.max_ms(), Some(249.0));
        // Quantiles come from all matches though only #1, #100, #200 were
        // sampled.
        assert_eq!(s.samples.len(), 3);
        // The ceil(0.5 * 250)-th observation of latencies 0..249 is 124.
        let p50 = s.hist.quantile_ms(0.5).unwrap();
        assert!((p50 - 124.0).abs() <= 124.0 / 128.0 + 0.001, "p50={p50}");
    }

    #[test]
    fn counting_sink_sample_every_one_keeps_all() {
        let mut s = CountingSink::new(1);
        for _ in 0..5 {
            s.push(1, 0, 0, 1.0);
        }
        assert_eq!(s.samples.len(), 5);
    }

    #[test]
    fn counting_sink_zero_clamped() {
        // sample_every = 0 would divide by zero; constructor clamps to 1.
        let mut s = CountingSink::new(0);
        s.push(1, 0, 0, 1.0);
        assert_eq!(s.samples.len(), 1);
    }

    #[test]
    fn null_sink_counts() {
        let mut s = NullSink::default();
        s.push(1, 2, 3, 4.0);
        assert_eq!(s.count(), 1);
    }
}
