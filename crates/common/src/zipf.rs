//! Zipf-distributed sampling for key skew (`skew_key`) and arrival-time skew
//! (`skew_ts`), the two workload knobs of Table 1.
//!
//! For the modest domain sizes of the study (≤ a few million ranks) we
//! precompute the cumulative distribution once and sample by binary search —
//! O(log n) per draw, exact, and allocation-free after construction. A
//! `theta = 0` exponent degenerates to the uniform distribution, matching the
//! paper's use of "zipf(0)" for unskewed workloads.

use crate::rng::Rng;

/// A Zipf(θ) sampler over ranks `0..n`.
///
/// Rank `r` is drawn with probability proportional to `1 / (r+1)^θ`, so rank 0
/// is the most popular item.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[r]` = P(rank ≤ r). Last entry is 1.0.
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative / non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf exponent must be finite and non-negative, got {theta}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        if theta == 0.0 {
            // Uniform special case, exact.
            let step = 1.0 / n as f64;
            for r in 0..n {
                acc = (r + 1) as f64 * step;
                cdf.push(acc);
            }
        } else {
            // The harmonic weights 1/(r+1)^θ shrink with r, so a plain
            // forward sum adds ever-smaller terms to an ever-larger
            // accumulator and rounds the tail mass away for large n/θ.
            // Kahan compensation keeps the running error at one ulp of the
            // total regardless of n, for both the normalizer and the cdf.
            let weight = |r: usize| 1.0 / ((r + 1) as f64).powf(theta);
            let mut total = 0.0f64;
            let mut comp = 0.0f64;
            // Summing in reverse (ascending magnitude) costs nothing and
            // removes even the single-ulp dependence on accumulation order.
            for r in (0..n).rev() {
                let y = weight(r) - comp;
                let t = total + y;
                comp = (t - total) - y;
                total = t;
            }
            let norm = 1.0 / total;
            comp = 0.0;
            for r in 0..n {
                let y = weight(r) * norm - comp;
                let t = acc + y;
                comp = (t - acc) - y;
                acc = t;
                cdf.push(acc);
            }
        }
        // Defend binary search against floating-point round-off at the tail.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, theta }
    }

    /// Number of ranks in the domain.
    #[inline]
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent this sampler was built with.
    #[inline]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `0..domain()`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first rank whose cdf exceeds u.
        self.cdf
            .partition_point(|&p| p <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of a given rank (for tests and stats estimation).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

/// Estimate the Zipf exponent of an observed key-frequency distribution by a
/// least-squares fit of log(freq) against log(rank) — the same rank-frequency
/// regression commonly used to report `skew_key` figures like Table 3's.
///
/// Returns 0.0 when there are fewer than two distinct frequencies to fit.
pub fn estimate_theta(frequencies: &mut [u64]) -> f64 {
    frequencies.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> = frequencies
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(r, &f)| (((r + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    // Slope of the log-log fit is -theta.
    let slope = (n * sxy - sx * sy) / denom;
    (-slope).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1_000, "counts={counts:?}");
        }
    }

    #[test]
    fn rank_zero_dominates_with_high_theta() {
        let z = Zipf::new(1000, 1.5);
        let mut rng = Rng::new(2);
        let hits0 = (0..10_000).filter(|_| z.sample(&mut rng) == 0).count();
        // With theta=1.5 over 1000 ranks, rank 0 has ~38% of the mass.
        assert!(hits0 > 3_000, "rank-0 hits: {hits0}");
    }

    #[test]
    fn pmf_sums_to_one() {
        for &theta in &[0.0, 0.5, 1.0, 2.0] {
            let z = Zipf::new(100, theta);
            let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta={theta} total={total}");
        }
    }

    /// The precision the Kahan/reverse accumulation buys: even over a large
    /// domain, the pmf must sum to 1 within 1e-12 *and* every individual
    /// rank's mass must match the analytic weight — the naive forward sum
    /// loses the tail ranks' mass into round-off, which shows up as pmf
    /// values drifting from `w_r / H_{n,θ}` long before the total does.
    #[test]
    fn pmf_matches_analytic_mass_over_large_domain() {
        let n = 100_000usize;
        for &theta in &[0.5, 0.99, 2.0] {
            let z = Zipf::new(n, theta);
            let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-12, "theta={theta} total={total}");
            // Reference normalizer, summed smallest-first in f64 (exact to
            // an ulp for this monotone series).
            let h: f64 = (0..n)
                .rev()
                .map(|r| 1.0 / ((r + 1) as f64).powf(theta))
                .sum();
            for r in [0usize, 1, 9, 99, 9_999, n - 1] {
                let analytic = 1.0 / ((r + 1) as f64).powf(theta) / h;
                assert!(
                    (z.pmf(r) - analytic).abs() < 1e-12,
                    "theta={theta} rank={r}: pmf={} analytic={analytic}",
                    z.pmf(r)
                );
            }
        }
    }

    /// θ=0.99 (the paper's canonical skew point): observed frequencies over
    /// a long run must track the analytic mass of the head ranks.
    #[test]
    fn empirical_frequencies_match_analytic_mass_at_theta_099() {
        let n = 1000usize;
        let draws = 400_000usize;
        let z = Zipf::new(n, 0.99);
        let mut rng = Rng::new(42);
        let mut freq = vec![0u64; n];
        for _ in 0..draws {
            freq[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 2, 9, 99] {
            let expect = z.pmf(r);
            let got = freq[r] as f64 / draws as f64;
            // Binomial std-dev is sqrt(p(1-p)/draws); allow 5 sigma.
            let sigma = (expect * (1.0 - expect) / draws as f64).sqrt();
            assert!(
                (got - expect).abs() < 5.0 * sigma + 1e-4,
                "rank {r}: empirical {got} vs analytic {expect}"
            );
        }
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(7, 0.8);
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = Rng::new(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn theta_estimation_recovers_exponent_roughly() {
        let z = Zipf::new(500, 1.0);
        let mut rng = Rng::new(5);
        let mut freq = vec![0u64; 500];
        for _ in 0..200_000 {
            freq[z.sample(&mut rng)] += 1;
        }
        let est = estimate_theta(&mut freq);
        assert!(
            (est - 1.0).abs() < 0.25,
            "estimated theta {est} too far from 1.0"
        );
    }

    #[test]
    fn theta_estimation_of_uniform_is_near_zero() {
        let mut freq = vec![1000u64; 64];
        let est = estimate_theta(&mut freq);
        assert!(est < 0.05, "uniform data estimated as theta={est}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
