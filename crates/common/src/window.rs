//! Time-based windows (Definition 1 of the paper): an arbitrary time range
//! `[start, start + len)` of length `w` milliseconds. The intra-window join
//! operates on exactly one such window regardless of window type.

use crate::tuple::Ts;

/// A single time window `[start, start + len_ms)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Inclusive start timestamp (stream milliseconds).
    pub start: Ts,
    /// Window length `w` in milliseconds. A length of 0 denotes the
    /// data-at-rest case (DEBS): every tuple carries timestamp `start`.
    pub len_ms: Ts,
}

impl Window {
    /// Window starting at time 0, the configuration used throughout the
    /// paper's evaluation.
    pub const fn of_len(len_ms: Ts) -> Self {
        Window { start: 0, len_ms }
    }

    /// Exclusive end timestamp. For zero-length (data-at-rest) windows the
    /// single admissible timestamp is `start` itself.
    #[inline]
    pub fn end(&self) -> Ts {
        self.start.saturating_add(self.len_ms)
    }

    /// Does a tuple with this arrival timestamp belong to the window?
    #[inline]
    pub fn contains(&self, ts: Ts) -> bool {
        if self.len_ms == 0 {
            ts == self.start
        } else {
            ts >= self.start && ts < self.end()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_containment() {
        let w = Window::of_len(1000);
        assert!(w.contains(0));
        assert!(w.contains(999));
        assert!(!w.contains(1000));
    }

    #[test]
    fn zero_length_window_is_data_at_rest() {
        let w = Window::of_len(0);
        assert!(w.contains(0));
        assert!(!w.contains(1));
    }

    #[test]
    fn offset_window() {
        let w = Window {
            start: 500,
            len_ms: 250,
        };
        assert!(!w.contains(499));
        assert!(w.contains(500));
        assert!(w.contains(749));
        assert!(!w.contains(750));
        assert_eq!(w.end(), 750);
    }
}
