//! Property-based tests of the workload generators: structural invariants
//! that must hold for every parameter combination.

use iawj_common::tuple::is_sorted_by_ts;
use iawj_datagen::{debs, rovio, stock, ysb, MicroSpec};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn micro_always_time_ordered_and_in_window(
        rate_r in 1.0f64..50.0, rate_s in 1.0f64..50.0,
        window in 10u32..500, dupe in 1usize..30,
        skew_key in 0.0f64..2.0, skew_ts in 0.0f64..2.0, seed in 0u64..500) {
        let ds = MicroSpec {
            rate_r, rate_s, window_ms: window, dupe,
            skew_key, skew_ts, static_data: false,
            count_r: None, count_s: None, seed,
        }.generate();
        prop_assert!(is_sorted_by_ts(&ds.r));
        prop_assert!(is_sorted_by_ts(&ds.s));
        prop_assert!(ds.r.iter().all(|t| ds.window.contains(t.ts)));
        prop_assert!(ds.s.iter().all(|t| ds.window.contains(t.ts)));
        prop_assert_eq!(ds.r.len(), (rate_r * window as f64).round() as usize);
    }

    #[test]
    fn micro_dupe_is_exact_without_skew(dupe in 1usize..50, seed in 0u64..100) {
        let n = 2000;
        let ds = MicroSpec::static_counts(n, n).dupe(dupe).seed(seed).generate();
        let mut freq: HashMap<u32, usize> = HashMap::new();
        for t in &ds.r {
            *freq.entry(t.key).or_insert(0) += 1;
        }
        let domain = (n / dupe).max(1);
        prop_assert_eq!(freq.len(), domain.min(n));
        let (min, max) = freq.values().fold((usize::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        prop_assert!(max - min <= 1, "round-robin must be balanced: {min}..{max}");
    }

    #[test]
    fn real_workloads_key_domains_overlap(scale in 0.001f64..0.05, seed in 0u64..50) {
        for ds in [stock(scale, seed), rovio(scale, seed), ysb(scale, seed), debs(scale, seed)] {
            let r_keys: std::collections::HashSet<u32> = ds.r.iter().map(|t| t.key).collect();
            let joined = ds.s.iter().any(|t| r_keys.contains(&t.key));
            prop_assert!(joined, "{}: no joinable keys at scale {scale}", ds.name);
            prop_assert!(is_sorted_by_ts(&ds.r), "{}", ds.name);
            prop_assert!(is_sorted_by_ts(&ds.s), "{}", ds.name);
        }
    }
}
