//! The generated input of one experiment: two timestamp-ordered streams and
//! the window they are joined over.

use iawj_common::{Rate, Tuple, Window};

/// A complete intra-window-join input.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Workload name ("Stock", "Micro", ...).
    pub name: String,
    /// Stream R, chronologically ordered.
    pub r: Vec<Tuple>,
    /// Stream S, chronologically ordered.
    pub s: Vec<Tuple>,
    /// The window both streams are joined over.
    pub window: Window,
    /// Nominal arrival rate of R (for stats / decision tree).
    pub rate_r: Rate,
    /// Nominal arrival rate of S.
    pub rate_s: Rate,
}

impl Dataset {
    /// Assemble a dataset from keys and timestamps (lengths must match).
    /// Tuples are emitted in timestamp order, as the paper's loader does.
    #[allow(clippy::too_many_arguments)] // mirrors the (stream x attribute) matrix; a builder would obscure it
    pub fn assemble(
        name: impl Into<String>,
        r_keys: Vec<u32>,
        r_ts: Vec<u32>,
        s_keys: Vec<u32>,
        s_ts: Vec<u32>,
        window: Window,
        rate_r: Rate,
        rate_s: Rate,
    ) -> Self {
        assert_eq!(r_keys.len(), r_ts.len());
        assert_eq!(s_keys.len(), s_ts.len());
        let zip = |keys: Vec<u32>, ts: Vec<u32>| -> Vec<Tuple> {
            keys.into_iter()
                .zip(ts)
                .map(|(k, t)| Tuple::new(k, t))
                .collect()
        };
        let ds = Dataset {
            name: name.into(),
            r: zip(r_keys, r_ts),
            s: zip(s_keys, s_ts),
            window,
            rate_r,
            rate_s,
        };
        debug_assert!(iawj_common::tuple::is_sorted_by_ts(&ds.r));
        debug_assert!(iawj_common::tuple::is_sorted_by_ts(&ds.s));
        ds
    }

    /// Total input tuples across both streams — the numerator of the
    /// paper's throughput metric.
    pub fn total_inputs(&self) -> usize {
        self.r.len() + self.s.len()
    }

    /// True when every tuple of both streams is available at time 0
    /// (data at rest), letting the runner skip arrival gating.
    pub fn is_static(&self) -> bool {
        self.r.last().is_none_or(|t| t.ts == 0) && self.s.last().is_none_or(|t| t.ts == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_pairs_up() {
        let ds = Dataset::assemble(
            "t",
            vec![1, 2],
            vec![0, 5],
            vec![3],
            vec![7],
            Window::of_len(10),
            Rate::PerMs(0.2),
            Rate::PerMs(0.1),
        );
        assert_eq!(ds.r, vec![Tuple::new(1, 0), Tuple::new(2, 5)]);
        assert_eq!(ds.s, vec![Tuple::new(3, 7)]);
        assert_eq!(ds.total_inputs(), 3);
        assert!(!ds.is_static());
    }

    #[test]
    fn static_detection() {
        let ds = Dataset::assemble(
            "static",
            vec![1, 2],
            vec![0, 0],
            vec![3],
            vec![0],
            Window::of_len(0),
            Rate::Infinite,
            Rate::Infinite,
        );
        assert!(ds.is_static());
    }

    #[test]
    fn empty_streams_are_static() {
        let ds = Dataset::assemble(
            "empty",
            vec![],
            vec![],
            vec![],
            vec![],
            Window::of_len(0),
            Rate::Infinite,
            Rate::Infinite,
        );
        assert!(ds.is_static());
        assert_eq!(ds.total_inputs(), 0);
    }
}
