//! Arrival-time generators: the `skew_ts` dimension of Table 1 plus the
//! "spiky" Stock pattern of Figure 3a.

use iawj_common::{Rng, Ts, Zipf};

/// `n` timestamps spread uniformly over `[0, window_ms)`, in arrival order.
/// This is the paper's "uniform arrival distribution" (skew_ts = 0).
pub fn uniform(n: usize, window_ms: u32) -> Vec<Ts> {
    if window_ms == 0 {
        return vec![0; n];
    }
    (0..n)
        .map(|i| ((i as u64 * window_ms as u64) / n.max(1) as u64) as Ts)
        .collect()
}

/// All `n` tuples arrive instantly (data at rest: DEBS, YSB's campaign
/// table; arrival rate = ∞).
pub fn instant(n: usize) -> Vec<Ts> {
    vec![0; n]
}

/// Zipf-skewed arrivals: timestamps are drawn Zipf(θ) over the window's
/// millisecond slots with *early* slots most popular, then sorted. This is
/// the §5.4 "more tuples bear the same timestamps as in the early tuples
/// of input streams with increasing skew_ts" construction.
pub fn zipf_skewed(n: usize, window_ms: u32, theta: f64, rng: &mut Rng) -> Vec<Ts> {
    if window_ms == 0 {
        return vec![0; n];
    }
    if theta == 0.0 {
        return uniform(n, window_ms);
    }
    let z = Zipf::new(window_ms as usize, theta);
    let mut ts: Vec<Ts> = (0..n).map(|_| z.sample(rng) as Ts).collect();
    ts.sort_unstable();
    ts
}

/// Spiky arrivals (Figure 3a, the Stock trade/quote pattern): a uniform
/// baseline carrying `1 - spike_mass` of the tuples plus `spikes` narrow
/// bursts at random positions carrying the rest.
pub fn spiky(n: usize, window_ms: u32, spikes: usize, spike_mass: f64, rng: &mut Rng) -> Vec<Ts> {
    assert!((0.0..=1.0).contains(&spike_mass));
    if window_ms == 0 || n == 0 {
        return vec![0; n];
    }
    let n_spike = (n as f64 * spike_mass) as usize;
    let n_base = n - n_spike;
    let mut ts = uniform(n_base, window_ms);
    if spikes > 0 && n_spike > 0 {
        let positions: Vec<Ts> = (0..spikes)
            .map(|_| rng.below(window_ms as u64) as Ts)
            .collect();
        for i in 0..n_spike {
            // Each spike is 1-2 ms wide, like the single-slot bursts of
            // Figure 3a.
            let p = positions[i % positions.len()];
            let jitter = rng.below(2) as Ts;
            ts.push((p + jitter).min(window_ms - 1));
        }
    }
    ts.sort_unstable();
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_sorted(ts: &[Ts]) -> bool {
        ts.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn uniform_spreads_evenly() {
        let ts = uniform(1000, 100);
        assert_eq!(ts.len(), 1000);
        assert!(is_sorted(&ts));
        assert_eq!(ts[0], 0);
        assert_eq!(*ts.last().unwrap(), 99);
        // Every ms slot gets ~10 tuples.
        let in_first_half = ts.iter().filter(|&&t| t < 50).count();
        assert_eq!(in_first_half, 500);
    }

    #[test]
    fn uniform_zero_window_is_instant() {
        assert_eq!(uniform(5, 0), vec![0; 5]);
        assert_eq!(instant(3), vec![0; 3]);
    }

    #[test]
    fn uniform_fewer_tuples_than_slots() {
        let ts = uniform(3, 300);
        assert_eq!(ts, vec![0, 100, 200]);
    }

    #[test]
    fn zipf_skews_early() {
        let mut rng = Rng::new(1);
        let ts = zipf_skewed(10_000, 1000, 1.6, &mut rng);
        assert!(is_sorted(&ts));
        assert!(ts.iter().all(|&t| t < 1000));
        let early = ts.iter().filter(|&&t| t < 100).count();
        // At theta=1.6 the first 10% of slots hold the vast majority.
        assert!(early > 7_000, "only {early} of 10000 in the first 100 ms");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut rng = Rng::new(2);
        assert_eq!(zipf_skewed(100, 50, 0.0, &mut rng), uniform(100, 50));
    }

    #[test]
    fn spiky_concentrates_mass() {
        let mut rng = Rng::new(3);
        let ts = spiky(61_000, 1000, 8, 0.5, &mut rng);
        assert_eq!(ts.len(), 61_000);
        assert!(is_sorted(&ts));
        // Count the per-ms histogram: some slot must hold far more than the
        // 61/ms uniform baseline.
        let mut hist = vec![0u32; 1000];
        for &t in &ts {
            hist[t as usize] += 1;
        }
        let max = *hist.iter().max().unwrap();
        assert!(max > 1000, "no spike found, max slot = {max}");
    }

    #[test]
    fn spiky_zero_mass_is_uniform() {
        let mut rng = Rng::new(4);
        let ts = spiky(100, 50, 4, 0.0, &mut rng);
        assert_eq!(ts, uniform(100, 50));
    }

    #[test]
    fn spiky_empty() {
        let mut rng = Rng::new(5);
        assert!(spiky(0, 100, 4, 0.5, &mut rng).is_empty());
    }
}
