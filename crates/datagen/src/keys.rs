//! Key-assignment generators: the `skew_key` and `dupe` dimensions of
//! Table 1.

use iawj_common::{Key, Rng, Zipf};

/// `n` distinct keys `0..n`, shuffled — the "unique key set" of the Micro
/// sweeps.
pub fn unique(n: usize, rng: &mut Rng) -> Vec<Key> {
    let mut keys: Vec<Key> = (0..n as u32).collect();
    rng.shuffle(&mut keys);
    keys
}

/// Exact duplication: the domain `0..domain` is cycled so every key appears
/// `ceil`/`floor` of `n / domain` times, then shuffled. This gives the
/// precise `dupe = n / domain` of the Figure 11 sweep.
pub fn round_robin(n: usize, domain: usize, rng: &mut Rng) -> Vec<Key> {
    assert!(domain > 0, "key domain must be non-empty");
    let mut keys: Vec<Key> = (0..n).map(|i| (i % domain) as Key).collect();
    rng.shuffle(&mut keys);
    keys
}

/// Zipf-skewed keys over `0..domain` with exponent `theta` — the Figure 13
/// `skew_key` sweep and the Table 3 skew parameters. Key *identities* are
/// scrambled (rank 0 is not key 0) so radix partitioning sees no
/// correlation between popularity and key bits, as with real identifiers.
pub fn zipf(n: usize, domain: usize, theta: f64, rng: &mut Rng) -> Vec<Key> {
    if theta == 0.0 {
        return round_robin(n, domain, rng);
    }
    let z = Zipf::new(domain, theta);
    // Permute rank -> key id.
    let mut ids: Vec<Key> = (0..domain as u32).collect();
    rng.shuffle(&mut ids);
    (0..n).map(|_| ids[z.sample(rng)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn freq(keys: &[Key]) -> HashMap<Key, usize> {
        let mut m = HashMap::new();
        for &k in keys {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn unique_keys_are_a_permutation() {
        let mut rng = Rng::new(1);
        let keys = unique(1000, &mut rng);
        let f = freq(&keys);
        assert_eq!(f.len(), 1000);
        assert!(f.values().all(|&c| c == 1));
    }

    #[test]
    fn round_robin_exact_duplication() {
        let mut rng = Rng::new(2);
        let keys = round_robin(1000, 100, &mut rng);
        let f = freq(&keys);
        assert_eq!(f.len(), 100);
        assert!(f.values().all(|&c| c == 10));
    }

    #[test]
    fn round_robin_uneven_division() {
        let mut rng = Rng::new(3);
        let keys = round_robin(10, 3, &mut rng);
        let f = freq(&keys);
        assert_eq!(f.len(), 3);
        let mut counts: Vec<usize> = f.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![3, 3, 4]);
    }

    #[test]
    fn zipf_skews_popularity() {
        let mut rng = Rng::new(4);
        let keys = zipf(50_000, 1000, 1.2, &mut rng);
        let f = freq(&keys);
        let max = *f.values().max().unwrap();
        let avg = 50_000 / f.len();
        assert!(max > avg * 10, "max {max} not skewed vs avg {avg}");
        assert!(keys.iter().all(|&k| (k as usize) < 1000));
    }

    #[test]
    fn zipf_theta_zero_is_round_robin() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        assert_eq!(zipf(100, 10, 0.0, &mut a), round_robin(100, 10, &mut b));
    }

    #[test]
    fn zipf_scrambles_identity() {
        // The most frequent key should usually not be key 0.
        let mut hits = 0;
        for seed in 0..10 {
            let mut rng = Rng::new(seed);
            let keys = zipf(10_000, 100, 1.5, &mut rng);
            let f = freq(&keys);
            let top = f.iter().max_by_key(|(_, &c)| c).map(|(&k, _)| k).unwrap();
            if top == 0 {
                hits += 1;
            }
        }
        assert!(hits <= 3, "rank-to-key permutation looks broken: {hits}/10");
    }
}
