//! The Micro synthetic workload (§4.2.1), after Kim et al. — the fully
//! tunable workload driving every sensitivity study in §5.4 and §5.5.

use crate::arrival;
use crate::dataset::Dataset;
use crate::keys;
use iawj_common::{Rate, Rng, Window};

/// Parameters of the Micro workload. All knobs of Table 1 are exposed:
/// per-stream arrival rate `v`, window length `w`, duplicates per key
/// `dupe`, key skew, and arrival-time skew.
///
/// ```
/// use iawj_datagen::MicroSpec;
///
/// let ds = MicroSpec::with_rates(100.0, 200.0) // tuples per ms
///     .window_ms(500)
///     .dupe(5)
///     .seed(1)
///     .generate();
/// assert_eq!(ds.r.len(), 50_000);
/// assert_eq!(ds.s.len(), 100_000);
/// assert!(ds.r.iter().all(|t| t.ts < 500));
/// ```
#[derive(Clone, Debug)]
pub struct MicroSpec {
    /// Arrival rate of R in tuples/ms (ignored when `static_data`).
    pub rate_r: f64,
    /// Arrival rate of S in tuples/ms (ignored when `static_data`).
    pub rate_s: f64,
    /// Window length in ms.
    pub window_ms: u32,
    /// Average duplicates per key in R; the key domain is `|R| / dupe`.
    /// `1` gives the "unique key set" configuration.
    pub dupe: usize,
    /// Zipf exponent of key popularity (0 = exact round-robin duplication).
    pub skew_key: f64,
    /// Zipf exponent of arrival times (0 = uniform arrivals).
    pub skew_ts: f64,
    /// All tuples available at t=0 (the §5.5 parameter studies eliminate
    /// wait time this way).
    pub static_data: bool,
    /// Explicit |R| (overrides `rate_r * window_ms`; required when static).
    pub count_r: Option<usize>,
    /// Explicit |S|.
    pub count_s: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroSpec {
    fn default() -> Self {
        MicroSpec {
            rate_r: 1600.0,
            rate_s: 1600.0,
            window_ms: 1000,
            dupe: 1,
            skew_key: 0.0,
            skew_ts: 0.0,
            static_data: false,
            count_r: None,
            count_s: None,
            seed: 0x1A57,
        }
    }
}

impl MicroSpec {
    /// Both streams at rate `v`, the Figure 9 configuration.
    pub fn with_rates(rate_r: f64, rate_s: f64) -> Self {
        MicroSpec {
            rate_r,
            rate_s,
            ..Default::default()
        }
    }

    /// The static configuration of the §5.5 parameter studies:
    /// `|R| = count_r`, `|S| = count_s`, everything available instantly.
    pub fn static_counts(count_r: usize, count_s: usize) -> Self {
        MicroSpec {
            static_data: true,
            count_r: Some(count_r),
            count_s: Some(count_s),
            ..Default::default()
        }
    }

    /// Set average key duplication.
    pub fn dupe(mut self, dupe: usize) -> Self {
        self.dupe = dupe.max(1);
        self
    }

    /// Set key-skew exponent.
    pub fn skew_key(mut self, theta: f64) -> Self {
        self.skew_key = theta;
        self
    }

    /// Set arrival-skew exponent.
    pub fn skew_ts(mut self, theta: f64) -> Self {
        self.skew_ts = theta;
        self
    }

    /// Set window length.
    pub fn window_ms(mut self, w: u32) -> Self {
        self.window_ms = w;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cardinality of R implied by the spec.
    pub fn n_r(&self) -> usize {
        self.count_r
            .unwrap_or_else(|| (self.rate_r * self.window_ms as f64).round() as usize)
    }

    /// Cardinality of S implied by the spec.
    pub fn n_s(&self) -> usize {
        self.count_s
            .unwrap_or_else(|| (self.rate_s * self.window_ms as f64).round() as usize)
    }

    /// Size of the shared key domain: `max(|R| / dupe, 1)`.
    pub fn key_domain(&self) -> usize {
        (self.n_r() / self.dupe).max(1)
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = Rng::new(self.seed);
        let n_r = self.n_r();
        let n_s = self.n_s();
        let domain = self.key_domain();

        let mut key_rng = rng.split(1);
        let gen_keys = |n: usize, rng: &mut Rng| {
            if self.skew_key > 0.0 {
                keys::zipf(n, domain, self.skew_key, rng)
            } else if self.dupe == 1 && n <= domain {
                keys::unique(n, rng)
            } else {
                keys::round_robin(n, domain, rng)
            }
        };
        let r_keys = gen_keys(n_r, &mut key_rng);
        let s_keys = gen_keys(n_s, &mut key_rng);

        let mut ts_rng = rng.split(2);
        let gen_ts = |n: usize, rng: &mut Rng| {
            if self.static_data {
                arrival::instant(n)
            } else if self.skew_ts > 0.0 {
                arrival::zipf_skewed(n, self.window_ms, self.skew_ts, rng)
            } else {
                arrival::uniform(n, self.window_ms)
            }
        };
        let r_ts = gen_ts(n_r, &mut ts_rng);
        let s_ts = gen_ts(n_s, &mut ts_rng);

        let (rate_r, rate_s) = if self.static_data {
            (Rate::Infinite, Rate::Infinite)
        } else {
            (Rate::PerMs(self.rate_r), Rate::PerMs(self.rate_s))
        };
        let window = if self.static_data {
            Window::of_len(0)
        } else {
            Window::of_len(self.window_ms)
        };
        Dataset::assemble("Micro", r_keys, r_ts, s_keys, s_ts, window, rate_r, rate_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn default_spec_generates_unique_uniform() {
        let ds = MicroSpec::default().generate();
        assert_eq!(ds.r.len(), 1_600_000 / 1000 * 1000);
        assert_eq!(ds.s.len(), ds.r.len());
        // Unique keys.
        let mut f = HashMap::new();
        for t in &ds.r {
            *f.entry(t.key).or_insert(0usize) += 1;
        }
        assert!(f.values().all(|&c| c == 1));
        assert!(!ds.is_static());
    }

    #[test]
    fn dupe_controls_domain() {
        let spec = MicroSpec::with_rates(100.0, 100.0).dupe(10);
        let ds = spec.generate();
        let mut f = HashMap::new();
        for t in &ds.r {
            *f.entry(t.key).or_insert(0usize) += 1;
        }
        assert_eq!(f.len(), 10_000, "domain = 100k/10");
        assert!(f.values().all(|&c| c == 10));
    }

    #[test]
    fn static_counts_config() {
        let ds = MicroSpec::static_counts(1000, 2000).generate();
        assert_eq!(ds.r.len(), 1000);
        assert_eq!(ds.s.len(), 2000);
        assert!(ds.is_static());
        assert_eq!(ds.window.len_ms, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MicroSpec::default().seed(9).generate();
        let b = MicroSpec::default().seed(9).generate();
        assert_eq!(a.r, b.r);
        assert_eq!(a.s, b.s);
        let c = MicroSpec::default().seed(10).generate();
        assert_ne!(a.r, c.r);
    }

    #[test]
    fn skewed_keys_have_hot_key() {
        let ds = MicroSpec::with_rates(200.0, 200.0).skew_key(1.5).generate();
        let mut f = HashMap::new();
        for t in &ds.r {
            *f.entry(t.key).or_insert(0usize) += 1;
        }
        let max = *f.values().max().unwrap();
        assert!(max > 1000, "hot key only {max} of 200k");
    }

    #[test]
    fn skewed_arrivals_land_early() {
        let ds = MicroSpec::with_rates(100.0, 100.0).skew_ts(1.6).generate();
        let early = ds.r.iter().filter(|t| t.ts < 100).count();
        assert!(early > ds.r.len() / 2);
    }

    #[test]
    fn expected_match_count_scales_with_dupe() {
        // matches = domain * dupe_r * dupe_s = dupe * |S| for equal streams.
        for dupe in [1usize, 4] {
            let ds = MicroSpec::with_rates(20.0, 20.0).dupe(dupe).generate();
            let mut f = HashMap::new();
            for t in &ds.r {
                f.entry(t.key).or_insert((0usize, 0usize)).0 += 1;
            }
            for t in &ds.s {
                f.entry(t.key).or_insert((0, 0)).1 += 1;
            }
            let matches: usize = f.values().map(|&(a, b)| a * b).sum();
            assert_eq!(matches, dupe * ds.s.len());
        }
    }
}
