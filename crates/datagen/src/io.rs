//! Loading and saving streams as CSV — the path for running the study's
//! algorithms on your own data via the `iawj` CLI.
//!
//! The format is minimal: one `key,timestamp_ms` pair per line, both
//! unsigned 32-bit integers, optionally preceded by a `key,ts` header.
//! Rows may arrive unsorted; the loader sorts by timestamp (stably), which
//! is the arrival-order invariant every algorithm relies on.

use iawj_common::Tuple;
use std::io::{BufRead, Write};
use std::path::Path;

/// CSV loading errors with line context.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed row.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, content } => {
                write!(
                    f,
                    "line {line}: expected 'key,ts' with u32 fields, got '{content}'"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parse a stream from any reader. Blank lines are skipped; a first line
/// of `key,ts` is treated as a header.
pub fn read_stream(reader: impl BufRead) -> Result<Vec<Tuple>, CsvError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (i == 0 && trimmed.eq_ignore_ascii_case("key,ts")) {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parsed = (|| {
            let key: u32 = parts.next()?.trim().parse().ok()?;
            let ts: u32 = parts.next()?.trim().parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some(Tuple::new(key, ts))
        })();
        match parsed {
            Some(t) => out.push(t),
            None => {
                return Err(CsvError::Parse {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    out.sort_by_key(|t| t.ts); // stable: preserves file order within a ms
    Ok(out)
}

/// Load a stream from a CSV file.
pub fn load_stream(path: impl AsRef<Path>) -> Result<Vec<Tuple>, CsvError> {
    let file = std::fs::File::open(path)?;
    read_stream(std::io::BufReader::new(file))
}

/// Write a stream as CSV (with header) to any writer.
pub fn write_stream(tuples: &[Tuple], mut writer: impl Write) -> std::io::Result<()> {
    writeln!(writer, "key,ts")?;
    for t in tuples {
        writeln!(writer, "{},{}", t.key, t.ts)?;
    }
    writer.flush()
}

/// Save a stream as CSV to a file.
pub fn save_stream(tuples: &[Tuple], path: impl AsRef<Path>) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    write_stream(tuples, std::io::BufWriter::new(file))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_basic_csv() {
        let data = "key,ts\n1,10\n2,5\n3,10\n";
        let tuples = read_stream(Cursor::new(data)).unwrap();
        // Sorted by ts; stable within equal timestamps.
        assert_eq!(
            tuples,
            vec![Tuple::new(2, 5), Tuple::new(1, 10), Tuple::new(3, 10)]
        );
    }

    #[test]
    fn header_is_optional_and_blank_lines_skipped() {
        let data = "4,0\n\n5,1\n";
        let tuples = read_stream(Cursor::new(data)).unwrap();
        assert_eq!(tuples.len(), 2);
    }

    #[test]
    fn reports_bad_lines_with_numbers() {
        let err = read_stream(Cursor::new("1,2\nnot,a,row\n")).unwrap_err();
        match err {
            CsvError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not,a,row");
            }
            other => panic!("{other}"),
        }
        assert!(read_stream(Cursor::new("1\n")).is_err());
        assert!(read_stream(Cursor::new("a,b\n")).is_err());
    }

    #[test]
    fn round_trips_through_files() {
        let dir = std::env::temp_dir().join("iawj_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.csv");
        let tuples: Vec<Tuple> = (0..50).map(|i| Tuple::new(i * 7, i)).collect();
        save_stream(&tuples, &path).unwrap();
        let back = load_stream(&path).unwrap();
        assert_eq!(back, tuples);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_stream("/definitely/not/here.csv") {
            Err(CsvError::Io(_)) => {}
            other => panic!("{other:?}"),
        }
    }
}
