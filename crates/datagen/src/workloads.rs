//! The four real-world-equivalent workloads of Table 3.
//!
//! Each generator reproduces the published statistics — arrival rates, key
//! duplication, key skew, arrival-time shape — of the corresponding real
//! dataset, at a configurable `scale` (1.0 = the paper's cardinalities).
//! Scaling shrinks stream cardinalities while *keeping key-domain sizes
//! fixed*, so per-key duplication scales down proportionally; this keeps
//! join output volumes laptop-sized while preserving each workload's
//! qualitative position in the study (Rovio/DEBS stay "high duplication",
//! YSB stays "unique R / duplicated S", Stock stays low-duplication and
//! spiky).

use crate::arrival;
use crate::dataset::Dataset;
use crate::keys;
use iawj_common::{Rate, Rng, Window};

fn scaled(n: f64, scale: f64) -> usize {
    (n * scale).round().max(1.0) as usize
}

/// Stock (Shanghai Stock Exchange): trades (R) ⋈ quotes (S) on stock id.
/// Low arrival rates (61 and 77 tuples/ms), mild key skew (0.112 / 0.158),
/// and the spiky arrival pattern of Figure 3a.
pub fn stock(scale: f64, seed: u64) -> Dataset {
    const W: u32 = 1000;
    const STOCK_IDS: usize = 900; // |R| / dupe(R) ≈ 61000 / 67.7
    let mut rng = Rng::new(seed ^ 0x57_0C_C0);
    let n_r = scaled(61.0 * W as f64, scale);
    let n_s = scaled(77.0 * W as f64, scale);
    let mut kr = rng.split(1);
    let r_keys = keys::zipf(n_r, STOCK_IDS, 0.112, &mut kr);
    let s_keys = keys::zipf(n_s, STOCK_IDS, 0.158, &mut kr);
    let mut tr = rng.split(2);
    // Figure 3a: pronounced bursts carrying roughly half the volume.
    let r_ts = arrival::spiky(n_r, W, 8, 0.5, &mut tr);
    let s_ts = arrival::spiky(n_s, W, 8, 0.5, &mut tr);
    Dataset::assemble(
        "Stock",
        r_keys,
        r_ts,
        s_keys,
        s_ts,
        Window::of_len(W),
        Rate::PerMs(61.0 * scale),
        Rate::PerMs(77.0 * scale),
    )
}

/// Rovio: advertisements (R) ⋈ purchases (S) on user+ad id. Steady high
/// rates (3·10³ tuples/ms each), near-uniform keys (skew 0.042) over a tiny
/// domain — hence the extreme ~18k duplicates per key of Table 3.
pub fn rovio(scale: f64, seed: u64) -> Dataset {
    const W: u32 = 1000;
    const AD_IDS: usize = 167; // |R| / dupe(R) = 3e6 / 17960
    let mut rng = Rng::new(seed ^ 0x0B10);
    let rate = 3.0e3;
    let n = scaled(rate * W as f64, scale);
    let mut kr = rng.split(1);
    let r_keys = keys::zipf(n, AD_IDS, 0.042, &mut kr);
    let s_keys = keys::zipf(n, AD_IDS, 0.042, &mut kr);
    let r_ts = arrival::uniform(n, W);
    let s_ts = arrival::uniform(n, W);
    Dataset::assemble(
        "Rovio",
        r_keys,
        r_ts,
        s_keys,
        s_ts,
        Window::of_len(W),
        Rate::PerMs(rate * scale),
        Rate::PerMs(rate * scale),
    )
}

/// YSB (Yahoo Streaming Benchmark): campaigns table (R, 1000 unique keys,
/// at rest) ⋈ advertisement events (S, ~10⁴ tuples/ms, uniform keys over
/// the 1000 campaigns).
pub fn ysb(scale: f64, seed: u64) -> Dataset {
    const W: u32 = 1000;
    const CAMPAIGNS: usize = 1000;
    let mut rng = Rng::new(seed ^ 0x45B);
    let rate_s = 1.0e4;
    let n_s = scaled(rate_s * W as f64, scale);
    let mut kr = rng.split(1);
    // The campaigns table is not scaled: it is a fixed dimension table.
    let r_keys = keys::unique(CAMPAIGNS, &mut kr);
    let s_keys = keys::zipf(n_s, CAMPAIGNS, 0.033, &mut kr);
    let r_ts = arrival::instant(CAMPAIGNS);
    let s_ts = arrival::uniform(n_s, W);
    Dataset::assemble(
        "YSB",
        r_keys,
        r_ts,
        s_keys,
        s_ts,
        Window::of_len(W),
        Rate::Infinite,
        Rate::PerMs(rate_s * scale),
    )
}

/// DEBS 2016 social network: posts (R, 10⁵) ⋈ comments (S, 10⁶) on user id,
/// both at rest (window length 0, arrival rate ∞). R is authored by ~580 of
/// the ~900 users, S by all of them, matching the 172.6 / 1115 duplication
/// figures of Table 3.
pub fn debs(scale: f64, seed: u64) -> Dataset {
    const USERS: usize = 900;
    const POSTERS: usize = 580; // 1e5 / 172.6
    let mut rng = Rng::new(seed ^ 0xDEB5);
    let n_r = scaled(1.0e5, scale);
    let n_s = scaled(1.0e6, scale);
    let mut kr = rng.split(1);
    let r_keys = keys::zipf(n_r, POSTERS, 0.003, &mut kr);
    let s_keys = keys::zipf(n_s, USERS, 0.011, &mut kr);
    Dataset::assemble(
        "DEBS",
        r_keys,
        arrival::instant(n_r),
        s_keys,
        arrival::instant(n_s),
        Window::of_len(0),
        Rate::Infinite,
        Rate::Infinite,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stock_shape() {
        let ds = stock(0.1, 1);
        assert_eq!(ds.r.len(), 6100);
        assert_eq!(ds.s.len(), 7700);
        assert!(!ds.is_static());
        assert!(ds.r.iter().all(|t| t.ts < 1000));
    }

    #[test]
    fn stock_has_spikes() {
        let ds = stock(0.5, 2);
        let mut hist = vec![0u32; 1000];
        for t in &ds.r {
            hist[t.ts as usize] += 1;
        }
        let max = *hist.iter().max().unwrap();
        let avg = ds.r.len() as u32 / 1000;
        assert!(max > avg * 10, "no spike: max {max} vs avg {avg}");
    }

    #[test]
    fn rovio_high_duplication_small_domain() {
        let ds = rovio(0.01, 3);
        let distinct: HashSet<u32> = ds.r.iter().map(|t| t.key).collect();
        assert!(distinct.len() <= 167);
        let dupe = ds.r.len() as f64 / distinct.len() as f64;
        assert!(dupe > 100.0, "dupe {dupe}");
    }

    #[test]
    fn ysb_unique_r_duplicated_s() {
        let ds = ysb(0.01, 4);
        assert_eq!(ds.r.len(), 1000);
        let distinct_r: HashSet<u32> = ds.r.iter().map(|t| t.key).collect();
        assert_eq!(distinct_r.len(), 1000, "campaign keys are unique");
        assert!(ds.r.iter().all(|t| t.ts == 0), "campaign table is at rest");
        assert_eq!(ds.s.len(), 100_000);
        assert!(ds.rate_r == Rate::Infinite);
    }

    #[test]
    fn debs_is_static_with_high_dupes() {
        let ds = debs(0.05, 5);
        assert!(ds.is_static());
        assert_eq!(ds.window.len_ms, 0);
        assert_eq!(ds.r.len(), 5000);
        assert_eq!(ds.s.len(), 50_000);
        let posters: HashSet<u32> = ds.r.iter().map(|t| t.key).collect();
        let commenters: HashSet<u32> = ds.s.iter().map(|t| t.key).collect();
        assert!(posters.len() <= 580);
        assert!(commenters.len() <= 900);
        // Posters must be a subset of the user universe so joins happen.
        assert!(posters.iter().all(|k| (*k as usize) < 900));
    }

    #[test]
    fn all_workloads_deterministic() {
        for f in [stock, rovio, ysb, debs] {
            let a = f(0.01, 42);
            let b = f(0.01, 42);
            assert_eq!(a.r, b.r);
            assert_eq!(a.s, b.s);
        }
    }

    #[test]
    fn streams_are_time_ordered() {
        for f in [stock, rovio, ysb, debs] {
            let ds = f(0.02, 7);
            assert!(iawj_common::tuple::is_sorted_by_ts(&ds.r), "{}", ds.name);
            assert!(iawj_common::tuple::is_sorted_by_ts(&ds.s), "{}", ds.name);
        }
    }
}
