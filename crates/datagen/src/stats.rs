//! Workload statistics — regenerates the rows of Table 3 and the series of
//! Figure 3 from the actual generated data, verifying that the synthetic
//! equivalents hit the published characteristics.

use crate::dataset::Dataset;
use iawj_common::zipf::estimate_theta;
use iawj_common::{Rate, Tuple};
use std::collections::HashMap;

/// Measured statistics of one stream.
#[derive(Clone, Debug)]
pub struct StreamStats {
    /// Number of tuples.
    pub count: usize,
    /// Nominal arrival rate (from the dataset metadata).
    pub rate: Rate,
    /// Distinct keys.
    pub distinct_keys: usize,
    /// Average duplicates per key = count / distinct.
    pub dupe_avg: f64,
    /// Zipf exponent estimated from the key-frequency rank distribution.
    pub skew_key_est: f64,
    /// Largest number of tuples sharing one arrival millisecond.
    pub peak_per_ms: usize,
    /// Zipf exponent estimated from the per-millisecond arrival counts —
    /// the measured `skew_ts` of Table 1 (0 for uniform or static data).
    pub skew_ts_est: f64,
}

impl StreamStats {
    /// Measure a stream.
    pub fn measure(tuples: &[Tuple], rate: Rate) -> Self {
        let mut freq: HashMap<u32, u64> = HashMap::new();
        let mut per_ms: HashMap<u32, usize> = HashMap::new();
        for t in tuples {
            *freq.entry(t.key).or_insert(0) += 1;
            *per_ms.entry(t.ts).or_insert(0) += 1;
        }
        let distinct = freq.len().max(1);
        let mut counts: Vec<u64> = freq.into_values().collect();
        let mut slot_counts: Vec<u64> = per_ms.values().map(|&c| c as u64).collect();
        StreamStats {
            count: tuples.len(),
            rate,
            distinct_keys: distinct,
            dupe_avg: tuples.len() as f64 / distinct as f64,
            skew_key_est: estimate_theta(&mut counts),
            peak_per_ms: per_ms.into_values().max().unwrap_or(0),
            skew_ts_est: if slot_counts.len() < 2 {
                0.0
            } else {
                estimate_theta(&mut slot_counts)
            },
        }
    }
}

/// The Table 3 row of a workload: both streams measured.
#[derive(Clone, Debug)]
pub struct WorkloadStats {
    /// Workload name.
    pub name: String,
    /// Statistics of R.
    pub r: StreamStats,
    /// Statistics of S.
    pub s: StreamStats,
}

impl WorkloadStats {
    /// Measure a dataset.
    pub fn measure(ds: &Dataset) -> Self {
        WorkloadStats {
            name: ds.name.clone(),
            r: StreamStats::measure(&ds.r, ds.rate_r),
            s: StreamStats::measure(&ds.s, ds.rate_s),
        }
    }
}

/// Per-millisecond arrival histogram — the Figure 3 series. Returns
/// `hist[ms] = tuples arriving in that millisecond`.
pub fn arrival_histogram(tuples: &[Tuple], window_ms: u32) -> Vec<usize> {
    let mut hist = vec![0usize; window_ms.max(1) as usize];
    for t in tuples {
        let slot = (t.ts as usize).min(hist.len() - 1);
        hist[slot] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::MicroSpec;
    use crate::workloads;

    #[test]
    fn measures_unique_stream() {
        let ds = MicroSpec::with_rates(100.0, 100.0).generate();
        let st = StreamStats::measure(&ds.r, ds.rate_r);
        assert_eq!(st.count, 100_000);
        assert_eq!(st.distinct_keys, 100_000);
        assert!((st.dupe_avg - 1.0).abs() < 1e-9);
        assert!(
            st.skew_key_est < 0.05,
            "unique stream skew {}",
            st.skew_key_est
        );
    }

    #[test]
    fn measures_duplication() {
        let ds = MicroSpec::with_rates(100.0, 100.0).dupe(50).generate();
        let st = StreamStats::measure(&ds.r, ds.rate_r);
        assert_eq!(st.distinct_keys, 2000);
        assert!((st.dupe_avg - 50.0).abs() < 1e-9);
    }

    #[test]
    fn rovio_stats_match_table3_shape() {
        let ds = workloads::rovio(0.05, 1);
        let ws = WorkloadStats::measure(&ds);
        // Scaled dupe = |R| / 167 domain.
        assert!(ws.r.dupe_avg > 500.0, "rovio dupe {}", ws.r.dupe_avg);
        assert!(ws.r.skew_key_est < 0.3, "rovio skew {}", ws.r.skew_key_est);
    }

    #[test]
    fn stock_peak_exceeds_uniform_by_far() {
        let ds = workloads::stock(0.2, 1);
        let ws = WorkloadStats::measure(&ds);
        let uniform_per_ms = ws.r.count / 1000;
        assert!(ws.r.peak_per_ms > uniform_per_ms * 10);
    }

    #[test]
    fn histogram_sums_to_count() {
        let ds = workloads::stock(0.1, 2);
        let hist = arrival_histogram(&ds.r, 1000);
        assert_eq!(hist.iter().sum::<usize>(), ds.r.len());
        assert_eq!(hist.len(), 1000);
    }

    #[test]
    fn histogram_of_static_data_piles_at_zero() {
        let ds = workloads::debs(0.01, 3);
        let hist = arrival_histogram(&ds.r, 1);
        assert_eq!(hist, vec![ds.r.len()]);
    }

    #[test]
    fn empty_stream_stats() {
        let st = StreamStats::measure(&[], Rate::Infinite);
        assert_eq!(st.count, 0);
        assert_eq!(st.peak_per_ms, 0);
        assert!((st.dupe_avg - 0.0).abs() < 1e-9);
        assert_eq!(st.skew_ts_est, 0.0);
    }

    #[test]
    fn skew_ts_estimate_reacts_to_arrival_skew() {
        let uniform = MicroSpec::with_rates(50.0, 50.0).seed(8).generate();
        let skewed = MicroSpec::with_rates(50.0, 50.0)
            .skew_ts(1.6)
            .seed(8)
            .generate();
        let u = StreamStats::measure(&uniform.r, uniform.rate_r);
        let z = StreamStats::measure(&skewed.r, skewed.rate_r);
        assert!(
            u.skew_ts_est < 0.1,
            "uniform arrivals read {}",
            u.skew_ts_est
        );
        assert!(
            z.skew_ts_est > u.skew_ts_est + 0.3,
            "skewed {} vs uniform {}",
            z.skew_ts_est,
            u.skew_ts_est
        );
    }
}
