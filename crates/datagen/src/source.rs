//! Unbounded stream sources for the continuous join service.
//!
//! The batch generators in this crate produce finite, timestamp-ordered
//! `Vec<Tuple>` streams. The streaming operator instead pulls from a
//! [`StreamSource`]: an iterator-shaped producer a pump thread drains into
//! an SPSC ingress queue. This module supplies the two compositions every
//! experiment needs:
//!
//! - [`ReplaySource`] — replays a generated stream, optionally looping it
//!   forever with timestamps shifted by a period per lap (turning any batch
//!   workload into an unbounded stream) and optionally capped at a tuple
//!   count.
//! - [`PacedSource`] — rate-limits an inner source against the wall clock:
//!   a tuple stamped `ts` is released only once `ts / speedup` stream
//!   milliseconds of wall time have elapsed. The *rate itself* comes from
//!   the timestamps, which the batch generators derive from [`Rate`] and
//!   the [`arrival`](crate::arrival) module.
//!
//! [`rate_stream`] builds a finite uniform-arrival stream at a target
//! [`Rate`] directly, and [`jitter_arrival_order`] produces the
//! bounded-out-of-order permutations the lateness machinery is tested with.

use iawj_common::{Rate, Rng, Tuple};
use std::time::{Duration, Instant};

use crate::arrival;

/// A pull-based, possibly unbounded producer of timestamped tuples.
///
/// Implementations must yield tuples in timestamp order up to the bounded
/// out-of-orderness the consumer's `allowed_lateness_ms` tolerates.
pub trait StreamSource: Send {
    /// The next tuple, or `None` when the stream ends.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

/// Replays a finite stream, optionally looping with a timestamp shift.
pub struct ReplaySource {
    tuples: Vec<Tuple>,
    idx: usize,
    shift_ms: u32,
    loop_period_ms: Option<u32>,
    limit: Option<usize>,
    sent: usize,
}

impl ReplaySource {
    /// Replay `tuples` once, in order.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        ReplaySource {
            tuples,
            idx: 0,
            shift_ms: 0,
            loop_period_ms: None,
            limit: None,
            sent: 0,
        }
    }

    /// Loop forever: each lap replays the tuples with timestamps shifted by
    /// `period_ms` more than the previous lap (`period_ms` must exceed the
    /// last timestamp to keep the stream ordered).
    pub fn looped(mut self, period_ms: u32) -> Self {
        assert!(period_ms > 0, "loop period must be positive");
        if let Some(last) = self.tuples.last() {
            assert!(
                last.ts < period_ms,
                "loop period {period_ms} must exceed the last timestamp {}",
                last.ts
            );
        }
        self.loop_period_ms = Some(period_ms);
        self
    }

    /// Stop after `n` tuples in total (bounds a looped replay).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }
}

impl StreamSource for ReplaySource {
    fn next_tuple(&mut self) -> Option<Tuple> {
        if self.tuples.is_empty() || Some(self.sent) == self.limit {
            return None;
        }
        if self.idx == self.tuples.len() {
            let period = self.loop_period_ms?;
            self.idx = 0;
            // Saturating: a years-long replay pins at the timestamp ceiling
            // rather than wrapping backwards.
            self.shift_ms = self.shift_ms.saturating_add(period);
        }
        let t = self.tuples[self.idx];
        self.idx += 1;
        self.sent += 1;
        Some(Tuple::new(t.key, t.ts.saturating_add(self.shift_ms)))
    }
}

/// Rate-limits an inner source against the wall clock (see module docs).
pub struct PacedSource<S> {
    inner: S,
    speedup: f64,
    epoch: Option<Instant>,
}

impl<S: StreamSource> PacedSource<S> {
    /// Pace `inner` so that stream time advances `speedup`× faster than
    /// wall time (1.0 = real time).
    pub fn new(inner: S, speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        PacedSource {
            inner,
            speedup,
            epoch: None,
        }
    }
}

impl<S: StreamSource> StreamSource for PacedSource<S> {
    fn next_tuple(&mut self) -> Option<Tuple> {
        let t = self.inner.next_tuple()?;
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        let due_wall_ms = t.ts as f64 / self.speedup;
        loop {
            let elapsed_ms = epoch.elapsed().as_secs_f64() * 1e3;
            if elapsed_ms >= due_wall_ms {
                return Some(t);
            }
            let remaining_ms = due_wall_ms - elapsed_ms;
            if remaining_ms > 0.2 {
                std::thread::sleep(Duration::from_secs_f64((remaining_ms - 0.1) / 1e3));
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// A finite uniform-arrival stream at `rate` over `duration_ms`, keys drawn
/// uniformly from `[0, key_domain)`.
pub fn rate_stream(rate: Rate, duration_ms: u32, key_domain: u32, seed: u64) -> Vec<Tuple> {
    assert!(key_domain > 0);
    let n = match rate.tuples_over(duration_ms as u64) {
        Some(n) => n,
        None => panic!("rate_stream needs a finite rate"),
    };
    let ts = arrival::uniform(n, duration_ms);
    let mut rng = Rng::new(seed);
    ts.into_iter()
        .map(|t| Tuple::new(rng.next_u32() % key_domain, t))
        .collect()
}

/// A bounded shuffle of a timestamp-ordered stream: tuples are reordered by
/// sorting on `ts + jitter` with jitter uniform in `[0, max_lateness_ms]`.
///
/// The resulting arrival order satisfies the bounded-out-of-orderness
/// contract: when a tuple arrives, every earlier arrival has `ts' <= ts +
/// max_lateness_ms`, so a watermark holding `max_lateness_ms` behind the
/// maximum seen timestamp never declares it late.
pub fn jitter_arrival_order(tuples: &[Tuple], max_lateness_ms: u32, seed: u64) -> Vec<Tuple> {
    let mut rng = Rng::new(seed);
    let mut keyed: Vec<(u64, Tuple)> = tuples
        .iter()
        .map(|&t| (t.ts as u64 + rng.below(max_lateness_ms as u64 + 1), t))
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut src: impl StreamSource) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = src.next_tuple() {
            out.push(t);
        }
        out
    }

    #[test]
    fn replay_preserves_order_and_content() {
        let tuples = vec![Tuple::new(1, 0), Tuple::new(2, 5), Tuple::new(3, 9)];
        assert_eq!(drain(ReplaySource::new(tuples.clone())), tuples);
        assert!(drain(ReplaySource::new(Vec::new())).is_empty());
    }

    #[test]
    fn looped_replay_shifts_timestamps_per_lap() {
        let tuples = vec![Tuple::new(1, 0), Tuple::new(2, 5)];
        let out = drain(ReplaySource::new(tuples).looped(10).limit(5));
        let ts: Vec<u32> = out.iter().map(|t| t.ts).collect();
        assert_eq!(ts, vec![0, 5, 10, 15, 20]);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn looped_replay_rejects_short_period() {
        let _ = ReplaySource::new(vec![Tuple::new(1, 10)]).looped(10);
    }

    #[test]
    fn rate_stream_hits_target_count_and_span() {
        let s = rate_stream(Rate::PerMs(10.0), 100, 32, 7);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|t| t.ts < 100 && t.key < 32));
        assert!(s.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn jitter_is_bounded_and_a_permutation() {
        let s = rate_stream(Rate::PerMs(5.0), 200, 16, 3);
        let j = jitter_arrival_order(&s, 50, 11);
        assert_eq!(j.len(), s.len());
        // Same multiset of tuples.
        let mut a: Vec<_> = s.iter().map(|t| (t.ts, t.key)).collect();
        let mut b: Vec<_> = j.iter().map(|t| (t.ts, t.key)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Bounded out-of-orderness: nothing precedes a tuple more than the
        // lateness bound newer than it.
        let mut max_seen = 0u32;
        for t in &j {
            assert!(t.ts + 50 >= max_seen, "tuple {t:?} beyond bound");
            max_seen = max_seen.max(t.ts);
        }
        // Zero jitter is the identity.
        assert_eq!(jitter_arrival_order(&s, 0, 11), s);
    }

    #[test]
    fn paced_source_releases_on_schedule() {
        // 3 tuples over 30 stream-ms at 10x => ~3 ms wall minimum.
        let tuples = vec![Tuple::new(1, 0), Tuple::new(1, 15), Tuple::new(1, 30)];
        let start = Instant::now();
        let out = drain(PacedSource::new(ReplaySource::new(tuples.clone()), 10.0));
        assert_eq!(out, tuples);
        assert!(start.elapsed() >= Duration::from_millis(2));
    }
}
