#![warn(missing_docs)]

//! Workload generators for the study (§4.2.1).
//!
//! Five workloads drive the paper's evaluation: four real-world ones —
//! Stock, Rovio, YSB, DEBS — and the fully tunable synthetic Micro workload
//! of Kim et al. The real datasets are not redistributable, so this crate
//! generates *statistical equivalents*: streams whose arrival rates, key
//! duplication, key skew, and arrival-time distribution match the published
//! Table 3 / Figure 3 characteristics. The [`stats`] module re-measures
//! those characteristics from the generated data, which is how the Table 3
//! harness verifies the substitution.
//!
//! All generators are deterministic in their seed, and accept a `scale`
//! factor that shrinks cardinalities (keeping key-domain sizes, hence
//! scaling per-key duplication) so the full evaluation fits on a laptop.

pub mod arrival;
pub mod dataset;
pub mod io;
pub mod keys;
pub mod micro;
pub mod source;
pub mod stats;
pub mod workloads;

pub use dataset::Dataset;
pub use micro::MicroSpec;
pub use source::{jitter_arrival_order, rate_stream, PacedSource, ReplaySource, StreamSource};
pub use stats::{StreamStats, WorkloadStats};
pub use workloads::{debs, rovio, stock, ysb};
