//! Chrome Trace Event Format exporter.
//!
//! Produces the JSON object form of the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one `"X"`
//! (complete) event per journal span, one `"i"` (instant) event per mark,
//! `"M"` (metadata) events naming the process and each worker lane, and —
//! for spans carrying hardware counters — `"C"` (counter) events so
//! Perfetto plots per-phase IPC and misses-per-kilo-instruction as
//! counter tracks under each worker. Timestamps are microseconds with
//! sub-microsecond precision, relative to the shared journal epoch.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::journal::SpanJournal;
use crate::json;
use crate::perf::{IDX_BRANCH_MISSES, IDX_DTLB_MISSES, IDX_L1D_MISSES, IDX_LLC_MISSES};

const PID: u64 = 1;

/// Name of the trace process, shown by Perfetto's process label.
const PROCESS_NAME: &str = "iawj";

fn push_common(out: &mut String, name: &str, ph: &str, tid: usize) {
    out.push_str("{\"name\":");
    json::write_str(out, name);
    out.push_str(",\"ph\":");
    json::write_str(out, ph);
    out.push_str(&format!(",\"pid\":{PID},\"tid\":{tid}"));
}

fn push_ts(out: &mut String, ns: u64) {
    out.push_str(",\"ts\":");
    // µs with ns precision; format directly to avoid float rounding drift.
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Render the journals of all workers as one Chrome-trace JSON document.
///
/// `journals` pairs each worker id (the lane / `tid`) with its journal.
/// The output is a complete JSON object — write it to a file and load it
/// in `chrome://tracing` or Perfetto as-is.
pub fn chrome_trace(journals: &[(usize, &SpanJournal)]) -> String {
    let with_cores: Vec<(usize, Option<usize>, &SpanJournal)> =
        journals.iter().map(|&(tid, j)| (tid, None, j)).collect();
    chrome_trace_with_cores(&with_cores)
}

/// Like [`chrome_trace`], with the CPU each worker lane ran on (when the
/// executor observed one) folded into the thread-name metadata — a lane
/// pinned or observed on CPU 5 is labelled `"worker 3 @cpu5"`, so
/// placement is visible right in the Perfetto track list.
pub fn chrome_trace_with_cores(journals: &[(usize, Option<usize>, &SpanJournal)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };
    if !journals.is_empty() {
        sep(&mut out);
        push_common(&mut out, "process_name", "M", 0);
        out.push_str(&format!(",\"args\":{{\"name\":\"{PROCESS_NAME}\"}}}}"));
    }
    for &(tid, core, journal) in journals {
        sep(&mut out);
        push_common(&mut out, "thread_name", "M", tid);
        let label = match core {
            Some(cpu) => format!("worker {tid} @cpu{cpu}"),
            None => format!("worker {tid}"),
        };
        out.push_str(&format!(",\"args\":{{\"name\":\"{label}\"}}}}"));
        for span in journal.spans() {
            sep(&mut out);
            push_common(&mut out, span.name, "X", tid);
            push_ts(&mut out, span.begin_ns);
            let dur = span.end_ns.saturating_sub(span.begin_ns);
            out.push_str(&format!(",\"dur\":{}.{:03}}}", dur / 1_000, dur % 1_000));
            let Some(c) = span.counters else { continue };
            if c.instructions() == 0 {
                continue;
            }
            // Counter tracks: one IPC series and one multi-series MPKI
            // (misses per kilo-instruction) track per worker lane,
            // sampled at each phase span's start.
            sep(&mut out);
            push_common(&mut out, "ipc", "C", tid);
            push_ts(&mut out, span.begin_ns);
            out.push_str(&format!(
                ",\"args\":{{\"value\":{:.3}}}}}",
                c.ipc().unwrap_or(0.0)
            ));
            sep(&mut out);
            push_common(&mut out, "mpki", "C", tid);
            push_ts(&mut out, span.begin_ns);
            out.push_str(&format!(
                ",\"args\":{{\"l1d\":{:.3},\"llc\":{:.3},\"dtlb\":{:.3},\"branch\":{:.3}}}}}",
                c.per_kilo_instruction(IDX_L1D_MISSES).unwrap_or(0.0),
                c.per_kilo_instruction(IDX_LLC_MISSES).unwrap_or(0.0),
                c.per_kilo_instruction(IDX_DTLB_MISSES).unwrap_or(0.0),
                c.per_kilo_instruction(IDX_BRANCH_MISSES).unwrap_or(0.0)
            ));
        }
        for mark in journal.marks() {
            sep(&mut out);
            push_common(&mut out, mark.name, "i", tid);
            push_ts(&mut out, mark.at_ns);
            out.push_str(",\"s\":\"t\"}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::time::{Duration, Instant};

    fn journal_with(epoch: Instant, spans: &[(&'static str, u64, u64)]) -> SpanJournal {
        let mut j = SpanJournal::with_capacity(epoch, 16);
        for &(name, b, e) in spans {
            j.record_span(
                name,
                epoch + Duration::from_nanos(b),
                epoch + Duration::from_nanos(e),
            );
        }
        j
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let doc = Json::parse(&chrome_trace(&[])).unwrap();
        assert_eq!(
            doc.get("traceEvents").and_then(Json::as_arr).unwrap().len(),
            0
        );
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }

    #[test]
    fn emits_metadata_span_and_instant_events() {
        let epoch = Instant::now();
        let mut j = journal_with(epoch, &[("probe", 1_500, 4_500)]);
        j.mark("barrier:build_done", epoch + Duration::from_nanos(1_500));
        let doc = Json::parse(&chrome_trace(&[(3, &j)])).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 4);

        let proc = &events[0];
        assert_eq!(proc.get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            proc.get("name").and_then(Json::as_str),
            Some("process_name")
        );
        assert_eq!(
            proc.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("iawj")
        );

        let meta = &events[1];
        assert_eq!(meta.get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("worker 3")
        );

        let span = &events[2];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("name").and_then(Json::as_str), Some("probe"));
        assert_eq!(span.get("tid").and_then(Json::as_u64), Some(3));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(3.0));

        let mark = &events[3];
        assert_eq!(mark.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            mark.get("name").and_then(Json::as_str),
            Some("barrier:build_done")
        );
        assert_eq!(mark.get("ts").and_then(Json::as_f64), Some(1.5));
    }

    #[test]
    fn counter_spans_emit_counter_tracks() {
        use crate::perf::{CounterDelta, IDX_CYCLES, IDX_INSTRUCTIONS, IDX_L1D_MISSES};
        let epoch = Instant::now();
        let mut j = SpanJournal::with_capacity(epoch, 8);
        let mut c = CounterDelta::zero();
        c.vals[IDX_CYCLES] = 2_000;
        c.vals[IDX_INSTRUCTIONS] = 4_000;
        c.vals[IDX_L1D_MISSES] = 100;
        j.record_span_with(
            "probe",
            epoch + Duration::from_nanos(1_000),
            epoch + Duration::from_nanos(2_000),
            Some(c),
        );
        // A counter-less span emits no C events.
        j.record_span(
            "wait",
            epoch + Duration::from_nanos(2_000),
            epoch + Duration::from_nanos(3_000),
        );
        let doc = Json::parse(&chrome_trace(&[(0, &j)])).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        let ipc = counters
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("ipc"))
            .unwrap();
        assert_eq!(
            ipc.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        let mpki = counters
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("mpki"))
            .unwrap();
        assert_eq!(
            mpki.get("args")
                .and_then(|a| a.get("l1d"))
                .and_then(Json::as_f64),
            Some(25.0)
        );
    }

    #[test]
    fn core_ids_label_thread_names() {
        let epoch = Instant::now();
        let j0 = journal_with(epoch, &[("probe", 0, 10)]);
        let j1 = journal_with(epoch, &[("probe", 0, 12)]);
        let doc = Json::parse(&chrome_trace_with_cores(&[
            (0, None, &j0),
            (1, Some(5), &j1),
        ]))
        .unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert_eq!(names, vec!["worker 0", "worker 1 @cpu5"]);
    }

    #[test]
    fn one_lane_per_worker() {
        let epoch = Instant::now();
        let j0 = journal_with(epoch, &[("build/sort", 0, 10)]);
        let j1 = journal_with(epoch, &[("build/sort", 0, 12)]);
        let doc = Json::parse(&chrome_trace(&[(0, &j0), (1, &j1)])).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("tid").and_then(Json::as_u64))
            .collect();
        assert_eq!(tids, vec![0, 1]);
    }
}
