//! Human-readable Figure-7-style phase breakdown table.
//!
//! The paper's Figure 7 decomposes each algorithm's runtime into the six
//! phases (wait, partition, build/sort, merge, probe, others). This module
//! renders the same decomposition as an aligned text table with absolute
//! time, share of busy time, cycle counts at a nominal clock, and the
//! min/max skew across workers.

/// One table row: a phase aggregated across all workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase label, e.g. `"probe"`.
    pub label: &'static str,
    /// Sum of this phase's nanoseconds across all workers.
    pub total_ns: u64,
    /// Smallest per-worker time in this phase.
    pub min_ns: u64,
    /// Largest per-worker time in this phase.
    pub max_ns: u64,
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Render `rows` as an aligned table. `ghz` is the nominal clock used for
/// the cycles column (the study uses 2.6 GHz). Shares are relative to the
/// sum of all rows, so with the wait row included they show utilisation
/// and without it they reproduce the paper's busy-time breakdown.
pub fn breakdown_table(rows: &[PhaseRow], ghz: f64) -> String {
    let total: u64 = rows.iter().map(|r| r.total_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<12} {:>12} {:>8} {:>14} {:>12} {:>12}\n",
        "phase", "total ms", "share", "cycles", "min/wkr ms", "max/wkr ms"
    ));
    for r in rows {
        let share = if total > 0 {
            r.total_ns as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        let cycles = r.total_ns as f64 * ghz;
        let cycles = if cycles >= 1e9 {
            format!("{:.2}G", cycles / 1e9)
        } else {
            format!("{:.2}M", cycles / 1e6)
        };
        out.push_str(&format!(
            "  {:<12} {:>12} {:>7.1}% {:>14} {:>12} {:>12}\n",
            r.label,
            fmt_ms(r.total_ns),
            share,
            cycles,
            fmt_ms(r.min_ns),
            fmt_ms(r.max_ns),
        ));
    }
    out.push_str(&format!(
        "  {:<12} {:>12} {:>7.1}%\n",
        "total",
        fmt_ms(total),
        if total > 0 { 100.0 } else { 0.0 }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows_plus_total() {
        let rows = [
            PhaseRow {
                label: "wait",
                total_ns: 1_000_000,
                min_ns: 400_000,
                max_ns: 600_000,
            },
            PhaseRow {
                label: "probe",
                total_ns: 3_000_000,
                min_ns: 1_400_000,
                max_ns: 1_600_000,
            },
        ];
        let table = breakdown_table(&rows, 2.6);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 rows + total
        assert!(lines[1].contains("wait"));
        assert!(lines[1].contains("25.0%"));
        assert!(lines[2].contains("probe"));
        assert!(lines[2].contains("75.0%"));
        assert!(lines[2].contains("7.80M")); // 3ms * 2.6GHz
        assert!(lines[3].contains("total"));
        assert!(lines[3].contains("4.000"));
    }

    #[test]
    fn empty_rows_do_not_divide_by_zero() {
        let table = breakdown_table(&[], 2.6);
        assert!(table.contains("total"));
        assert!(table.contains("0.0%"));
    }

    #[test]
    fn large_cycle_counts_use_giga_suffix() {
        let rows = [PhaseRow {
            label: "merge",
            total_ns: 2_000_000_000,
            min_ns: 0,
            max_ns: 0,
        }];
        assert!(breakdown_table(&rows, 2.6).contains("5.20G"));
    }
}
