//! Machine-readable benchmark snapshots — the repo's perf trajectory.
//!
//! Each harness target can emit a `BENCH_<fig>.json` file: a versioned
//! record of what ran (git SHA, workload, engine, threads, scheduler,
//! scatter/table modes), what it measured (throughput, exact p99/max
//! latency) and where the time went (per-phase nanoseconds with hardware
//! counters when [`perf`](crate::perf) could open them). Two snapshots of
//! the same figure taken at different commits are comparable row-by-row,
//! which is what [`diff`](crate::diff) and the `iawj bench-diff`
//! subcommand automate: speedups get *proven*, regressions get caught.
//!
//! The schema is versioned ([`SCHEMA_VERSION`]); [`BenchSnapshot::parse`]
//! rejects documents from a different major version rather than
//! misreading them.

use crate::json::{array, quote, write_f64, Json};
use crate::perf::{CounterDelta, COUNTER_NAMES};

/// Current snapshot schema version. Bump on any field change that a
/// `bench-diff` of old snapshots could silently misread.
pub const SCHEMA_VERSION: u64 = 1;

/// Document marker distinguishing snapshots from other JSON artifacts.
pub const SNAPSHOT_KIND: &str = "iawj-bench-snapshot";

/// Simulated per-tuple cache-hierarchy counters (from `iawj-cachesim`),
/// the fallback columns when hardware counters are unavailable.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CachesimPerTuple {
    /// Simulated dTLB misses per input tuple.
    pub dtlb: f64,
    /// Simulated L1D misses per input tuple.
    pub l1d: f64,
    /// Simulated L2 misses per input tuple.
    pub l2: f64,
    /// Simulated L3 misses per input tuple.
    pub l3: f64,
}

/// One phase of one run: wall time plus hardware counters (all-zero when
/// the run had no perf access — check the run's `counter_source`).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSnapshot {
    /// Phase label (`"probe"`, `"build/sort"`, …).
    pub label: String,
    /// Nanoseconds summed over workers.
    pub ns: u64,
    /// Hardware-counter deltas summed over workers.
    pub counters: CounterDelta,
}

/// One benchmark configuration's measured outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSnapshot {
    /// Workload name (`"Rovio"`, `"Micro/r10"`, …).
    pub workload: String,
    /// Engine name (`"NPJ"`, `"PMJ_JB"`, …).
    pub engine: String,
    /// Worker threads.
    pub threads: u64,
    /// Scheduler mode (`"static"` / `"steal"`).
    pub scheduler: String,
    /// PRJ scatter mode (`"direct"` / `"swwc"`).
    pub scatter: String,
    /// NPJ shared-table mode (`"latch"` / `"lockfree"`).
    pub npj_table: String,
    /// Hot-loop kernel backend (`"scalar"` / `"simd"`).
    pub kernel: String,
    /// Throughput in input tuples per stream-millisecond.
    pub throughput_tpms: f64,
    /// Exact 99th-percentile latency (stream-ms) from the histogram.
    pub latency_p99_ms: Option<f64>,
    /// Exact worst-case latency (stream-ms).
    pub latency_max_ms: Option<f64>,
    /// Total matches produced.
    pub matches: u64,
    /// `"perf"`, `"cachesim"` or `"none"` — what backs the counters.
    pub counter_source: String,
    /// Per-phase time + counters (may be empty for profile-only rows).
    pub phases: Vec<PhaseSnapshot>,
    /// Simulated per-tuple counters, when the row came from the cache
    /// simulator (Table 5 / Fig. 19 rows).
    pub cachesim: Option<CachesimPerTuple>,
}

impl RunSnapshot {
    /// The identity two snapshots are matched on by `bench-diff`.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|t{}|{}|{}|{}|{}",
            self.workload,
            self.engine,
            self.threads,
            self.scheduler,
            self.scatter,
            self.npj_table,
            self.kernel
        )
    }
}

/// A complete `BENCH_<fig>.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Figure/table tag (`"fig7"`, `"table5"`, …).
    pub fig: String,
    /// Git commit the snapshot was taken at (`"unknown"` outside a repo).
    pub git_sha: String,
    /// Unix seconds at write time.
    pub created_unix_s: u64,
    /// Harness scale factor.
    pub scale: f64,
    /// Harness stream-time compression factor.
    pub speedup: f64,
    /// Harness default thread count.
    pub threads: u64,
    /// ns→cycles clock used for derived cycle columns, in GHz.
    pub clock_ghz: f64,
    /// `"measured"`, `"env"` or `"assumed"` — where the clock came from.
    pub clock_source: String,
    /// One entry per benchmarked configuration.
    pub runs: Vec<RunSnapshot>,
}

fn opt(v: Option<f64>) -> String {
    v.map(|x| {
        let mut s = String::new();
        write_f64(&mut s, x);
        s
    })
    .unwrap_or_else(|| "null".into())
}

fn num(v: f64) -> String {
    let mut s = String::new();
    write_f64(&mut s, v);
    s
}

impl BenchSnapshot {
    /// Serialize as a JSON document (one run per line for reviewable
    /// diffs of committed baselines).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("\"kind\": {},\n", quote(SNAPSHOT_KIND)));
        out.push_str(&format!("\"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("\"fig\": {},\n", quote(&self.fig)));
        out.push_str(&format!("\"git_sha\": {},\n", quote(&self.git_sha)));
        out.push_str(&format!("\"created_unix_s\": {},\n", self.created_unix_s));
        out.push_str(&format!("\"scale\": {},\n", num(self.scale)));
        out.push_str(&format!("\"speedup\": {},\n", num(self.speedup)));
        out.push_str(&format!("\"threads\": {},\n", self.threads));
        out.push_str(&format!("\"clock_ghz\": {},\n", num(self.clock_ghz)));
        out.push_str(&format!(
            "\"clock_source\": {},\n",
            quote(&self.clock_source)
        ));
        out.push_str("\"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            push_run(&mut out, r);
        }
        out.push_str("\n]\n}\n");
        out
    }

    /// Parse and validate a snapshot document. Errors name the offending
    /// field; a `schema_version` other than [`SCHEMA_VERSION`] is
    /// rejected outright.
    pub fn parse(text: &str) -> Result<BenchSnapshot, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\"")?;
        if kind != SNAPSHOT_KIND {
            return Err(format!("not a bench snapshot (kind = {kind:?})"));
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing \"schema_version\"")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing \"{k}\""))
        };
        let f64_field = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing \"{k}\""))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing \"{k}\""))
        };
        let runs_json = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("missing \"runs\"")?;
        let mut runs = Vec::with_capacity(runs_json.len());
        for (i, r) in runs_json.iter().enumerate() {
            runs.push(parse_run(r).map_err(|e| format!("runs[{i}]: {e}"))?);
        }
        Ok(BenchSnapshot {
            schema_version: version,
            fig: str_field("fig")?,
            git_sha: str_field("git_sha")?,
            created_unix_s: u64_field("created_unix_s")?,
            scale: f64_field("scale")?,
            speedup: f64_field("speedup")?,
            threads: u64_field("threads")?,
            clock_ghz: f64_field("clock_ghz")?,
            clock_source: str_field("clock_source")?,
            runs,
        })
    }
}

fn push_run(out: &mut String, r: &RunSnapshot) {
    out.push_str("  {");
    out.push_str(&format!("\"workload\": {}, ", quote(&r.workload)));
    out.push_str(&format!("\"engine\": {}, ", quote(&r.engine)));
    out.push_str(&format!("\"threads\": {}, ", r.threads));
    out.push_str(&format!("\"scheduler\": {}, ", quote(&r.scheduler)));
    out.push_str(&format!("\"scatter\": {}, ", quote(&r.scatter)));
    out.push_str(&format!("\"npj_table\": {}, ", quote(&r.npj_table)));
    out.push_str(&format!("\"kernel\": {}, ", quote(&r.kernel)));
    out.push_str(&format!(
        "\"throughput_tpms\": {}, ",
        num(r.throughput_tpms)
    ));
    out.push_str(&format!("\"latency_p99_ms\": {}, ", opt(r.latency_p99_ms)));
    out.push_str(&format!("\"latency_max_ms\": {}, ", opt(r.latency_max_ms)));
    out.push_str(&format!("\"matches\": {}, ", r.matches));
    out.push_str(&format!(
        "\"counter_source\": {}, ",
        quote(&r.counter_source)
    ));
    out.push_str("\"phases\": ");
    out.push_str(&array(r.phases.iter().map(|p| {
        let mut s = String::from("{");
        s.push_str(&format!("\"label\": {}, ", quote(&p.label)));
        s.push_str(&format!("\"ns\": {}, ", p.ns));
        s.push_str("\"counters\": {");
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", quote(name), p.counters.vals[i]));
        }
        s.push_str("}}");
        s
    })));
    match r.cachesim {
        Some(c) => out.push_str(&format!(
            ", \"cachesim\": {{\"dtlb\": {}, \"l1d\": {}, \"l2\": {}, \"l3\": {}}}",
            num(c.dtlb),
            num(c.l1d),
            num(c.l2),
            num(c.l3)
        )),
        None => out.push_str(", \"cachesim\": null"),
    }
    out.push('}');
}

fn parse_run(r: &Json) -> Result<RunSnapshot, String> {
    let str_field = |k: &str| -> Result<String, String> {
        r.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing \"{k}\""))
    };
    let phases_json = r
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or("missing \"phases\"")?;
    let mut phases = Vec::with_capacity(phases_json.len());
    for p in phases_json {
        let label = p
            .get("label")
            .and_then(Json::as_str)
            .ok_or("phase missing \"label\"")?
            .to_string();
        let ns = p
            .get("ns")
            .and_then(Json::as_u64)
            .ok_or("phase missing \"ns\"")?;
        let mut counters = CounterDelta::zero();
        if let Some(c) = p.get("counters") {
            for (name, slot) in COUNTER_NAMES.iter().zip(counters.vals.iter_mut()) {
                if let Some(v) = c.get(name).and_then(Json::as_u64) {
                    *slot = v;
                }
            }
        }
        phases.push(PhaseSnapshot {
            label,
            ns,
            counters,
        });
    }
    let cachesim = match r.get("cachesim") {
        None | Some(Json::Null) => None,
        Some(c) => Some(CachesimPerTuple {
            dtlb: c.get("dtlb").and_then(Json::as_f64).unwrap_or(0.0),
            l1d: c.get("l1d").and_then(Json::as_f64).unwrap_or(0.0),
            l2: c.get("l2").and_then(Json::as_f64).unwrap_or(0.0),
            l3: c.get("l3").and_then(Json::as_f64).unwrap_or(0.0),
        }),
    };
    Ok(RunSnapshot {
        workload: str_field("workload")?,
        engine: str_field("engine")?,
        threads: r
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or("missing \"threads\"")?,
        scheduler: str_field("scheduler")?,
        scatter: str_field("scatter")?,
        npj_table: str_field("npj_table")?,
        // Absent in snapshots written before the kernel knob existed;
        // default to the runtime default so old baselines keep matching keys.
        kernel: r
            .get("kernel")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| "simd".into()),
        throughput_tpms: r
            .get("throughput_tpms")
            .and_then(Json::as_f64)
            .ok_or("missing \"throughput_tpms\"")?,
        latency_p99_ms: r.get("latency_p99_ms").and_then(Json::as_f64),
        latency_max_ms: r.get("latency_max_ms").and_then(Json::as_f64),
        matches: r.get("matches").and_then(Json::as_u64).unwrap_or(0),
        counter_source: str_field("counter_source")?,
        phases,
        cachesim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::IDX_CYCLES;

    pub(crate) fn sample_snapshot() -> BenchSnapshot {
        let mut counters = CounterDelta::zero();
        counters.vals[IDX_CYCLES] = 123_456;
        counters.vals[1] = 300_000;
        BenchSnapshot {
            schema_version: SCHEMA_VERSION,
            fig: "fig7".into(),
            git_sha: "deadbeef".into(),
            created_unix_s: 1_700_000_000,
            scale: 0.01,
            speedup: 25.0,
            threads: 4,
            clock_ghz: 2.6,
            clock_source: "assumed".into(),
            runs: vec![
                RunSnapshot {
                    workload: "Rovio".into(),
                    engine: "NPJ".into(),
                    threads: 4,
                    scheduler: "static".into(),
                    scatter: "direct".into(),
                    npj_table: "latch".into(),
                    kernel: "simd".into(),
                    throughput_tpms: 812.5,
                    latency_p99_ms: Some(3.25),
                    latency_max_ms: Some(7.5),
                    matches: 123_456,
                    counter_source: "perf".into(),
                    phases: vec![PhaseSnapshot {
                        label: "probe".into(),
                        ns: 42_000_000,
                        counters,
                    }],
                    cachesim: None,
                },
                RunSnapshot {
                    workload: "Rovio".into(),
                    engine: "PRJ".into(),
                    threads: 4,
                    scheduler: "steal".into(),
                    scatter: "swwc".into(),
                    npj_table: "latch".into(),
                    kernel: "scalar".into(),
                    throughput_tpms: 1000.0,
                    latency_p99_ms: None,
                    latency_max_ms: None,
                    matches: 0,
                    counter_source: "cachesim".into(),
                    phases: vec![],
                    cachesim: Some(CachesimPerTuple {
                        dtlb: 0.25,
                        l1d: 2.5,
                        l2: 1.0,
                        l3: 0.125,
                    }),
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let snap = sample_snapshot();
        let parsed = BenchSnapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn keys_separate_configurations() {
        let snap = sample_snapshot();
        assert_eq!(snap.runs[0].key(), "Rovio|NPJ|t4|static|direct|latch|simd");
        assert_eq!(snap.runs[1].key(), "Rovio|PRJ|t4|steal|swwc|latch|scalar");
        assert_ne!(snap.runs[0].key(), snap.runs[1].key());
    }

    #[test]
    fn rejects_wrong_version_and_kind() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let bad_version = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchSnapshot::parse(&bad_version).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
        let bad_kind = json.replace(SNAPSHOT_KIND, "something-else");
        assert!(BenchSnapshot::parse(&bad_kind).is_err());
        assert!(BenchSnapshot::parse("not json").is_err());
        assert!(BenchSnapshot::parse("{}").is_err());
    }

    #[test]
    fn missing_run_fields_name_the_row() {
        let json = sample_snapshot()
            .to_json()
            .replace("\"engine\": \"PRJ\", ", "");
        let err = BenchSnapshot::parse(&json).unwrap_err();
        assert!(err.contains("runs[1]"), "{err}");
        assert!(err.contains("engine"), "{err}");
    }
}
