//! Dependency-free JSON writer and parser.
//!
//! The exporters in this crate (and the CLI's `RunSummary`) need to emit
//! strictly valid JSON, and the golden-file tests need to parse it back.
//! Rather than pulling serde into a workspace that is otherwise
//! dependency-free, this module provides the two halves directly: a small
//! set of escaping/formatting helpers for writers, and a recursive-descent
//! parser into a dynamic [`Json`] value for readers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a quoted, escaped JSON string literal.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values (which JSON
/// cannot represent) are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trippable float form, which is
        // also valid JSON (never produces `inf`/`NaN` for finite input).
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Quote a string into a fresh `String` (convenience over [`write_str`]).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// Format a `[a, b, ...]` array of JSON-ready fragments.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic for tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The array contents, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Json::Null),
        Some(_) => parse_num(b, pos).map(Json::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a valid &str).
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_escaped_strings() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writes_numbers() {
        let mut s = String::new();
        write_f64(&mut s, 1.5);
        s.push(' ');
        write_f64(&mut s, f64::NAN);
        s.push(' ');
        write_f64(&mut s, 3.0);
        assert_eq!(s, "1.5 null 3.0");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"h\\u0069\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.idx(0)).and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.idx(1))
                .and_then(|o| o.get("b"))
                .and_then(Json::as_str),
            Some("x")
        );
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn writer_output_parses_back() {
        let mut out = String::from("{");
        out.push_str(&quote("name"));
        out.push(':');
        out.push_str(&quote("npj \"fast\"\npath"));
        out.push(',');
        out.push_str(&quote("v"));
        out.push(':');
        write_f64(&mut out, 0.1234567890123);
        out.push('}');
        let v = Json::parse(&out).unwrap();
        assert_eq!(
            v.get("name").and_then(Json::as_str),
            Some("npj \"fast\"\npath")
        );
        assert_eq!(v.get("v").and_then(Json::as_f64), Some(0.1234567890123));
    }

    #[test]
    fn array_helper_joins_fragments() {
        assert_eq!(array(vec![]), "[]");
        assert_eq!(array(vec!["1".into(), "\"a\"".into()]), "[1,\"a\"]");
    }

    #[test]
    fn u64_accessor_rejects_fractions() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("4.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
