#![warn(missing_docs)]

//! # iawj-obs
//!
//! The study's observability layer — the instrumentation behind the paper's
//! decomposed measurements (§5.3 time breakdown, per-phase attribution,
//! CPU-utilisation timelines), made first-class:
//!
//! - [`SpanJournal`] — a low-overhead per-worker journal of `(name,
//!   begin_ns, end_ns)` span events plus instant marks (barrier releases,
//!   merge-pass boundaries, window flushes). Ring-buffered over a
//!   preallocated buffer; a disabled journal allocates nothing and every
//!   record call is a single predictable branch.
//! - [`LogHistogram`] — an HDR-style log-bucketed histogram with ≤ 1%
//!   relative error, mergeable across workers, so latency quantiles are
//!   computed over *every* match instead of a sampled subset.
//! - [`chrome_trace`] — Chrome Trace Event Format export (open the file in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see one
//!   timeline lane per worker).
//! - [`json`] — a dependency-free JSON writer/parser used by the exporters
//!   and their tests.
//! - [`report`] — the human-readable Figure-7-style phase breakdown table.
//! - [`perf`] — hardware performance counters via raw `perf_event_open`
//!   syscalls (cycles, instructions, cache/TLB misses, branch mispredicts)
//!   with graceful degradation wherever the kernel refuses.
//! - [`snapshot`] — the versioned `BENCH_<fig>.json` benchmark-snapshot
//!   schema: the repo's machine-readable perf trajectory.
//! - [`diff`] — snapshot comparison with regression thresholds, backing
//!   the `iawj bench-diff` subcommand.
//! - [`stream`] — the per-interval metrics tick emitted by the continuous
//!   streaming join service (`iawj serve`).
//!
//! This crate is deliberately dependency-free (it sits below `iawj-common`
//! so the match sink can embed a histogram).

pub mod chrome;
pub mod diff;
pub mod hist;
pub mod journal;
pub mod json;
pub mod perf;
pub mod report;
pub mod snapshot;
pub mod stream;

pub use chrome::{chrome_trace, chrome_trace_with_cores};
pub use diff::{diff, DiffReport, DiffThresholds, RunDiff, Verdict};
pub use hist::LogHistogram;
pub use journal::{
    Mark, Span, SpanJournal, MARK_CAS_RETRY, MARK_EXEC_DISPATCH, MARK_EXEC_PARK,
    MARK_EXEC_UNPINNED, MARK_INDEX_EVICT, MARK_INDEX_INSERT, MARK_INDEX_REPART, MARK_LATCH_WAIT,
    MARK_STREAM_BACKPRESSURE, MARK_STREAM_CLOSE, MARK_STREAM_INGEST, MARK_STREAM_LATE,
};
pub use perf::{CounterDelta, CounterSource, PerfError, PerfSampler, COUNTER_NAMES, N_COUNTERS};
pub use report::{breakdown_table, PhaseRow};
pub use snapshot::{BenchSnapshot, CachesimPerTuple, PhaseSnapshot, RunSnapshot, SCHEMA_VERSION};
pub use stream::StreamTick;
