//! Log-bucketed latency histogram (HDR-style).
//!
//! Values are bucketed by floating the top [`SUB_BITS`] mantissa bits below
//! the leading one: values under 256 get exact unit buckets, larger values
//! share a bucket with at most `1/128` relative width, so any quantile read
//! from a bucket midpoint carries at most ~0.4% relative error. Buckets are
//! plain counts, which makes the histogram mergeable across workers by
//! addition — the representation the runner uses to aggregate per-worker
//! sinks into one exact run-level latency distribution.

/// Sub-bucket precision: buckets per octave. 7 bits = 128 sub-buckets,
/// bounding relative bucket width at `1/128` (~0.8%).
pub const SUB_BITS: u32 = 7;

const SUB: u64 = 1 << SUB_BITS; // 128
/// Largest shift a `u64` value can need: leading bit 63, minus SUB_BITS.
const MAX_SHIFT: u64 = 63 - SUB_BITS as u64; // 56
/// One more than the largest reachable index (`MAX_SHIFT*128 + 255`).
const BUCKETS: usize = ((MAX_SHIFT << SUB_BITS) + 2 * SUB) as usize; // 7424

/// Bucket index of a value. Exact for `v < 256`; logarithmic above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as u64; // position of leading one, >= 8
    let shift = e - SUB_BITS as u64; // >= 1
    ((shift << SUB_BITS) + (v >> shift)) as usize
}

/// Half-open value range `[lo, hi)` covered by bucket `i`.
#[inline]
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < (2 * SUB) as usize {
        return (i as u64, i as u64 + 1);
    }
    let shift = (i as u64 >> SUB_BITS) - 1;
    let m = (i as u64 & (SUB - 1)) + SUB; // mantissa in [128, 256)
                                          // The very top bucket's upper bound would be 2^64; saturate (that
                                          // bucket then also covers u64::MAX itself).
    let hi = (((m as u128) + 1) << shift).min(u64::MAX as u128) as u64;
    (m << shift, hi)
}

/// Midpoint representative of bucket `i` (exact for unit buckets).
#[inline]
fn bucket_mid(i: usize) -> u64 {
    let (lo, hi) = bucket_bounds(i);
    lo + (hi - lo) / 2
}

/// A mergeable log-bucketed histogram over `u64` values.
///
/// The latency pipeline stores *stream nanoseconds* (`latency_ms * 1e6`),
/// but the histogram itself is unit-agnostic. The bucket array (58 KiB) is
/// allocated lazily on the first record, so an empty histogram is free.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram. Does not allocate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observations recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Has anything been recorded?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all recorded values (sum is saturating).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical observations.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
            self.min = v;
            self.max = v;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a latency expressed in (stream) milliseconds, stored with
    /// nanosecond resolution. Negative values clamp to zero.
    #[inline]
    pub fn record_ms(&mut self, ms: f64) {
        self.record((ms.max(0.0) * 1e6).round() as u64);
    }

    /// Fold another histogram into this one. Addition of bucket counts, so
    /// merging is associative and commutative.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the `ceil(q·count)`-th smallest observation, clamped into
    /// the exact `[min, max]` range (so `q = 0` and `q = 1` are exact).
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// [`Self::value_at_quantile`] for the ms-in, ns-stored latency domain.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.value_at_quantile(q).map(|ns| ns as f64 / 1e6)
    }

    /// Exact maximum in the latency domain.
    pub fn max_ms(&self) -> Option<f64> {
        self.max().map(|ns| ns as f64 / 1e6)
    }

    /// Non-empty buckets as `(lo, hi, count)` value ranges, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

impl PartialEq for LogHistogram {
    /// Distribution equality: same totals and the same non-empty buckets
    /// (an untouched histogram equals a touched-then-merged empty one).
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min() == other.min()
            && self.max() == other.max()
            && self.buckets().eq(other.buckets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_encode_decode_roundtrip() {
        for v in (0..4096u64).chain([
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v < hi || (v == u64::MAX && v >= lo),
                "v={v} i={i} lo={lo} hi={hi}"
            );
            assert!(i < BUCKETS, "v={v} i={i}");
        }
    }

    #[test]
    fn bucket_relative_width_bounded() {
        for v in [300u64, 1000, 123_456, 1 << 30, 1 << 50] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!((hi - lo) as f64 / lo as f64 <= 1.0 / 128.0 + 1e-12, "v={v}");
        }
    }

    #[test]
    fn empty_histogram_is_free_and_none() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.counts.capacity(), 0, "no allocation before first record");
        assert_eq!(h.value_at_quantile(0.5), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [5u64, 1, 9, 200, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(200));
        assert_eq!(h.value_at_quantile(0.0), Some(1));
        assert_eq!(h.value_at_quantile(0.5), Some(7));
        assert_eq!(h.value_at_quantile(1.0), Some(200));
    }

    #[test]
    fn quantile_error_within_bucket_width() {
        let mut h = LogHistogram::new();
        let mut all: Vec<u64> = Vec::new();
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for _ in 0..50_000 {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 10_000_000;
            h.record(v);
            all.push(v);
        }
        all.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = all[(((q * all.len() as f64).ceil() as usize).max(1)) - 1] as f64;
            let got = h.value_at_quantile(q).unwrap() as f64;
            assert!(
                (got - exact).abs() <= exact / 128.0 + 1.0,
                "q={q} got={got} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..1000u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 37);
            whole.record(v * 37);
        }
        let mut merged = LogHistogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.count(), 1000);
    }

    #[test]
    fn ms_domain_roundtrip() {
        let mut h = LogHistogram::new();
        h.record_ms(1.5);
        h.record_ms(-3.0); // clamps to 0
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ms(), Some(1.5));
        assert_eq!(h.quantile_ms(0.0), Some(0.0));
    }

    #[test]
    fn buckets_iterate_nonzero_ascending() {
        let mut h = LogHistogram::new();
        h.record_n(3, 2);
        h.record(100_000);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (3, 4, 2));
        assert!(buckets[1].0 <= 100_000 && 100_000 < buckets[1].1);
        assert_eq!(buckets[1].2, 1);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn rejects_out_of_range_quantile() {
        let _ = LogHistogram::new().value_at_quantile(1.5);
    }
}
